//! Per-commit bench trajectory: parsing, aggregating and comparing the
//! `BENCH_*.json` row streams the bench binaries emit under `BENCH_JSON=1`.
//!
//! A *trajectory artifact* is a file of one-line JSON objects (the stderr
//! stream of a bench binary, e.g. `BENCH_t11.json`). This module turns one
//! or more such files into [`BenchPoint`]s — per `(bench id, config, metric)`
//! the **median over N reps**, a relative dispersion, and the commit the
//! numbers belong to — and compares two sets of points with a **noise-aware
//! comparator**: a change only counts as a regression when it exceeds the
//! base threshold *plus both sides' measured dispersion*, so a noisy bench
//! widens its own gate instead of flapping CI.
//!
//! Field classification is by convention, matching what the binaries emit:
//!
//! * **throughput metrics** (higher is better, *gated* — a regression fails
//!   `t12_compare`): `kops_per_s`, `ktask_per_s`, `mops_per_s`,
//!   `victim_kops_per_s`, …;
//! * **quality metrics** (lower is better, reported but not gated — rank
//!   and tail-latency numbers are too heavy-tailed to fail CI on):
//!   `p99_*`, `p50_*`, `max_rtt_us`, `mean_rank`, `inversions_per_k`, …;
//! * **config fields** (strings and knob-like integers) form the point's
//!   identity; run-varying diagnostics (`empty_polls`, `aggressor_ops`, …)
//!   are deliberately excluded from both identity and metrics.
//!
//! No serde exists in this offline workspace; the parser below handles
//! exactly the flat objects [`report::json_row_string`](crate::report)
//! produces (strings, numbers, booleans, null — no nesting).

use crate::report::{json_row_string, JsonValue};
use std::collections::BTreeMap;

/// One parsed JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// Any JSON number (integers included; the emitters' u64 counters fit).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null` (the emitter degrades non-finite floats to this).
    Null,
}

/// Config fields that identify a bench point (everything the binaries sweep
/// or fix per row). Unknown fields are *not* identity: diagnostics such as
/// `empty_polls` vary run to run and must not split the trajectory.
const CONFIG_KEYS: &[&str] = &[
    "scenario",
    "phase",
    "backend",
    "pattern",
    "queues",
    "clients",
    "d",
    "batch",
    "delete_batch",
    "threads",
    "window",
    "lanes",
    "shards",
    "max_lanes",
    "aggressor_connections",
    "victim_ops",
    "victim_rate",
    "prefill",
];

/// Throughput metric fields: higher is better, and regressions are gated.
const THROUGHPUT_KEYS: &[&str] = &[
    "kops_per_s",
    "ktask_per_s",
    "ktasks_per_s",
    "mops_per_s",
    "ops_per_s",
    "tasks_per_s",
    "victim_kops_per_s",
];

/// Whether `key` is a lower-is-better quality metric (reported, not gated).
fn is_quality_key(key: &str) -> bool {
    key.starts_with("p50_")
        || key.starts_with("p95_")
        || key.starts_with("p99_")
        || key == "max_rtt_us"
        || key == "mean_rank"
        || key == "max_rank"
        || key == "inversions_per_k"
}

/// The direction and gate class of a metric field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Higher is better; a regression fails the comparator's gate.
    Throughput,
    /// Lower is better; reported only (tails are too noisy to gate on).
    Quality,
}

/// Classifies a row field name as a metric, or `None` for config/diagnostic.
pub fn metric_kind(key: &str) -> Option<MetricKind> {
    if THROUGHPUT_KEYS.contains(&key) {
        Some(MetricKind::Throughput)
    } else if is_quality_key(key) {
        Some(MetricKind::Quality)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Flat-object JSON parsing
// ---------------------------------------------------------------------------

/// Parses one flat JSON object line into ordered `(key, value)` pairs.
/// Nested arrays/objects are rejected — the bench emitters never produce
/// them, so their appearance means the file is not a trajectory artifact.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.char_indices().peekable();
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = parse_value(&mut chars)?;
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing content at byte {i}: {c:?}"));
    }
    Ok(fields)
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars) {
    while matches!(chars.peek(), Some(&(_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars, want: char) -> Result<(), String> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(chars: &mut Chars) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, c) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + c.to_digit(16).ok_or("bad \\u escape digit")?;
                    }
                    out.push(char::from_u32(code).ok_or("\\u escape is not a scalar")?);
                }
                other => return Err(format!("unsupported escape: {other:?}")),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_value(chars: &mut Chars) -> Result<Value, String> {
    match chars.peek() {
        Some(&(_, '"')) => Ok(Value::Str(parse_string(chars)?)),
        Some(&(_, '[')) | Some(&(_, '{')) => {
            Err("nested containers are not part of the trajectory schema".into())
        }
        Some(&(_, c)) if c.is_ascii_alphabetic() => {
            let word: String = std::iter::from_fn(|| {
                matches!(chars.peek(), Some(&(_, c)) if c.is_ascii_alphabetic())
                    .then(|| chars.next().map(|(_, c)| c))
                    .flatten()
            })
            .collect();
            match word.as_str() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                "null" => Ok(Value::Null),
                other => Err(format!("unknown literal {other:?}")),
            }
        }
        Some(_) => {
            let text: String = std::iter::from_fn(|| {
                matches!(chars.peek(), Some(&(_, c))
                         if c.is_ascii_digit() || "+-.eE".contains(c))
                .then(|| chars.next().map(|(_, c)| c))
                .flatten()
            })
            .collect();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        None => Err("expected a value, got end of line".into()),
    }
}

/// Parses a whole artifact (one JSON object per non-empty line).
pub fn parse_lines(input: &str) -> Result<Vec<Vec<(String, Value)>>, String> {
    input
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(n, line)| parse_object(line).map_err(|e| format!("line {}: {e}", n + 1)))
        .collect()
}

// ---------------------------------------------------------------------------
// Aggregation into bench points
// ---------------------------------------------------------------------------

/// One point of the bench trajectory: a `(bench id, config, metric)` with
/// its median over the collected reps, a relative dispersion, and the
/// commit the numbers were measured at.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchPoint {
    /// The bench binary's id (`t9`, `t11`, …) — the row's `experiment`.
    pub experiment: String,
    /// Identity string: experiment plus every config field, `k=v` ordered
    /// as emitted (e.g. `t11 scenario=spread queues=8 clients=4`).
    pub id: String,
    /// The metric field name (`kops_per_s`, `p99_rtt_us`, …).
    pub metric: String,
    /// Direction / gate class of [`Self::metric`].
    pub kind: MetricKind,
    /// Median of the metric over all collected reps.
    pub median: f64,
    /// Relative dispersion: half the sample span over the median, combined
    /// with any `rel_dispersion` the rows themselves carried. 0 for a
    /// single noiseless rep.
    pub rel_dispersion: f64,
    /// Reps aggregated into this point (files × per-row sample counts).
    pub reps: u64,
    /// The commit the rows were measured at (`commit` field, or the
    /// fallback passed to [`collect`]).
    pub commit: String,
}

/// Median of a non-empty, finite sample set.
fn median_of(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Relative half-span of a sorted-able sample set around its median; a
/// zero median with spread degrades to 1.0 ("fully noisy") rather than
/// dividing by zero.
fn rel_spread(samples: &mut [f64]) -> f64 {
    let m = median_of(samples);
    let (lo, hi) = samples
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
            (lo.min(s), hi.max(s))
        });
    let half_span = (hi - lo) / 2.0;
    if half_span == 0.0 {
        0.0
    } else if m.abs() < 1e-12 {
        1.0
    } else {
        half_span / m.abs()
    }
}

struct Group {
    experiment: String,
    kind: MetricKind,
    samples: Vec<f64>,
    row_dispersions: Vec<f64>,
    reps: u64,
    commit: Option<String>,
}

/// Aggregates artifact contents (each string one file — one *rep* unless
/// its rows carry their own rep counts) into bench points. Rows missing an
/// `experiment` field are rejected; rows may carry `commit`, `samples` /
/// `reps` and `rel_dispersion` fields, which fold into the point.
pub fn collect(contents: &[String], fallback_commit: &str) -> Result<Vec<BenchPoint>, String> {
    let mut groups: BTreeMap<(String, String), Group> = BTreeMap::new();
    for content in contents {
        for row in parse_lines(content)? {
            let experiment = row
                .iter()
                .find(|(k, _)| k == "experiment")
                .and_then(|(_, v)| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .ok_or("row without an \"experiment\" field")?;
            let mut id = experiment.clone();
            for (k, v) in &row {
                if CONFIG_KEYS.contains(&k.as_str()) {
                    let rendered = match v {
                        Value::Str(s) => s.clone(),
                        Value::Num(n) => format!("{n}"),
                        Value::Bool(b) => b.to_string(),
                        Value::Null => "null".into(),
                    };
                    id.push_str(&format!(" {k}={rendered}"));
                }
            }
            let row_reps = row
                .iter()
                .find(|(k, _)| k == "samples" || k == "reps")
                .and_then(|(_, v)| match v {
                    Value::Num(n) if *n >= 1.0 => Some(*n as u64),
                    _ => None,
                })
                .unwrap_or(1);
            let row_dispersion =
                row.iter()
                    .find(|(k, _)| k == "rel_dispersion")
                    .and_then(|(_, v)| match v {
                        Value::Num(n) if n.is_finite() && *n >= 0.0 => Some(*n),
                        _ => None,
                    });
            let row_commit = row
                .iter()
                .find(|(k, _)| k == "commit")
                .and_then(|(_, v)| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                });
            for (k, v) in &row {
                let Some(kind) = metric_kind(k) else { continue };
                let Value::Num(value) = v else { continue };
                if !value.is_finite() {
                    continue;
                }
                let group = groups
                    .entry((id.clone(), k.clone()))
                    .or_insert_with(|| Group {
                        experiment: experiment.clone(),
                        kind,
                        samples: Vec::new(),
                        row_dispersions: Vec::new(),
                        reps: 0,
                        commit: None,
                    });
                group.samples.push(*value);
                group.reps += row_reps;
                if let Some(d) = row_dispersion {
                    group.row_dispersions.push(d);
                }
                if group.commit.is_none() {
                    group.commit = row_commit.clone();
                }
            }
        }
    }
    Ok(groups
        .into_iter()
        .map(|((id, metric), mut g)| {
            let cross_rep = rel_spread(&mut g.samples);
            let carried = if g.row_dispersions.is_empty() {
                0.0
            } else {
                median_of(&mut g.row_dispersions)
            };
            BenchPoint {
                experiment: g.experiment,
                id,
                metric,
                kind: g.kind,
                median: median_of(&mut g.samples),
                rel_dispersion: cross_rep.max(carried),
                reps: g.reps,
                commit: g.commit.unwrap_or_else(|| fallback_commit.to_string()),
            }
        })
        .collect())
}

/// Renders points as a canonical trajectory artifact (one JSON line each),
/// re-parsable by [`collect`] — `median` re-enters as the metric value.
pub fn render(points: &[BenchPoint]) -> String {
    let mut out = String::new();
    for p in points {
        // `id` carries the full config; re-emitting it under a config key
        // keeps identity stable when the canonical file is re-collected.
        out.push_str(&json_row_string(
            &p.experiment,
            &[
                ("scenario", JsonValue::Str(p.id.clone())),
                (p.metric.as_str(), JsonValue::F64(p.median)),
                ("rel_dispersion", JsonValue::F64(p.rel_dispersion)),
                ("reps", JsonValue::U64(p.reps)),
                ("commit", JsonValue::Str(p.commit.clone())),
            ],
        ));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// The noise-aware comparator
// ---------------------------------------------------------------------------

/// Outcome of comparing one bench point across two commits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise allowance.
    Pass,
    /// Better than the allowance bound.
    Improvement,
    /// Worse than the allowance bound (fails CI when the metric is gated).
    Regression,
    /// Present in the baseline, absent in the current run.
    Missing,
}

/// One compared point.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Identity string of the point (see [`BenchPoint::id`]).
    pub id: String,
    /// Metric field name.
    pub metric: String,
    /// Whether a [`Verdict::Regression`] here fails the gate.
    pub gated: bool,
    /// Baseline median.
    pub baseline: f64,
    /// Current median (0 when [`Verdict::Missing`]).
    pub current: f64,
    /// Signed relative change, positive = metric value went up.
    pub change: f64,
    /// The allowance the change was judged against: `threshold` plus both
    /// sides' relative dispersion.
    pub allowance: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compares `current` against `baseline`, matching points by `(id, metric)`.
/// `threshold` is the base relative tolerance (0.10 = 10%); each pair's
/// allowance additionally absorbs the measured dispersion on both sides.
/// Points only in `current` (new benches) are ignored; points only in
/// `baseline` come back as [`Verdict::Missing`] so the caller can warn.
pub fn compare(baseline: &[BenchPoint], current: &[BenchPoint], threshold: f64) -> Vec<Comparison> {
    let current_by_key: BTreeMap<(&str, &str), &BenchPoint> = current
        .iter()
        .map(|p| ((p.id.as_str(), p.metric.as_str()), p))
        .collect();
    baseline
        .iter()
        .map(|base| {
            let gated = base.kind == MetricKind::Throughput;
            match current_by_key.get(&(base.id.as_str(), base.metric.as_str())) {
                None => Comparison {
                    id: base.id.clone(),
                    metric: base.metric.clone(),
                    gated: false,
                    baseline: base.median,
                    current: 0.0,
                    change: 0.0,
                    allowance: 0.0,
                    verdict: Verdict::Missing,
                },
                Some(cur) => {
                    let allowance = threshold + base.rel_dispersion + cur.rel_dispersion;
                    // A near-zero baseline (e.g. a 0µs p99) makes relative
                    // change meaningless; such pairs always pass.
                    let change = if base.median.abs() < 1e-9 {
                        0.0
                    } else {
                        (cur.median - base.median) / base.median.abs()
                    };
                    let worse = match base.kind {
                        MetricKind::Throughput => change < -allowance,
                        MetricKind::Quality => change > allowance,
                    };
                    let better = match base.kind {
                        MetricKind::Throughput => change > allowance,
                        MetricKind::Quality => change < -allowance,
                    };
                    Comparison {
                        id: base.id.clone(),
                        metric: base.metric.clone(),
                        gated,
                        baseline: base.median,
                        current: cur.median,
                        change,
                        allowance,
                        verdict: if worse {
                            Verdict::Regression
                        } else if better {
                            Verdict::Improvement
                        } else {
                            Verdict::Pass
                        },
                    }
                }
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Slow-drift detection over a per-commit history
// ---------------------------------------------------------------------------

/// One slow-drift observation over a run history: a metric whose recent
/// half moved away from its older half beyond the allowance, even though no
/// single adjacent pair regressed enough to trip the gate.
#[derive(Clone, Debug)]
pub struct Drift {
    /// Identity string of the point (see [`BenchPoint::id`]).
    pub id: String,
    /// Metric field name.
    pub metric: String,
    /// Direction / gate class of the metric.
    pub kind: MetricKind,
    /// Median of the older half of the series.
    pub older: f64,
    /// Median of the newer half of the series.
    pub newer: f64,
    /// Signed relative change from older to newer half.
    pub change: f64,
    /// Runs the series spanned.
    pub runs: usize,
}

/// Scans a run history (`runs` ordered **oldest → newest**, each one
/// `collect`ed artifact) for slow drift: per `(id, metric)` series present
/// in at least four runs, the series is split into an older and a newer
/// half, and a metric whose newer-half median moved in the *worse*
/// direction by more than `threshold` is reported. This catches the
/// boiled-frog case the pairwise gate structurally cannot — N consecutive
/// sub-allowance losses that compound past the budget. Report-only by
/// design: history depth varies per checkout, so CI prints these as
/// warnings instead of failing.
pub fn detect_drift(runs: &[Vec<BenchPoint>], threshold: f64) -> Vec<Drift> {
    let mut series: BTreeMap<(String, String), (MetricKind, Vec<f64>, usize)> = BTreeMap::new();
    for run in runs {
        for p in run {
            let entry =
                series
                    .entry((p.id.clone(), p.metric.clone()))
                    .or_insert((p.kind, Vec::new(), 0));
            entry.1.push(p.median);
            entry.2 += 1;
        }
    }
    let mut drifts = Vec::new();
    for ((id, metric), (kind, values, runs)) in series {
        if values.len() < 4 {
            continue; // need two per half for the medians to mean anything
        }
        let mid = values.len() / 2;
        let (mut older_half, mut newer_half) = (values[..mid].to_vec(), values[mid..].to_vec());
        let older = median_of(&mut older_half);
        let newer = median_of(&mut newer_half);
        if older.abs() < 1e-9 {
            continue;
        }
        let change = (newer - older) / older.abs();
        let worse = match kind {
            MetricKind::Throughput => change < -threshold,
            MetricKind::Quality => change > threshold,
        };
        if worse {
            drifts.push(Drift {
                id,
                metric,
                kind,
                older,
                newer,
                change,
                runs,
            });
        }
    }
    drifts
}

/// The commit hash to stamp artifacts with: `BENCH_COMMIT` when set (CI
/// pins it), otherwise `git rev-parse --short HEAD`, otherwise `unknown`.
pub fn commit_hash() -> String {
    if let Ok(c) = std::env::var("BENCH_COMMIT") {
        if !c.trim().is_empty() {
            return c.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitters_own_output() {
        let line = json_row_string(
            "t9",
            &[
                (
                    "backend",
                    JsonValue::Str("multiqueue(beta=0.75, c=2)".into()),
                ),
                ("ops", JsonValue::U64(120_000)),
                ("kops_per_s", JsonValue::F64(345.25)),
                ("note", JsonValue::Str("a \"quoted\"\nline".into())),
                ("bad", JsonValue::F64(f64::NAN)),
            ],
        );
        let fields = parse_object(&line).expect("round-trips");
        assert_eq!(
            fields[1],
            (
                "backend".into(),
                Value::Str("multiqueue(beta=0.75, c=2)".into())
            )
        );
        assert_eq!(fields[2], ("ops".into(), Value::Num(120_000.0)));
        assert_eq!(fields[3], ("kops_per_s".into(), Value::Num(345.25)));
        assert_eq!(
            fields[4],
            ("note".into(), Value::Str("a \"quoted\"\nline".into()))
        );
        assert_eq!(fields[5], ("bad".into(), Value::Null));
    }

    #[test]
    fn rejects_nested_containers_and_junk() {
        assert!(parse_object(r#"{"a":[1,2]}"#).is_err());
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_object(r#"{"a":1} trailing"#).is_err());
        assert!(parse_object(r#"{"a":nope}"#).is_err());
    }

    fn row(kops: f64) -> String {
        format!(
            r#"{{"experiment":"t9","backend":"mq","clients":4,"ops":1000,"kops_per_s":{kops},"p99_rtt_us":120}}"#
        )
    }

    #[test]
    fn collect_takes_the_median_over_reps_and_measures_dispersion() {
        let files = vec![row(100.0), row(110.0), row(90.0)];
        let points = collect(&files, "abc123").expect("parses");
        let thr = points
            .iter()
            .find(|p| p.metric == "kops_per_s")
            .expect("throughput point");
        assert_eq!(thr.id, "t9 backend=mq clients=4");
        assert_eq!(thr.median, 100.0);
        assert_eq!(thr.reps, 3);
        assert_eq!(thr.commit, "abc123");
        assert!(
            (thr.rel_dispersion - 0.10).abs() < 1e-9,
            "half-span 10 over median 100"
        );
        assert_eq!(thr.kind, MetricKind::Throughput);
        let p99 = points.iter().find(|p| p.metric == "p99_rtt_us").unwrap();
        assert_eq!(p99.kind, MetricKind::Quality);
        assert_eq!(p99.rel_dispersion, 0.0);
        // `ops` is a diagnostic, not a metric: no point for it.
        assert!(points.iter().all(|p| p.metric != "ops"));
    }

    #[test]
    fn rows_carrying_their_own_dispersion_and_commit_are_honoured() {
        let line = r#"{"experiment":"t11","scenario":"spread","queues":8,"samples":5,"kops_per_s":640.0,"rel_dispersion":0.25,"commit":"feedbee"}"#;
        let points = collect(&[line.to_string()], "fallback").unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].reps, 5);
        assert_eq!(points[0].rel_dispersion, 0.25);
        assert_eq!(points[0].commit, "feedbee");
    }

    #[test]
    fn identical_runs_compare_clean_and_a_20_percent_drop_is_flagged() {
        let base = collect(&[row(100.0)], "a").unwrap();
        let same = compare(&base, &base, 0.10);
        assert!(same.iter().all(|c| c.verdict == Verdict::Pass));

        let slowed = collect(&[row(80.0)], "b").unwrap();
        let cmp = compare(&base, &slowed, 0.10);
        let thr = cmp.iter().find(|c| c.metric == "kops_per_s").unwrap();
        assert_eq!(thr.verdict, Verdict::Regression);
        assert!(thr.gated, "throughput regressions gate CI");
        assert!((thr.change + 0.20).abs() < 1e-9);

        let faster = collect(&[row(125.0)], "c").unwrap();
        let cmp = compare(&base, &faster, 0.10);
        assert_eq!(
            cmp.iter()
                .find(|c| c.metric == "kops_per_s")
                .unwrap()
                .verdict,
            Verdict::Improvement
        );
    }

    #[test]
    fn dispersion_widens_the_allowance() {
        // Reps spanning ±15% around the median: the same 20% drop that a
        // quiet bench flags is inside this noisy bench's allowance.
        let base = collect(&[row(85.0), row(100.0), row(115.0)], "a").unwrap();
        let slowed = collect(&[row(68.0), row(80.0), row(92.0)], "b").unwrap();
        let cmp = compare(&base, &slowed, 0.10);
        let thr = cmp.iter().find(|c| c.metric == "kops_per_s").unwrap();
        assert!(thr.allowance > 0.35, "0.10 + 0.15 + 0.15");
        assert_eq!(thr.verdict, Verdict::Pass);
    }

    #[test]
    fn quality_metrics_report_but_do_not_gate() {
        let base = collect(&[row(100.0)], "a").unwrap();
        let mut worse = collect(&[row(100.0)], "b").unwrap();
        for p in &mut worse {
            if p.metric == "p99_rtt_us" {
                p.median *= 3.0;
            }
        }
        let cmp = compare(&base, &worse, 0.10);
        let p99 = cmp.iter().find(|c| c.metric == "p99_rtt_us").unwrap();
        assert_eq!(p99.verdict, Verdict::Regression);
        assert!(!p99.gated, "tail latency never fails the gate");
    }

    #[test]
    fn missing_points_surface_and_zero_baselines_always_pass() {
        let base = collect(&[row(100.0)], "a").unwrap();
        let cmp = compare(&base, &[], 0.10);
        assert!(cmp.iter().all(|c| c.verdict == Verdict::Missing));

        let zero = r#"{"experiment":"t11","phase":"solo","victim_kops_per_s":0}"#.to_string();
        let base = collect(std::slice::from_ref(&zero), "a").unwrap();
        let cmp = compare(&base, &base, 0.10);
        assert!(cmp.iter().all(|c| c.verdict == Verdict::Pass));
    }

    #[test]
    fn canonical_artifact_round_trips_through_collect() {
        let points = collect(&[row(100.0), row(110.0)], "abc").unwrap();
        let rendered = render(&points);
        let reread = collect(&[rendered], "other").unwrap();
        assert_eq!(reread.len(), points.len());
        for (a, b) in points.iter().zip(&reread) {
            assert_eq!(a.metric, b.metric);
            assert_eq!(a.median, b.median);
            assert_eq!(a.reps, b.reps);
            assert_eq!(b.commit, "abc", "commit travels inside the artifact");
            assert!((a.rel_dispersion - b.rel_dispersion).abs() < 1e-12);
        }
    }

    /// A history of single-point runs with the given throughput medians.
    fn history(kops: &[f64]) -> Vec<Vec<BenchPoint>> {
        kops.iter()
            .map(|&k| collect(&[row(k)], "h").unwrap())
            .collect()
    }

    #[test]
    fn slow_drift_is_flagged_where_the_pairwise_gate_cannot_fire() {
        // Eight runs each losing ~2%: every adjacent pair is inside a 3%
        // gate, but the halves differ by ~8%.
        let runs = history(&[100.0, 98.0, 96.0, 94.0, 92.0, 90.0, 88.0, 86.0]);
        let drifts = detect_drift(&runs, 0.03);
        let thr = drifts
            .iter()
            .find(|d| d.metric == "kops_per_s")
            .expect("compounded losses surface as drift");
        assert!(thr.change < -0.03, "drift change: {}", thr.change);
        assert_eq!(thr.runs, 8);
        // The p99 column was flat, so only the throughput drifted.
        assert!(drifts.iter().all(|d| d.metric == "kops_per_s"));
    }

    #[test]
    fn stable_and_improving_histories_do_not_drift() {
        assert!(detect_drift(&history(&[100.0, 101.0, 99.0, 100.0, 100.5, 99.5]), 0.03).is_empty());
        assert!(
            detect_drift(&history(&[100.0, 105.0, 110.0, 115.0]), 0.03).is_empty(),
            "throughput going up is not drift"
        );
        assert!(
            detect_drift(&history(&[100.0, 90.0]), 0.03).is_empty(),
            "fewer than four runs: not enough history to split"
        );
    }

    #[test]
    fn quality_drift_is_flagged_in_the_other_direction() {
        let mut runs = history(&[100.0; 6]);
        // Inflate the p99 column run by run: lower-is-better, so a rising
        // tail is the drifting direction.
        for (i, run) in runs.iter_mut().enumerate() {
            for p in run.iter_mut() {
                if p.metric == "p99_rtt_us" {
                    p.median *= 1.0 + 0.04 * i as f64;
                }
            }
        }
        let drifts = detect_drift(&runs, 0.03);
        assert!(drifts.iter().any(|d| d.metric == "p99_rtt_us"));
        assert!(drifts.iter().all(|d| d.metric != "kops_per_s"));
    }

    #[test]
    fn commit_hash_prefers_the_env_pin() {
        std::env::set_var("BENCH_COMMIT", "pinned0");
        assert_eq!(commit_hash(), "pinned0");
        std::env::remove_var("BENCH_COMMIT");
        // Without the pin we get *something* non-empty (git or "unknown").
        assert!(!commit_hash().is_empty());
    }
}
