//! Construction of every benchmarked queue behind one enum.

use std::sync::Arc;

use choice_pq::{ChoiceRule, DynSharedPq, ElasticPolicy, MultiQueue, MultiQueueConfig};
use pq_baselines::{CoarseHeap, KLsmConfig, KLsmQueue, SkipListQueue};

/// Which concurrent priority queue to benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueueSpec {
    /// The (1 + β) MultiQueue with `c` queues per thread.
    MultiQueue {
        /// Two-choice probability β.
        beta: f64,
        /// Queues-per-thread factor.
        queues_per_thread: usize,
    },
    /// The d-choice MultiQueue with `c` queues per thread (the `d_sweep`
    /// axis of `t5_choice_sweep`).
    MultiQueueD {
        /// Number of lanes sampled per deleteMin.
        d: usize,
        /// Queues-per-thread factor.
        queues_per_thread: usize,
    },
    /// The sharded **elastic** d-choice MultiQueue (`t10_elastic`): lane
    /// capacity `c·threads`, the default [`ElasticPolicy`] controller
    /// resizing the active set from live contention/sparseness rates.
    MultiQueueElastic {
        /// Number of lanes sampled per deleteMin.
        d: usize,
        /// Insert shard count.
        shards: usize,
        /// Queues-per-thread capacity factor (the elastic *ceiling*).
        queues_per_thread: usize,
    },
    /// The coarse-locked exact binary heap.
    CoarseHeap,
    /// The centralized skiplist queue (Lindén–Jonsson-style).
    SkipList,
    /// The k-LSM-style deterministic relaxed queue.
    KLsm {
        /// Relaxation factor k.
        relaxation: usize,
    },
}

impl QueueSpec {
    /// The MultiQueue with the paper's default `c = 2` factor.
    pub fn multiqueue(beta: f64) -> Self {
        QueueSpec::MultiQueue {
            beta,
            queues_per_thread: 2,
        }
    }

    /// The d-choice MultiQueue with the default `c = 2` factor.
    pub fn multiqueue_d(d: usize) -> Self {
        QueueSpec::MultiQueueD {
            d,
            queues_per_thread: 2,
        }
    }

    /// The elastic MultiQueue with an over-provisioned `c = 4` lane ceiling
    /// (the controller decides how much of it to use).
    pub fn multiqueue_elastic(d: usize, shards: usize) -> Self {
        QueueSpec::MultiQueueElastic {
            d,
            shards,
            queues_per_thread: 4,
        }
    }

    /// Short name used in table rows.
    pub fn label(&self) -> String {
        match self {
            QueueSpec::MultiQueue {
                beta,
                queues_per_thread,
            } => format!("multiqueue(beta={beta}, c={queues_per_thread})"),
            QueueSpec::MultiQueueD {
                d,
                queues_per_thread,
            } => format!("multiqueue(d={d}, c={queues_per_thread})"),
            QueueSpec::MultiQueueElastic {
                d,
                shards,
                queues_per_thread,
            } => format!("mq-elastic(d={d}, s={shards}, c={queues_per_thread})"),
            QueueSpec::CoarseHeap => "coarse-heap".to_string(),
            QueueSpec::SkipList => "skiplist".to_string(),
            QueueSpec::KLsm { relaxation } => format!("klsm(k={relaxation})"),
        }
    }

    /// The default line-up benchmarked in Figures 1 and 3: (1 + β)
    /// MultiQueues for β ∈ {1.0, 0.75, 0.5}, the skiplist queue, the k-LSM
    /// (k = 256), and the coarse heap.
    pub fn figure_lineup() -> Vec<QueueSpec> {
        vec![
            QueueSpec::multiqueue(1.0),
            QueueSpec::multiqueue(0.75),
            QueueSpec::multiqueue(0.5),
            QueueSpec::SkipList,
            QueueSpec::KLsm { relaxation: 256 },
            QueueSpec::CoarseHeap,
        ]
    }
}

/// Builds a queue for `threads` worker threads, type-erased behind the
/// [`DynSharedPq`] session interface (register a handle per worker with
/// `queue.register_dyn()`; `&*queue` also works as a generic
/// [`SharedPq`](choice_pq::SharedPq)).
pub fn build_queue<V: Send + 'static>(
    spec: QueueSpec,
    threads: usize,
    seed: u64,
) -> Arc<dyn DynSharedPq<V>> {
    match spec {
        QueueSpec::MultiQueue {
            beta,
            queues_per_thread,
        } => Arc::new(MultiQueue::new(
            MultiQueueConfig::for_threads_with_factor(threads, queues_per_thread)
                .with_beta(beta)
                .with_seed(seed),
        )),
        QueueSpec::MultiQueueD {
            d,
            queues_per_thread,
        } => Arc::new(MultiQueue::new(
            MultiQueueConfig::for_threads_with_factor(threads, queues_per_thread)
                .with_choice(ChoiceRule::uniform(d))
                .with_seed(seed),
        )),
        QueueSpec::MultiQueueElastic {
            d,
            shards,
            queues_per_thread,
        } => Arc::new(MultiQueue::new(
            MultiQueueConfig::for_threads_with_factor(threads, queues_per_thread)
                .with_choice(ChoiceRule::uniform(d))
                .with_shards(shards)
                .with_elastic(ElasticPolicy::default())
                .with_seed(seed),
        )),
        QueueSpec::CoarseHeap => Arc::new(CoarseHeap::new()),
        QueueSpec::SkipList => Arc::new(SkipListQueue::with_seed(seed)),
        QueueSpec::KLsm { relaxation } => Arc::new(KLsmQueue::new(
            KLsmConfig::for_threads(threads.max(1)).with_relaxation(relaxation),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choice_pq::SharedPq;

    #[test]
    fn labels_are_distinct_and_descriptive() {
        let lineup = QueueSpec::figure_lineup();
        let labels: Vec<String> = lineup.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(labels.iter().any(|l| l.contains("beta=0.75")));
        assert!(labels.iter().any(|l| l == "coarse-heap"));
    }

    #[test]
    fn every_spec_builds_a_working_queue() {
        for spec in QueueSpec::figure_lineup() {
            let q = build_queue::<u64>(spec, 2, 7);
            let mut h = q.register_dyn();
            h.insert(5, 50);
            h.insert(1, 10);
            let popped = h.delete_min().expect("non-empty");
            assert!(popped.0 == 1 || popped.0 == 5);
            assert_eq!(q.approx_len(), 1);
        }
    }

    #[test]
    fn multiqueue_spec_respects_thread_scaling() {
        let q = build_queue::<u64>(QueueSpec::multiqueue(1.0), 4, 1);
        // 4 threads * 2 queues/thread = 8 lanes; we can only check indirectly
        // through the name, which embeds the config.
        assert!(q.name().contains("n=8"));
    }

    #[test]
    fn elastic_spec_builds_a_resizable_queue() {
        let spec = QueueSpec::multiqueue_elastic(4, 2);
        assert_eq!(spec.label(), "mq-elastic(d=4, s=2, c=4)");
        let q = build_queue::<u64>(spec, 2, 7);
        let shape = q.topology_dyn();
        assert_eq!(shape.max_lanes, 8, "2 threads × c=4 capacity");
        assert!(shape.active_lanes < shape.max_lanes, "starts at the floor");
        assert_eq!(shape.shards, 2);
        let mut h = q.register_dyn();
        h.insert(1, 10);
        assert_eq!(h.delete_min(), Some((1, 10)));
    }

    #[test]
    fn d_choice_spec_builds_and_labels() {
        let spec = QueueSpec::multiqueue_d(4);
        assert_eq!(spec.label(), "multiqueue(d=4, c=2)");
        let q = build_queue::<u64>(spec, 2, 7);
        assert!(q.name().contains("d=4"));
        let mut h = q.register_dyn();
        h.insert(3, 30);
        h.insert(1, 10);
        let mut out = Vec::new();
        // Batched deletion works through the erased handle (Box forwarding);
        // d = n samples every lane, so the first batch starts at the global
        // minimum (the batch may stop early if the two keys straddle lanes).
        assert!(h.delete_min_batch_into(8, &mut out) >= 1);
        assert_eq!(out[0], (1, 10));
        while h.delete_min_batch_into(8, &mut out) > 0 {}
        assert_eq!(out.len(), 2);
    }
}
