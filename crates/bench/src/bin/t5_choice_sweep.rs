//! T5' — the choice/batch family: d-choice deleteMin × batched deletion.
//!
//! The paper analyses the (1 + β) family; the engine generalises it to any
//! `d`-choice rule plus per-handle delete batches that drain one lane under a
//! single lock. This sweep maps the resulting design space: for every
//! `d ∈ {1, 2, 4, 8}` and delete batch `∈ {1, 8, 64}` it reports throughput
//! (uninstrumented timed phase) and rank quality (instrumented phase, Section
//! 5 methodology), at one thread (uncontended, mirroring the sequential
//! model) and at four threads.
//!
//! Expected shape:
//!
//! * rank quality improves monotonically with `d` (more samples find better
//!   tops) and degrades roughly linearly with the batch size (a batch drains
//!   one lane past its top);
//! * throughput *rises* with the batch size — one random choice and one lock
//!   acquisition are amortised over the whole batch — and falls slowly with
//!   `d` (more cached-top probes per removal);
//! * d = 1/batch = 1 is the divergent single-choice baseline: its mean rank
//!   is far above every d ≥ 2 row and keeps growing with the run length.

//! Environment knobs: `T5_PREFILL` (default 50000), `T5_OPS` ops/thread
//! (default 100000); `BENCH_JSON=1` additionally emits one JSON row per
//! configuration for the t12 trajectory gate.

use choice_bench::env_u64;
use choice_bench::report::{
    emit_json_row, print_section, print_sweep_header, print_sweep_row, JsonValue,
};
use choice_bench::workloads::d_sweep_workload;

fn main() {
    let lanes = 8usize;
    let prefill: u64 = env_u64("T5_PREFILL", 50_000);
    let ops_per_thread: u64 = env_u64("T5_OPS", 100_000);
    let seed = 23u64;

    print_section(
        "T5'",
        "d-choice × delete-batch sweep (throughput + mean rank)",
    );
    println!(
        "n = {lanes} lanes, prefill {prefill}, {ops_per_thread} ops/thread; \
         batch = per-handle delete_min_batch size"
    );

    for threads in [1usize, 4] {
        println!();
        println!(
            "-- {threads} thread{} --",
            if threads == 1 { " (uncontended)" } else { "s" }
        );
        print_sweep_header();
        for d in [1usize, 2, 4, 8] {
            for batch in [1usize, 8, 64] {
                let r = d_sweep_workload(d, batch, threads, lanes, prefill, ops_per_thread, seed);
                print_sweep_row(
                    d,
                    batch,
                    threads,
                    r.throughput.ops_per_second,
                    r.rank.mean_rank,
                    r.rank.max_rank,
                );
                emit_json_row(
                    "t5",
                    &[
                        ("d", JsonValue::from(d as u64)),
                        ("batch", JsonValue::from(batch as u64)),
                        ("threads", JsonValue::from(threads as u64)),
                        ("lanes", JsonValue::from(lanes as u64)),
                        ("prefill", JsonValue::from(prefill)),
                        (
                            "mops_per_s",
                            JsonValue::from(r.throughput.ops_per_second / 1e6),
                        ),
                        ("mean_rank", JsonValue::from(r.rank.mean_rank)),
                        ("max_rank", JsonValue::from(r.rank.max_rank)),
                    ],
                );
            }
        }
    }

    println!();
    println!(
        "Expected shape: mean rank falls with d and rises with batch; Mops/s rises with batch \
         (amortised locking) — the batched configs should beat the d=2/batch=1 classic MultiQueue \
         on uncontended throughput. d=1/batch=1 is the divergent single-choice baseline."
    );
}
