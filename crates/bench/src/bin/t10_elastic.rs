//! T10 — the elasticity sweep: static lane counts vs the elastic
//! controller, under steady / bursty / diurnal arrivals.
//!
//! The paper sizes the MultiQueue statically at `c·p` lanes, which forces a
//! trade: a small static `c` collapses under contention bursts (try-lock
//! failures burn retries), a large static `c` wastes deleteMin samples on
//! empty lanes between bursts (sparse sampling, cold caches). The elastic
//! engine keeps the large capacity allocated but lets a controller move the
//! *active* lane count with the measured contention/sparseness rates — so
//! one configuration should track the best static choice across workload
//! phases, which is exactly what bursty and diurnal arrivals probe.
//!
//! Every row runs the identical open-loop traffic scenario (same seed ⇒ same
//! deterministic arrival schedule) through the `choice-sched` worker pool.
//! Reported per row: end-to-end **ktask/s**, **inv/1k** deadline inversions
//! per 1 000 tasks, the final **lane table** (`active/max`), the number of
//! **resizes** the run triggered, and the p99 lateness of the interactive
//! class.
//!
//! Environment knobs: `T10_TASKS` (default 40000), `T10_WORKERS` (default
//! 4); `BENCH_JSON=1` additionally emits one JSON object per row to stderr
//! (see `choice_bench::report`).

use std::sync::Arc;
use std::time::Duration;

use choice_bench::report::{emit_json_row, print_header, print_row, print_section, JsonValue};
use choice_bench::{build_queue, env_u64, scheduler_workload, QueueSpec};
use choice_sched::traffic::TrafficTask;
use choice_sched::{ArrivalPattern, ScenarioReport, TrafficClass, TrafficSpec};

fn main() {
    let workers = env_u64("T10_WORKERS", 4) as usize;
    let tasks = env_u64("T10_TASKS", 40_000);
    let seed = 29u64;

    let classes = vec![
        TrafficClass::new("interactive", 6.0, Duration::from_micros(500), 32),
        TrafficClass::new("batch", 1.0, Duration::from_millis(10), 256),
    ];
    // Steady saturates (capacity probe); bursty alternates contention spikes
    // with silence (the elastic pitch); diurnal sweeps the rate smoothly.
    let patterns = [
        ArrivalPattern::Steady { rate: 50_000_000.0 },
        ArrivalPattern::Bursty {
            rate: 4_000_000.0,
            on: Duration::from_millis(2),
            off: Duration::from_millis(6),
        },
        ArrivalPattern::Diurnal {
            base: 400_000.0,
            peak: 4_000_000.0,
            period: Duration::from_millis(40),
        },
    ];
    // The static-d baselines bracket the elastic ceiling: c=2 is the paper
    // sizing, c=4 is "statically always at the elastic maximum". All
    // MultiQueue rows share d=2 and delete batch 8 so the only moving part
    // is the lane policy.
    let delete_batch = 8usize;
    let specs = [
        QueueSpec::multiqueue_d(2), // static c=2
        QueueSpec::MultiQueueD {
            d: 2,
            queues_per_thread: 4,
        }, // static c=4 (the elastic ceiling, permanently active)
        QueueSpec::MultiQueueD {
            d: 2,
            queues_per_thread: 1,
        }, // static c=1 (the under-provisioned end)
        QueueSpec::multiqueue_elastic(2, 1),
        QueueSpec::multiqueue_elastic(2, 2), // sharded inserts on top
    ];

    print_section(
        "T10",
        "elastic lane scaling: static-d baselines vs the elastic controller",
    );
    println!(
        "{workers} workers, {tasks} tasks/scenario, delete batch {delete_batch}, \
         classes: interactive(500µs, w6) / batch(10ms, w1); EDF keys, \
         open-loop injection, identical schedule per pattern"
    );

    for pattern in patterns {
        let spec = TrafficSpec {
            pattern,
            classes: classes.clone(),
            tasks,
            seed,
        };
        println!();
        println!("-- {} --", pattern.label());
        print_header(&[
            "backend",
            "ktask/s",
            "inv/1k",
            "lanes",
            "resizes",
            "p99 int µs",
        ]);
        for queue_spec in &specs {
            let queue: Arc<dyn choice_pq::DynSharedPq<TrafficTask>> =
                build_queue(*queue_spec, workers, seed);
            let report = scheduler_workload(queue, workers, delete_batch, &spec);
            assert_eq!(
                report.sched.executed, tasks,
                "{}: every injected task must execute",
                report.label
            );
            print_scenario_row(&queue_spec.label(), &pattern.label(), &report);
        }
    }

    println!();
    println!(
        "Expected shape: the elastic rows track the best static row per pattern \
         — near c=1/c=2 in the quiet phases (few sparse samples), growing under \
         the bursts (few lock retries) — with nonzero resize counts on the \
         non-steady patterns."
    );
}

fn print_scenario_row(backend: &str, pattern: &str, report: &ScenarioReport) {
    let executed = report.sched.executed.max(1);
    let inversions_per_k = report.sched.inversions.count() as f64 * 1_000.0 / executed as f64;
    let shape = report.sched.topology;
    let p99_int = report.lateness.classes()[0].lateness_quantile_us(0.99);
    print_row(&[
        backend.to_string(),
        format!("{:.1}", report.sched.tasks_per_second / 1e3),
        format!("{inversions_per_k:.1}"),
        format!("{}/{}", shape.active_lanes, shape.max_lanes),
        shape.resize_events().to_string(),
        p99_int.to_string(),
    ]);

    let pool = report.sched.merged_stats();
    emit_json_row(
        "t10",
        &[
            ("backend", JsonValue::from(backend)),
            ("pattern", JsonValue::from(pattern)),
            ("executed", JsonValue::from(report.sched.executed)),
            (
                "ktask_per_s",
                JsonValue::from(report.sched.tasks_per_second / 1e3),
            ),
            ("inversions_per_k", JsonValue::from(inversions_per_k)),
            ("active_lanes", JsonValue::from(shape.active_lanes as u64)),
            ("max_lanes", JsonValue::from(shape.max_lanes as u64)),
            ("shards", JsonValue::from(shape.shards as u64)),
            ("grows", JsonValue::from(shape.grows)),
            ("shrinks", JsonValue::from(shape.shrinks)),
            ("empty_polls", JsonValue::from(pool.empty_polls)),
            ("contended_retries", JsonValue::from(pool.contended_retries)),
            ("p99_lateness_us_interactive", JsonValue::from(p99_int)),
        ],
    );
}
