//! T6 — Theorem 2: the rank distributions of the original and exponential
//! processes coincide.
//!
//! For several insertion-bias settings we measure, over repeated trials, which
//! bin owns each rank in (a) the original labelled process and (b) the
//! exponential process, and report the total-variation distance between the
//! two empirical distributions and between each of them and the theoretical
//! probability vector π.

use choice_bench::report::{f3, print_header, print_row, print_section};
use choice_process::coupling::distance_to_theory;
use choice_process::{rank_occupancy_distance, ProcessConfig, RankOccupancy};

fn main() {
    let labels: u64 = 20_000;
    let trials: u64 = 20;
    let configs: Vec<(&str, ProcessConfig)> = vec![
        ("uniform, n=8", ProcessConfig::new(8).with_seed(5)),
        ("uniform, n=32", ProcessConfig::new(32).with_seed(5)),
        (
            "bounded bias gamma=0.3, n=16",
            ProcessConfig::new(16).with_bias_gamma(0.3).with_seed(5),
        ),
        (
            "explicit 4:2:1:1, n=4",
            ProcessConfig::new(4)
                .with_bias_weights(vec![4.0, 2.0, 1.0, 1.0])
                .with_seed(5),
        ),
    ];

    print_section("T6", "Theorem 2: rank-distribution equivalence");
    println!("{labels} labels per trial, {trials} trials per configuration");
    print_header(&[
        "configuration",
        "TV(orig, exp)",
        "TV(orig, theory)",
        "TV(exp, theory)",
    ]);

    for (name, cfg) in configs {
        let original = RankOccupancy::of_original(&cfg, labels, trials);
        let exponential = RankOccupancy::of_exponential(&cfg, labels, trials);
        let theory = cfg.insertion_probabilities();
        print_row(&[
            name.to_string(),
            f3(rank_occupancy_distance(&original, &exponential)),
            f3(distance_to_theory(&original, &theory)),
            f3(distance_to_theory(&exponential, &theory)),
        ]);
    }
    println!();
    println!(
        "Expected shape: every total-variation distance is close to zero (sampling noise only), \
         i.e. the exponential process is statistically indistinguishable from the original."
    );
}
