//! T2 — Theorem 6: the single-choice process diverges.
//!
//! The process that inserts *and* removes at a single random queue has a mean
//! rank growing as Ω(√(t·n·log n)). We run it window by window and print the
//! per-window mean rank together with the √t fit; the two-choice process run
//! on the same schedule is printed alongside to show the contrast.

use choice_bench::report::{f2, print_header, print_row, print_section};
use choice_process::{ProcessConfig, SequentialProcess};

fn main() {
    let n = 32usize;
    let steps: u64 = 600_000;
    let windows = 6u64;
    let floor = (n as u64) * 2_000;

    print_section(
        "T2",
        "Theorem 6: single-choice divergence vs. two-choice stability",
    );
    println!("n = {n}, {steps} alternating steps, {windows} sample windows");
    print_header(&["window end t", "single mean", "two-choice mean"]);

    let mut single = SequentialProcess::new(ProcessConfig::new(n).with_beta(0.0).with_seed(11));
    let mut double = SequentialProcess::new(ProcessConfig::new(n).with_beta(1.0).with_seed(11));
    let interval = steps / windows;
    let (_, series_single) = single.run_alternating_with_series(steps, floor, interval);
    let (_, series_double) = double.run_alternating_with_series(steps, floor, interval);

    for (p1, p2) in series_single.points.iter().zip(series_double.points.iter()) {
        print_row(&[p1.0.to_string(), f2(p1.1), f2(p2.1)]);
    }

    let coeff = series_single.sqrt_growth_coefficient();
    let expected = (n as f64 * (n as f64).ln()).sqrt();
    println!();
    println!(
        "single-choice sqrt-growth fit: mean_rank ~ {:.3} * sqrt(t)   \
         (theory predicts Theta(sqrt(n log n)) = {:.1} scale factor)",
        coeff, expected
    );
    println!(
        "Expected shape: single-choice column grows steadily with t; two-choice column is flat."
    );
}
