//! Figure 1 — throughput of alternating insert/deleteMin operations.
//!
//! Paper setup: 10-second runs, 10M-element prefill, 10 trials, 1..18 hardware
//! threads on a Xeon E7-8890; MultiQueue variants (β = 1, 0.75, 0.5) beat the
//! Lindén–Jonsson skiplist and the k-LSM everywhere except the lowest thread
//! counts, and β < 1 improves on β = 1 by up to 20%.
//!
//! Here the run length and prefill are scaled down (see DESIGN.md §2.7) and
//! the thread sweep oversubscribes whatever cores are available; the expected
//! *shape* is that the distributed MultiQueues sustain their throughput as
//! threads are added while the centralized exact queues do not.

use std::sync::Arc;

use choice_bench::report::{mops, print_header, print_row, print_section};
use choice_bench::{build_queue, throughput_workload, QueueSpec};
use rank_stats::timing::ThroughputReport;

fn main() {
    let threads_sweep = [1usize, 2, 4, 8];
    let prefill: u64 = 100_000;
    let ops_per_thread: u64 = 150_000;
    let trials = 3;

    print_section(
        "F1",
        "throughput vs. threads (alternating insert/deleteMin)",
    );
    println!(
        "prefill = {prefill}, ops/thread = {ops_per_thread}, trials = {trials} \
         (paper: 10 s runs, 10M prefill, 10 trials)"
    );
    print_header(&["queue", "threads", "Mops/s", "stddev"]);

    for spec in QueueSpec::figure_lineup() {
        for &threads in &threads_sweep {
            let mut report = ThroughputReport::new(spec.label());
            for trial in 0..trials {
                let queue = build_queue::<u64>(spec, threads, 1000 + trial);
                let result = throughput_workload(
                    Arc::clone(&queue),
                    threads,
                    prefill,
                    ops_per_thread,
                    2000 + trial,
                );
                report.record_trial(result.ops_per_second);
            }
            print_row(&[
                spec.label(),
                threads.to_string(),
                mops(report.mean_throughput()),
                mops(report.std_dev()),
            ]);
        }
    }
    println!();
    println!(
        "Expected shape (paper): multiqueue beta<1 >= multiqueue beta=1 > skiplist/klsm/coarse \
         at higher thread counts."
    );
}
