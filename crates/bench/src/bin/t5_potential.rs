//! T5 — Theorem 3: E[Γ(t)] = O(n) for the exponential process.
//!
//! We run the exponential top process, sample the potential Γ(t)/n along the
//! trajectory, and report its mean, max and the drift-violation rate above the
//! O(n) threshold (the empirical counterpart of the Lemma 2 supermartingale
//! property). The single-choice process is included to show the potential
//! genuinely blows up without the second choice.

use choice_bench::report::{f2, print_header, print_row, print_section};
use choice_process::potential::{PotentialParams, PotentialSnapshot, PotentialTrajectory};
use choice_process::{ExponentialTopProcess, ProcessConfig};

fn trajectory(n: usize, beta: f64, steps: u64, samples: u64) -> PotentialTrajectory {
    // Measure every configuration with the same exponent alpha = 1/16 (the
    // value the analysis pairs with beta = 1) so the rows are comparable; for
    // beta = 0 the theorem gives no bound and the potential should visibly
    // blow up at this alpha.
    let alpha = PotentialParams::from_beta_gamma(1.0, 0.0).alpha;
    let cfg = ProcessConfig::new(n).with_beta(beta).with_seed(3);
    let mut process = ExponentialTopProcess::new(cfg);
    let mut traj = PotentialTrajectory::new();
    let interval = (steps / samples).max(1);
    for step in 0..steps {
        process.step();
        if step % interval == 0 {
            let snap = PotentialSnapshot::compute(&process.deviations(), alpha);
            traj.push(step, snap.gamma_per_bin);
        }
    }
    traj
}

fn main() {
    let steps: u64 = 400_000;
    let samples = 200;
    let configs = [
        (16usize, 1.0),
        (32, 1.0),
        (64, 1.0),
        (32, 0.5),
        (32, 0.0), // single choice, for contrast
    ];

    print_section("T5", "Theorem 3: the potential Gamma(t) stays O(n)");
    println!("{steps} removal steps per configuration, {samples} potential samples");
    print_header(&[
        "n",
        "beta",
        "mean Gamma/n",
        "max Gamma/n",
        "drift-violation",
    ]);

    for &(n, beta) in &configs {
        let traj = trajectory(n, beta, steps, samples);
        print_row(&[
            n.to_string(),
            format!("{beta}"),
            f2(traj.mean_gamma_per_bin()),
            f2(traj.max_gamma_per_bin()),
            f2(traj.drift_violation_rate(4.0)),
        ]);
    }
    println!();
    println!(
        "Expected shape: for beta > 0 the mean and max of Gamma/n are small constants \
         (independent of n) and the potential usually decreases when above the threshold; \
         for beta = 0 the potential grows without bound."
    );
}
