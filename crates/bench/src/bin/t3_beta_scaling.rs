//! T3 — the (1 + β) bounds: E\[rank\] = O(n/β²) and
//! E[max rank] = O((n/β)(log n + log 1/β)).
//!
//! Fixed n, sweep β, report the measured mean/max rank alongside the theory's
//! scaling envelopes. The paper conjectures the β dependence of the mean can
//! be improved to linear, so we print both the /β and /β² normalisations.

use choice_bench::report::{f2, print_header, print_row, print_section};
use choice_process::{ProcessConfig, SequentialProcess};

fn main() {
    let n = 32usize;
    let steps: u64 = 300_000;
    let floor = (n as u64) * 1_000;
    let betas = [1.0, 0.75, 0.5, 0.25, 0.125];

    print_section("T3", "(1+beta) scaling of the rank bounds at fixed n");
    println!("n = {n}, {steps} alternating steps per beta");
    print_header(&[
        "beta",
        "mean rank",
        "mean*beta/n",
        "mean*beta^2/n",
        "max rank",
        "max*beta/(n ln n)",
    ]);

    for &beta in &betas {
        let mut process =
            SequentialProcess::new(ProcessConfig::new(n).with_beta(beta).with_seed(23));
        let summary = process.run_alternating(steps, floor);
        let nf = n as f64;
        print_row(&[
            format!("{beta}"),
            f2(summary.mean_rank),
            f2(summary.mean_rank * beta / nf),
            f2(summary.mean_rank * beta * beta / nf),
            summary.max_rank.to_string(),
            f2(summary.max_rank as f64 * beta / (nf * nf.ln())),
        ]);
    }
    println!();
    println!(
        "Expected shape: raw mean/max ranks grow as beta shrinks; the beta- or beta^2- \
         normalised columns stay within a constant band (the paper's bound uses beta^2, \
         and conjectures beta suffices)."
    );
}
