//! T8 — the scheduler workload: backend × d × delete-batch × arrival
//! pattern, measured at the *application* level.
//!
//! Every configuration runs the identical open-loop traffic scenario (same
//! seed ⇒ same deterministic arrival schedule) through the `choice-sched`
//! worker pool: three priority classes with per-class deadlines, injected
//! concurrently with execution at a saturating rate, scheduled
//! earliest-deadline-first. Reported per row:
//!
//! * **ktask/s** — end-to-end completed tasks per second (the scheduler-level
//!   throughput metric; queue ops are a means, not the measure);
//! * **inv/1k** — deadline inversions observed per 1 000 tasks (the
//!   scheduler-level face of the paper's rank metric);
//! * **p99 lateness (µs)** per class — how late past its deadline the 99th
//!   percentile task *started* (log-bucket upper bound, factor-of-two
//!   precision).
//!
//! Expected shape: the MultiQueue rows beat the centralized exact queues on
//! tasks/sec (no serialisation on the global minimum) at a modest
//! inversion/lateness cost; raising the delete batch buys more throughput
//! (one lane choice + lock per batch); raising d claws back priority
//! quality. The coarse heap and skiplist pay serialisation on every pop; the
//! k-LSM sits between.
//!
//! Environment knobs: `SCHED_BENCH_TASKS` (default 60000),
//! `SCHED_BENCH_WORKERS` (default 4); `BENCH_JSON=1` additionally emits one
//! JSON object per row to stderr (see `choice_bench::report`).

use std::sync::Arc;
use std::time::Duration;

use choice_bench::report::{emit_json_row, print_header, print_row, print_section, JsonValue};
use choice_bench::{build_queue, env_u64, scheduler_workload, QueueSpec};
use choice_sched::traffic::TrafficTask;
use choice_sched::{ArrivalPattern, ScenarioReport, TrafficClass, TrafficSpec};

/// One benched configuration: how to build the queue and how the scheduler
/// drains it.
struct Config {
    spec: QueueSpec,
    delete_batch: usize,
}

fn main() {
    let workers = env_u64("SCHED_BENCH_WORKERS", 4) as usize;
    let tasks = env_u64("SCHED_BENCH_TASKS", 60_000);
    let seed = 23u64;

    let classes = vec![
        TrafficClass::new("interactive", 6.0, Duration::from_micros(500), 32),
        TrafficClass::new("batch", 3.0, Duration::from_millis(5), 128),
        TrafficClass::new("analytics", 1.0, Duration::from_millis(50), 512),
    ];
    // Steady is a *saturating* capacity probe (the injector never sleeps, so
    // tasks/sec measures the scheduler+queue service rate); bursty and
    // diurnal run near capacity and show how each backend absorbs load
    // swings as lateness.
    let patterns = [
        ArrivalPattern::Steady { rate: 50_000_000.0 },
        ArrivalPattern::Bursty {
            rate: 4_000_000.0,
            on: Duration::from_millis(2),
            off: Duration::from_millis(6),
        },
        ArrivalPattern::Diurnal {
            base: 500_000.0,
            peak: 4_000_000.0,
            period: Duration::from_millis(40),
        },
    ];
    // The MultiQueue d × batch grid, then the centralized baselines (their
    // delete batch stays 1: the default batch loop amortises nothing for
    // structures that serialise every pop anyway).
    let configs = [
        Config {
            spec: QueueSpec::multiqueue_d(2),
            delete_batch: 1,
        },
        Config {
            spec: QueueSpec::multiqueue_d(2),
            delete_batch: 8,
        },
        Config {
            spec: QueueSpec::multiqueue_d(8),
            delete_batch: 1,
        },
        Config {
            spec: QueueSpec::multiqueue_d(8),
            delete_batch: 8,
        },
        Config {
            spec: QueueSpec::CoarseHeap,
            delete_batch: 1,
        },
        Config {
            spec: QueueSpec::SkipList,
            delete_batch: 1,
        },
        Config {
            spec: QueueSpec::KLsm { relaxation: 256 },
            delete_batch: 1,
        },
    ];

    print_section(
        "T8",
        "relaxed-priority scheduler: backend × d × batch × arrival pattern",
    );
    println!(
        "{workers} workers, {tasks} tasks/scenario, classes: \
         interactive(500µs, w6) / batch(5ms, w3) / analytics(50ms, w1); \
         EDF keys, open-loop injection, identical schedule per pattern"
    );

    for pattern in patterns {
        let spec = TrafficSpec {
            pattern,
            classes: classes.clone(),
            tasks,
            seed,
        };
        println!();
        println!("-- {} --", pattern.label());
        print_header(&[
            "backend",
            "batch",
            "ktask/s",
            "inv/1k",
            "p99 int µs",
            "p99 bat µs",
            "p99 ana µs",
        ]);
        for config in &configs {
            let queue: Arc<dyn choice_pq::DynSharedPq<TrafficTask>> =
                build_queue(config.spec, workers, seed);
            let report = scheduler_workload(queue, workers, config.delete_batch, &spec);
            print_scenario_row(
                &config.spec.label(),
                &pattern.label(),
                config.delete_batch,
                &report,
            );
        }
    }

    println!();
    println!(
        "Expected shape: multiqueue rows above the centralized baselines on ktask/s; \
         batch=8 adds throughput, d=8 removes most inversions; the skiplist and \
         coarse heap serialise every pop and pay for it at {workers} workers."
    );
}

fn print_scenario_row(backend: &str, pattern: &str, delete_batch: usize, report: &ScenarioReport) {
    let executed = report.sched.executed.max(1);
    let inversions_per_k = report.sched.inversions.count() as f64 * 1_000.0 / executed as f64;
    let mut cells = vec![
        backend.to_string(),
        delete_batch.to_string(),
        format!("{:.1}", report.sched.tasks_per_second / 1e3),
        format!("{inversions_per_k:.1}"),
    ];
    for class in report.lateness.classes() {
        cells.push(class.lateness_quantile_us(0.99).to_string());
    }
    print_row(&cells);

    let pool = report.sched.merged_stats();
    let mut fields = vec![
        ("backend", JsonValue::from(backend)),
        ("pattern", JsonValue::from(pattern)),
        ("delete_batch", JsonValue::from(delete_batch as u64)),
        ("executed", JsonValue::from(report.sched.executed)),
        (
            "ktask_per_s",
            JsonValue::from(report.sched.tasks_per_second / 1e3),
        ),
        ("inversions_per_k", JsonValue::from(inversions_per_k)),
        ("empty_polls", JsonValue::from(pool.empty_polls)),
        ("contended_retries", JsonValue::from(pool.contended_retries)),
    ];
    let p99: Vec<(String, u64)> = report
        .lateness
        .classes()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            (
                format!("p99_lateness_us_class{i}"),
                c.lateness_quantile_us(0.99),
            )
        })
        .collect();
    for (name, value) in &p99 {
        fields.push((name.as_str(), JsonValue::from(*value)));
    }
    emit_json_row("t8", &fields);
}
