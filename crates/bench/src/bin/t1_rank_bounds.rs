//! T1 — Theorem 1: the two-choice process has E\[rank\] = O(n) and
//! E[max rank] = O(n log n), independent of the execution length.
//!
//! We sweep the queue count n, run a long prefixed (alternating) execution,
//! and report the mean and maximum rank normalised by n and by n·ln(n)
//! respectively: the normalised columns should stay roughly constant as n
//! grows, and should not drift as the execution gets longer.

use choice_bench::report::{f2, print_header, print_row, print_section};
use choice_process::{ProcessConfig, SequentialProcess};

fn main() {
    let steps: u64 = 400_000;
    let ns = [8usize, 16, 32, 64, 128];

    print_section(
        "T1",
        "Theorem 1: two-choice mean rank = O(n), max rank = O(n log n)",
    );
    println!("alternating execution, {steps} removals per configuration");
    print_header(&[
        "n",
        "mean rank",
        "mean/n",
        "max rank",
        "max/(n ln n)",
        "early mean",
        "late mean",
    ]);

    for &n in &ns {
        let floor = (n as u64) * 500;
        let mut process = SequentialProcess::new(ProcessConfig::new(n).with_beta(1.0).with_seed(7));
        let (summary, series) = process.run_alternating_with_series(steps, floor, steps / 8);
        let early = series.points.first().map(|p| p.1).unwrap_or(0.0);
        let late = series.points.last().map(|p| p.1).unwrap_or(0.0);
        let nf = n as f64;
        print_row(&[
            n.to_string(),
            f2(summary.mean_rank),
            f2(summary.mean_rank / nf),
            summary.max_rank.to_string(),
            f2(summary.max_rank as f64 / (nf * nf.ln())),
            f2(early),
            f2(late),
        ]);
    }
    println!();
    println!(
        "Expected shape: mean/n and max/(n ln n) are roughly flat in n; \
         early and late window means agree (no drift in t)."
    );
}
