//! T4 — robustness to insertion bias γ.
//!
//! Section 4 shows the rank bounds survive an insertion distribution that is
//! biased by a constant factor γ as long as β = Ω(γ). We sweep γ for the
//! two-choice process and for a (1 + β) process with β = 0.5, and also show the
//! single-choice process for contrast (which degrades badly because biased
//! queues accumulate backlogs).

use choice_bench::report::{f2, print_header, print_row, print_section};
use choice_process::{BiasSpec, ProcessConfig, SequentialProcess};

fn run(n: usize, beta: f64, gamma: f64, steps: u64) -> (f64, u64, f64) {
    let mut cfg = ProcessConfig::new(n).with_beta(beta).with_seed(31);
    if gamma > 0.0 {
        cfg = cfg.with_bias_gamma(gamma);
    }
    let realized = BiasSpec::realized_gamma(&cfg.insertion_probabilities());
    let mut process = SequentialProcess::new(cfg);
    let summary = process.run_alternating(steps, (n as u64) * 1_000);
    (summary.mean_rank, summary.max_rank, realized)
}

fn main() {
    let n = 32usize;
    let steps: u64 = 250_000;
    let gammas = [0.0, 0.1, 0.25, 0.5];

    print_section(
        "T4",
        "bias robustness: rank bounds under insertion bias gamma",
    );
    println!("n = {n}, {steps} alternating steps per configuration");
    print_header(&[
        "gamma (nominal)",
        "gamma (realized)",
        "beta=1 mean",
        "beta=1 max",
        "beta=0.5 mean",
        "beta=0 mean",
    ]);

    for &gamma in &gammas {
        let (mean_two, max_two, realized) = run(n, 1.0, gamma, steps);
        let (mean_half, _, _) = run(n, 0.5, gamma, steps);
        let (mean_single, _, _) = run(n, 0.0, gamma, steps);
        print_row(&[
            format!("{gamma}"),
            f2(realized),
            f2(mean_two),
            max_two.to_string(),
            f2(mean_half),
            f2(mean_single),
        ]);
    }
    println!();
    println!(
        "Expected shape: the beta=1 and beta=0.5 columns stay O(n) across the gamma sweep \
         (rising mildly with gamma); the beta=0 column is much larger and grows with run length."
    );
}
