//! T12 — the bench-trajectory regression gate.
//!
//! Compares two sets of `BENCH_*.json` artifacts (the stderr row streams
//! the other bench binaries emit under `BENCH_JSON=1`) and **fails** —
//! non-zero exit — when a throughput metric regressed beyond the
//! noise-aware allowance. Quality metrics (p99s, ranks) are reported with
//! a verdict but never gate; see `choice_bench::trajectory` for the
//! classification and the comparator.
//!
//! Environment:
//!
//! * `T12_BASELINE` — comma-separated artifact paths for the baseline side
//!   (several paths = several reps, aggregated to median + dispersion);
//! * `T12_CURRENT` — same, for the side under test;
//! * `T12_THRESHOLD` — base relative tolerance (default `0.10`); each
//!   pair's allowance is threshold + both sides' measured dispersion;
//! * `T12_SCALE` — multiply the current side's throughput medians by this
//!   factor before comparing (e.g. `0.8` injects a synthetic 20% slowdown;
//!   CI uses it to prove the gate actually fires);
//! * `T12_WRITE` — write the current side's canonical per-commit artifact
//!   (median, dispersion, reps, commit per point) to this path;
//! * `T12_HISTORY` — directory of per-commit canonical artifacts: the
//!   current side is appended as `{seq:05}-{commit}.json`, and the last
//!   `T12_HISTORY_N` (default 8) entries are scanned for **slow drift** —
//!   a metric whose newer-half median moved beyond the threshold even
//!   though no single commit tripped the pairwise gate. Drift is printed
//!   as a warning, never an exit code (history depth varies per checkout);
//! * `BENCH_COMMIT` — commit stamp override (else `git rev-parse`).
//!
//! Typical CI usage — run a bench twice at the same commit, gate the pair:
//!
//! ```text
//! BENCH_JSON=1 cargo run --release -p choice-bench --bin t9_service 2> a.json
//! BENCH_JSON=1 cargo run --release -p choice-bench --bin t9_service 2> b.json
//! T12_BASELINE=a.json T12_CURRENT=b.json cargo run -p choice-bench --bin t12_compare
//! ```

use choice_bench::report::{print_header, print_row, print_section};
use choice_bench::trajectory::{
    collect, commit_hash, compare, detect_drift, render, BenchPoint, Verdict,
};

/// Reads a comma-separated path list env var into file contents.
fn read_side(var: &str) -> Vec<String> {
    let spec = std::env::var(var).unwrap_or_default();
    let paths: Vec<&str> = spec
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect();
    if paths.is_empty() {
        eprintln!("t12_compare: {var} is unset or empty — nothing to compare");
        std::process::exit(2);
    }
    paths
        .iter()
        .map(|p| match std::fs::read_to_string(p) {
            Ok(content) => content,
            Err(e) => {
                eprintln!("t12_compare: cannot read {p}: {e}");
                std::process::exit(2);
            }
        })
        .collect()
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn side_points(var: &str, commit: &str) -> Vec<BenchPoint> {
    match collect(&read_side(var), commit) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("t12_compare: {var}: {e}");
            std::process::exit(2);
        }
    }
}

/// Appends the current side to the per-commit history directory and prints
/// slow-drift warnings over the last `T12_HISTORY_N` entries. Best-effort
/// and report-only: an unreadable history warns, it never changes the exit
/// code (the pairwise gate owns that).
fn history_step(dir: &str, current: &[BenchPoint], commit: &str, threshold: f64) {
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!(
            "t12_compare: cannot create T12_HISTORY {}: {e}",
            dir.display()
        );
        return;
    }
    let mut entries: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect(),
        Err(e) => {
            eprintln!(
                "t12_compare: cannot read T12_HISTORY {}: {e}",
                dir.display()
            );
            return;
        }
    };
    entries.sort(); // zero-padded sequence prefixes order lexically
    let next = dir.join(format!("{:05}-{commit}.json", entries.len()));
    if let Err(e) = std::fs::write(&next, render(current)) {
        eprintln!("t12_compare: cannot append {}: {e}", next.display());
        return;
    }
    entries.push(next);
    println!(
        "history: {} entries in {} (appended commit {commit})",
        entries.len(),
        dir.display()
    );

    let window = std::env::var("T12_HISTORY_N")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 4)
        .unwrap_or(8);
    let tail = &entries[entries.len().saturating_sub(window)..];
    let runs: Vec<Vec<BenchPoint>> = tail
        .iter()
        .filter_map(|p| {
            let content = std::fs::read_to_string(p).ok()?;
            collect(&[content], "history").ok()
        })
        .collect();
    let drifts = detect_drift(&runs, threshold);
    if drifts.is_empty() {
        println!(
            "history: no slow drift over the last {} run(s) (threshold {threshold:.2})",
            runs.len()
        );
    } else {
        for d in &drifts {
            println!(
                "warning: SLOW DRIFT over {} run(s): {} @ {}: {:.2} -> {:.2} ({:+.1}%)",
                d.runs,
                d.metric,
                d.id,
                d.older,
                d.newer,
                d.change * 100.0
            );
        }
    }
}

fn main() {
    let threshold = env_f64("T12_THRESHOLD", 0.10);
    let scale = env_f64("T12_SCALE", 1.0);
    let commit = commit_hash();

    let baseline = side_points("T12_BASELINE", "baseline");
    let mut current = side_points("T12_CURRENT", &commit);
    if scale != 1.0 {
        use choice_bench::trajectory::MetricKind;
        for p in &mut current {
            if p.kind == MetricKind::Throughput {
                p.median *= scale;
            }
        }
        println!("(synthetic T12_SCALE={scale} applied to current throughput medians)");
    }

    if let Ok(path) = std::env::var("T12_WRITE") {
        if !path.trim().is_empty() {
            if let Err(e) = std::fs::write(&path, render(&current)) {
                eprintln!("t12_compare: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!(
                "canonical artifact ({} points, commit {commit}) -> {path}",
                current.len()
            );
        }
    }

    if let Ok(dir) = std::env::var("T12_HISTORY") {
        if !dir.trim().is_empty() {
            history_step(dir.trim(), &current, &commit, threshold);
        }
    }

    print_section(
        "T12",
        "bench trajectory: current vs baseline, noise-aware gate",
    );
    println!(
        "threshold {threshold:.2} (+ per-pair dispersion); {} baseline / {} current points; \
         commit {commit}",
        baseline.len(),
        current.len()
    );
    println!();
    print_header(&[
        "verdict",
        "Δ%",
        "allow%",
        "baseline",
        "current",
        "metric @ bench",
    ]);

    let comparisons = compare(&baseline, &current, threshold);
    let mut matched = 0usize;
    let mut missing = 0usize;
    let mut gated_regressions = Vec::new();
    for c in &comparisons {
        let verdict = match c.verdict {
            Verdict::Pass => "ok",
            Verdict::Improvement => "improved",
            Verdict::Regression if c.gated => "REGRESSED",
            Verdict::Regression => "worse (ungated)",
            Verdict::Missing => "missing",
        };
        if c.verdict == Verdict::Missing {
            missing += 1;
        } else {
            matched += 1;
        }
        print_row(&[
            verdict.to_string(),
            format!("{:+.1}", c.change * 100.0),
            format!("{:.1}", c.allowance * 100.0),
            format!("{:.2}", c.baseline),
            format!("{:.2}", c.current),
            format!("{} @ {}", c.metric, c.id),
        ]);
        if c.gated && c.verdict == Verdict::Regression {
            gated_regressions.push(c);
        }
    }

    println!();
    if missing > 0 {
        println!(
            "warning: {missing} baseline point(s) absent from the current run \
             (renamed bench or incomplete artifact?)"
        );
    }
    if matched == 0 {
        // An empty comparison must not read as a green gate.
        eprintln!("t12_compare: no baseline point matched any current point — failing");
        std::process::exit(2);
    }
    if gated_regressions.is_empty() {
        println!("gate: PASS — {matched} compared point(s), no throughput regression");
    } else {
        println!(
            "gate: FAIL — {} throughput regression(s) beyond the noise allowance:",
            gated_regressions.len()
        );
        for c in &gated_regressions {
            println!(
                "  {} @ {}: {:.2} -> {:.2} ({:+.1}%, allowance ±{:.1}%)",
                c.metric,
                c.id,
                c.baseline,
                c.current,
                c.change * 100.0,
                c.allowance * 100.0
            );
        }
        std::process::exit(1);
    }
}
