//! T7 — Appendix A/B: the round-robin reduction and the classic
//! balls-into-bins gaps.
//!
//! Under round-robin insertion the removal process reduces exactly to a
//! two-choice balls-into-bins process on virtual bins (Appendix A); the
//! divergence lower bound (Appendix B) then follows from the known
//! Θ(√(t/n·log n)) gap of the single-choice long-lived process. We measure
//! both sides: the virtual-bin gap of the labelled round-robin process and the
//! gap of the raw allocation processes, for single- and two-choice rules.

use balls_bins::{ChoiceRule, LongLivedProcess};
use choice_bench::report::{f2, print_header, print_row, print_section};
use choice_process::RoundRobinProcess;

fn main() {
    let n = 64usize;
    let per_bin_steps: u64 = 5_000;
    let steps = n as u64 * per_bin_steps;

    print_section(
        "T7",
        "Appendix A/B: round-robin reduction and balls-into-bins gaps",
    );
    println!("n = {n} bins/queues, {steps} removal (or insertion) steps");

    // Part 1: the raw allocation processes.
    print_header(&["process", "rule", "gap above mean"]);
    for (label, rule) in [
        ("balls-into-bins", ChoiceRule::SingleChoice),
        ("balls-into-bins", ChoiceRule::TwoChoice),
        ("balls-into-bins", ChoiceRule::OnePlusBeta(0.5)),
    ] {
        let mut p = LongLivedProcess::new(n, rule, 9);
        p.run(steps);
        print_row(&[label.to_string(), rule.name(), f2(p.stats().gap_above_mean)]);
    }

    // Part 2: the labelled round-robin process and its virtual bins.
    print_header(&["process", "rule", "virtual gap", "mean rank"]);
    for (label, rule) in [
        ("round-robin labelled", ChoiceRule::SingleChoice),
        ("round-robin labelled", ChoiceRule::TwoChoice),
    ] {
        let mut p = RoundRobinProcess::new(n, rule, 9);
        p.prefill(steps + n as u64 * 100);
        let summary = p.run_removals(steps);
        print_row(&[
            label.to_string(),
            format!("{rule:?}"),
            f2(p.virtual_bin_stats().gap_above_mean),
            f2(summary.mean_rank),
        ]);
    }
    println!();
    println!(
        "Expected shape: the two-choice gaps (raw and virtual) are tiny constants (O(log log n)); \
         the single-choice gaps are an order of magnitude larger and grow with t, and the \
         round-robin virtual gap matches the raw balls-into-bins gap — the Appendix A reduction."
    );
}
