//! T9 — the network workload: every backend behind the choice-wire TCP
//! service, loaded by an open-loop multi-client generator.
//!
//! Per backend × arrival pattern, one scenario runs end to end **over
//! loopback TCP**:
//!
//! 1. a [`PqServer`] is spawned in-process on an ephemeral port, serving the
//!    backend through `DynSharedPq` (the same type-erased construction every
//!    other bench uses);
//! 2. `SERVICE_BENCH_CLIENTS` client threads connect, each with its own
//!    pipelined [`PqClient`] session and its own deterministic
//!    `sched::traffic` arrival schedule (steady / bursty / diurnal — the
//!    same generators that drive `t8_scheduler`, reused over the network);
//! 3. each client follows its schedule *open-loop* — it sleeps until an
//!    arrival's nominal time, never pacing itself on the service — and on
//!    each arrival submits one `Insert`, interleaving one
//!    `DeleteMinBatch(SERVICE_BENCH_BATCH)` every batch-sized block of
//!    arrivals so the queue stays near steady state;
//! 4. every response is matched (in order — the protocol guarantees it) to
//!    its send time, giving a per-request round-trip latency recorded into a
//!    shared `client_rtt_ns` histogram of a choice-obs [`MetricsRegistry`]
//!    (the clients record concurrently into sharded cells; the report reads
//!    one merged snapshot — no per-thread histogram merging here).
//!
//! Reported per row: completed wire operations, throughput (kops/s), and
//! p50/p99/max round-trip latency in µs (log-bucket upper bounds). Rates are
//! chosen so the steady pattern saturates (the schedule's nominal rate is far
//! above what loopback sustains ⇒ the sleep never fires and the row measures
//! service capacity), while bursty/diurnal run paced and show how latency
//! absorbs the load swings.
//!
//! Environment knobs: `SERVICE_BENCH_OPS` (arrivals per client, default
//! 40000), `SERVICE_BENCH_CLIENTS` (default 4), `SERVICE_BENCH_WINDOW`
//! (pipeline credit window, default 64), `SERVICE_BENCH_BATCH` (delete
//! batch, default 8); `BENCH_JSON=1` emits one JSON object per row to
//! stderr.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use choice_bench::report::{emit_json_row, print_header, print_row, print_section, JsonValue};
use choice_bench::{build_queue, env_u64, QueueSpec};
use choice_obs::{Histogram, HistogramSnapshot, MetricsRegistry};
use choice_sched::{ArrivalPattern, TrafficClass, TrafficSpec};
use choice_wire::{PqClient, PqServer, Request, Response, ServerConfig};

/// Runs one client: follow the arrival schedule open-loop, pipeline the
/// operations, time every response into the scenario's shared histogram.
fn run_client(
    addr: SocketAddr,
    window: usize,
    batch: u32,
    spec: &TrafficSpec,
    rtt_ns: &Histogram,
) -> Result<u64, choice_wire::ClientError> {
    let schedule = spec.schedule();
    let mut client = PqClient::connect_with_window(addr, window)?;
    let mut operations = 0u64;
    let mut record = |(response, rtt): (Response, Duration)| {
        // A refusal would be a bug in the generator (it never sends the
        // reserved key); count only answered operations.
        debug_assert!(!matches!(response, Response::Error { .. }));
        rtt_ns.record(rtt.as_nanos() as u64);
    };
    let epoch = Instant::now();
    for (i, arrival) in schedule.iter().enumerate() {
        let now = epoch.elapsed();
        if arrival.at > now {
            std::thread::sleep(arrival.at - now);
        }
        // EDF-style keys, exactly like the in-process scheduler scenarios:
        // arrival time plus the class deadline, in nanoseconds.
        let key = (arrival.at + spec.classes[arrival.class].deadline).as_nanos() as u64;
        if let Some(timed) = client.submit(&Request::Insert {
            key,
            value: i as u64,
        })? {
            record(timed);
        }
        operations += 1;
        if (i + 1) % batch.max(1) as usize == 0 {
            if let Some(timed) = client.submit(&Request::DeleteMinBatch { max: batch })? {
                record(timed);
            }
            operations += 1;
        }
    }
    client.drain_all(&mut record)?;
    Ok(operations)
}

/// One scenario: spawn the service over `spec`'s backend, run the client
/// fleet, aggregate.
fn run_scenario(
    queue_spec: QueueSpec,
    pattern: ArrivalPattern,
    clients: usize,
    ops_per_client: u64,
    window: usize,
    batch: u32,
    seed: u64,
) -> (u64, f64, HistogramSnapshot) {
    let queue = build_queue::<u64>(queue_spec, clients, seed);
    let server = PqServer::spawn(
        Arc::clone(&queue),
        "127.0.0.1:0",
        ServerConfig::default().with_credit_window(window),
    )
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr();

    let classes = vec![
        TrafficClass::new("interactive", 3.0, Duration::from_micros(500), 0),
        TrafficClass::new("batch", 1.0, Duration::from_millis(20), 0),
    ];
    // Every client records into one shared, sharded obs histogram; the
    // report below reads a single merged snapshot.
    let metrics = MetricsRegistry::new();
    let (backend, pattern_label) = (queue_spec.label(), pattern.label());
    let rtt_ns = metrics.histogram(
        "client_rtt_ns",
        &[("backend", &backend), ("pattern", &pattern_label)],
    );
    let timer = Instant::now();
    let operations: u64 = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                let spec = TrafficSpec {
                    pattern,
                    classes: classes.clone(),
                    tasks: ops_per_client,
                    seed: seed ^ (c as u64 + 1).wrapping_mul(0x9E37),
                };
                let rtt_ns = &rtt_ns;
                scope.spawn(move || {
                    run_client(addr, window, batch, &spec, rtt_ns)
                        .expect("client ran to completion")
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).sum()
    });
    let elapsed = timer.elapsed().as_secs_f64();
    server.shutdown();
    server.join();
    (
        operations,
        operations as f64 / elapsed.max(1e-9),
        rtt_ns.snapshot(),
    )
}

fn main() {
    let ops_per_client = env_u64("SERVICE_BENCH_OPS", 40_000);
    let clients = env_u64("SERVICE_BENCH_CLIENTS", 4) as usize;
    let window = env_u64("SERVICE_BENCH_WINDOW", 64) as usize;
    let batch = env_u64("SERVICE_BENCH_BATCH", 8) as u32;
    let seed = 31u64;

    // Steady saturates loopback (nominal 50M arrivals/s per client: the
    // pacing sleep never fires); bursty and diurnal are genuinely paced.
    let patterns = [
        ArrivalPattern::Steady { rate: 50_000_000.0 },
        ArrivalPattern::Bursty {
            rate: 400_000.0,
            on: Duration::from_millis(2),
            off: Duration::from_millis(6),
        },
        ArrivalPattern::Diurnal {
            base: 50_000.0,
            peak: 400_000.0,
            period: Duration::from_millis(40),
        },
    ];
    let backends = [
        QueueSpec::multiqueue(0.75),
        QueueSpec::CoarseHeap,
        QueueSpec::KLsm { relaxation: 256 },
        QueueSpec::SkipList,
    ];

    print_section(
        "T9",
        "choice-wire service: backend × arrival pattern over loopback TCP",
    );
    println!(
        "{clients} clients × {ops_per_client} arrivals, pipeline window {window}, \
         delete batch {batch}; open-loop traffic schedules reused from sched::traffic"
    );

    let mut total_operations = 0u64;
    for pattern in patterns {
        println!();
        println!("-- {} --", pattern.label());
        print_header(&[
            "backend",
            "ops",
            "kops/s",
            "p50 rtt µs",
            "p99 rtt µs",
            "max rtt µs",
        ]);
        for backend in backends {
            let (operations, ops_per_second, rtt_ns) = run_scenario(
                backend,
                pattern,
                clients,
                ops_per_client,
                window,
                batch,
                seed,
            );
            total_operations += operations;
            let quantile_us = |q: f64| rtt_ns.quantile_upper_bound(q).unwrap_or(0) as f64 / 1_000.0;
            print_row(&[
                backend.label(),
                operations.to_string(),
                format!("{:.1}", ops_per_second / 1e3),
                format!("{:.1}", quantile_us(0.50)),
                format!("{:.1}", quantile_us(0.99)),
                format!("{:.1}", rtt_ns.max as f64 / 1_000.0),
            ]);
            emit_json_row(
                "t9",
                &[
                    ("backend", JsonValue::Str(backend.label())),
                    ("pattern", JsonValue::Str(pattern.label())),
                    ("clients", JsonValue::from(clients as u64)),
                    ("window", JsonValue::from(window as u64)),
                    ("delete_batch", JsonValue::from(u64::from(batch))),
                    ("ops", JsonValue::from(operations)),
                    ("kops_per_s", JsonValue::from(ops_per_second / 1e3)),
                    ("p50_rtt_us", JsonValue::from(quantile_us(0.50))),
                    ("p99_rtt_us", JsonValue::from(quantile_us(0.99))),
                    ("max_rtt_us", JsonValue::from(rtt_ns.max as f64 / 1_000.0)),
                ],
            );
        }
    }

    // The CI smoke step relies on this: a run that silently did nothing is
    // a failure, not a fast success.
    assert!(
        total_operations > 0,
        "t9 completed zero operations — the service never answered"
    );
    println!();
    println!(
        "Expected shape: the relaxed MultiQueue rows match or beat the centralized \
         baselines under multi-client load (no serialisation on the global minimum \
         behind the accept loop); steady rows measure loopback service capacity, \
         bursty/diurnal rows absorb their load swings as p99 RTT."
    );
}
