//! Figure 2 — mean rank of removed elements vs. β (log scale in the paper).
//!
//! Paper setup: 8 queues, 8 threads; the mean rank grows as β shrinks but the
//! growth is limited for β ≥ 0.5, with an apparent inflection around β = 0.5.
//! We reproduce the same sweep with the timestamp-based rank measurement, and
//! additionally print the *sequential-process* mean rank for the same β as the
//! noise-free reference (the quantity Theorem 1 bounds).

use choice_bench::report::{f2, print_header, print_row, print_section};
use choice_bench::workloads::rank_quality_workload;
use choice_process::{ProcessConfig, SequentialProcess};

fn main() {
    let queues = 8;
    let threads = 8;
    let prefill: u64 = 200_000;
    let ops_per_thread: u64 = 40_000;
    let betas = [1.0, 0.75, 0.5, 0.25, 0.125, 0.0625];

    print_section("F2", "mean rank returned vs. beta (8 queues, 8 threads)");
    println!("prefill = {prefill}, ops/thread = {ops_per_thread}");
    print_header(&[
        "beta",
        "conc mean rank",
        "conc max rank",
        "seq mean rank",
        "seq max rank",
    ]);

    for &beta in &betas {
        let concurrent = rank_quality_workload(queues, beta, threads, prefill, ops_per_thread, 42);
        let mut process =
            SequentialProcess::new(ProcessConfig::new(queues).with_beta(beta).with_seed(42));
        let sequential = process.run_alternating(200_000, prefill);
        print_row(&[
            format!("{beta}"),
            f2(concurrent.mean_rank),
            concurrent.max_rank.to_string(),
            f2(sequential.mean_rank),
            sequential.max_rank.to_string(),
        ]);
    }
    println!();
    println!(
        "Expected shape (paper): mean rank increases as beta decreases; the increase is \
         moderate for beta >= 0.5 and accelerates below it."
    );
}
