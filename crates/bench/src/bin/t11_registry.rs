//! T11 — the registry workload: many named queues behind one server, and
//! quota isolation under a noisy neighbour.
//!
//! Two scenarios, both end to end over loopback TCP against the v3
//! choice-wire server fronting a [`QueueRegistry`]:
//!
//! **Spread** — the same total operation budget pushed through 1 / 8 / 64
//! named queues (few-huge-queues vs many-small-queues). Every client cycles
//! its pipelined session across the queue namespace in blocks of `UseQueue`
//! rebinds. The registry pitch is that per-queue relaxation keeps this flat:
//! a queue per tenant costs lanes, not a shared serialisation point, so
//! throughput should not collapse as the namespace grows (small-queue rows
//! pay only the rebind round trips and colder per-queue lanes).
//!
//! **Noisy neighbour** — a paced *victim* tenant (open-loop EDF arrivals,
//! lateness measured per popped task against its embedded deadline, exactly
//! the `sched::lateness` convention; the trackers mirror into a choice-obs
//! hub and every reported lateness/refusal number is read back from the
//! hub's metrics snapshot, not from the trackers) shares the server with a
//! saturating
//! *aggressor* tenant on its own queue. Three phases per sample: the victim
//! **solo** (baseline); the aggressor **unlimited** (interference visible as
//! victim p99 lateness); the aggressor behind an ops/sec **quota** token
//! bucket (refusals shed it — each `QuotaExceeded` is the backoff signal a
//! well-behaved client waits on — and the victim's throughput and p99
//! lateness return to within ~10% of solo). Aggressor refusals are recorded
//! through [`LatenessTracker::record_refusal`], so its reported completion
//! fraction is demand-relative, first-class shed accounting.
//!
//! Every reported number is the **median of `T11_SAMPLES` runs** (default
//! 5). Environment knobs: `T11_SAMPLES`, `T11_CLIENTS` (spread clients,
//! default 4), `T11_SPREAD_OPS` (arrivals per spread client, default
//! 20000), `T11_VICTIM_OPS` (default 20000), `T11_VICTIM_RATE` (arrivals/s,
//! default 40000), `T11_AGGRESSOR_RATE` (quota ops/s, default 2000),
//! `T11_WINDOW` (pipeline window, default 64), `T11_STRICT=1` (assert the
//! 10% isolation bounds — the acceptance gate), `BENCH_JSON=1` (one JSON
//! object per row to stderr; redirect to `BENCH_t11.json`).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use choice_bench::env_u64;
use choice_bench::report::{emit_json_row, print_header, print_row, print_section, JsonValue};
use choice_bench::trajectory::commit_hash;
use choice_obs::ObsHub;
use choice_sched::LatenessTracker;
use choice_wire::{
    BackendSpec, PqClient, PqServer, QueueRegistry, QuotaSpec, Request, Response, ServerConfig,
};

/// Median of a sample vector (odd or even length; NaN-free inputs).
fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Relative dispersion of the samples behind a reported median: half the
/// span over the median — what `t12_compare`'s noise-aware gate widens its
/// allowance by. A zero median with spread degrades to 1.0 (fully noisy).
fn rel_dispersion(samples: &[f64]) -> f64 {
    let m = median(samples.to_vec());
    let (lo, hi) = samples
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
            (lo.min(s), hi.max(s))
        });
    let half_span = (hi - lo) / 2.0;
    if half_span == 0.0 {
        0.0
    } else if m.abs() < 1e-12 {
        1.0
    } else {
        half_span / m.abs()
    }
}

// ---------------------------------------------------------------------------
// Scenario A: queue-count spread
// ---------------------------------------------------------------------------

/// One spread run: `queues` named queues, `clients` pipelined clients each
/// pushing `ops_per_client` inserts (plus one `DeleteMinBatch(8)` per 8
/// inserts), rebinding across the namespace in blocks. Returns (total wire
/// ops, ops/s).
fn run_spread(queues: u64, clients: usize, ops_per_client: u64, window: usize) -> (u64, f64) {
    const BLOCK: u64 = 256;
    const BATCH: u32 = 8;
    let registry = Arc::new(QueueRegistry::default());
    for q in 0..queues {
        registry
            .create(
                &format!("t/{q}"),
                BackendSpec::MultiQueue {
                    lanes: 2 * clients as u32,
                    d: 2,
                },
                QuotaSpec::unlimited(),
            )
            .expect("spread namespace fits the registry");
    }
    let server = PqServer::spawn_registry(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default().with_credit_window(window),
    )
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr();

    let timer = Instant::now();
    let ops: u64 = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients as u64)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = PqClient::connect_with_window(addr, window).expect("connect");
                    let mut operations = 0u64;
                    let mut bound = u64::MAX;
                    for i in 0..ops_per_client {
                        // Rotate the binding across the namespace per block;
                        // a rebind is a synchronous round trip, so it also
                        // drains the pipeline.
                        let q = (c + i / BLOCK) % queues;
                        if q != bound {
                            client.use_queue(&format!("t/{q}")).expect("rebind");
                            bound = q;
                        }
                        let key = c * ops_per_client + i;
                        client
                            .submit(&Request::Insert { key, value: key })
                            .expect("pipelined insert");
                        operations += 1;
                        if (i + 1) % u64::from(BATCH) == 0 {
                            client
                                .submit(&Request::DeleteMinBatch { max: BATCH })
                                .expect("pipelined batch removal");
                            operations += 1;
                        }
                    }
                    client.drain_all(|_| {}).expect("acks");
                    operations
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).sum()
    });
    let elapsed = timer.elapsed().as_secs_f64();
    server.shutdown();
    server.join();
    (ops, ops as f64 / elapsed.max(1e-9))
}

// ---------------------------------------------------------------------------
// Scenario B: noisy neighbour
// ---------------------------------------------------------------------------

/// Outcome of one victim run: completed wire ops, wall-clock, and the p99
/// of the lateness distribution — read back from the obs hub the tracker
/// mirrors into (log-bucket upper bound, µs).
struct VictimOutcome {
    ops: u64,
    elapsed_s: f64,
    p99_lateness_us: u64,
}

/// The paced victim: open-loop steady arrivals at `rate`/s, EDF keys
/// (arrival + deadline, in ns since the run epoch), one synchronous insert
/// per arrival and one `DeleteMinBatch(4)` per 4 arrivals; the lateness of
/// a popped task is measured on receipt against the deadline in its key.
fn run_victim(addr: SocketAddr, ops: u64, rate: f64) -> VictimOutcome {
    const DEADLINE: Duration = Duration::from_millis(2);
    let mut client = PqClient::connect(addr).expect("victim connect");
    client.use_queue("victim").expect("victim bind");
    let hub = ObsHub::with_capacity(16);
    let mut lateness = LatenessTracker::with_obs(1, &hub);
    let mut completed = 0u64;
    let interval_ns = 1e9 / rate;
    let epoch = Instant::now();
    for i in 0..ops {
        let at = Duration::from_nanos((interval_ns * i as f64) as u64);
        let now = epoch.elapsed();
        if at > now {
            std::thread::sleep(at - now);
        }
        let key = (at + DEADLINE).as_nanos() as u64;
        client.insert(key, i).expect("victim insert");
        completed += 1;
        if (i + 1) % 4 == 0 {
            let entries = client.delete_min_batch(4).expect("victim removal");
            completed += 1;
            let now_ns = epoch.elapsed().as_nanos() as u64;
            for (deadline_ns, _) in entries {
                lateness.record(0, now_ns.saturating_sub(deadline_ns));
            }
        }
    }
    // Bounded final drain so the tail of the backlog is measured too.
    for _ in 0..16 {
        let entries = client.delete_min_batch(64).expect("victim final drain");
        if entries.is_empty() {
            break;
        }
        completed += 1;
        let now_ns = epoch.elapsed().as_nanos() as u64;
        for (deadline_ns, _) in entries {
            lateness.record(0, now_ns.saturating_sub(deadline_ns));
        }
    }
    // Report from the hub, not the tracker: the mirrored histogram uses the
    // same log-bucket discipline, so the quantile agrees by construction.
    let p99_lateness_us = hub
        .metrics()
        .snapshot()
        .histogram("sched_lateness_ns", &[("class", "0")])
        .and_then(|h| h.quantile_upper_bound(0.99))
        .unwrap_or(0)
        / 1_000;
    drop(lateness);
    VictimOutcome {
        ops: completed,
        elapsed_s: epoch.elapsed().as_secs_f64(),
        p99_lateness_us,
    }
}

/// Outcome of one aggressor run: answered operations and quota refusals
/// (demand-relative, via the lateness tracker's refusal accounting).
struct AggressorOutcome {
    completed: u64,
    refused: u64,
}

/// The saturating aggressor: unpaced pipelined inserts (plus one
/// `DeleteMinBatch(8)` per 8 inserts) on its own queue until `stop`. A
/// `QuotaExceeded` response is treated as the shed signal it is: count it
/// as a refusal and back off briefly before offering more load.
fn run_aggressor(addr: SocketAddr, window: usize, stop: &AtomicBool) -> AggressorOutcome {
    const BACKOFF: Duration = Duration::from_micros(200);
    let mut client = PqClient::connect_with_window(addr, window).expect("aggressor connect");
    client.use_queue("aggressor").expect("aggressor bind");
    let hub = ObsHub::with_capacity(16);
    let mut tracker = LatenessTracker::with_obs(1, &hub);
    let mut i = 0u64;
    let handle = |response: Response, tracker: &mut LatenessTracker| -> bool {
        if matches!(response, Response::Error { .. }) {
            tracker.record_refusal(0);
            true
        } else {
            tracker.record(0, 0);
            false
        }
    };
    while !stop.load(Ordering::Relaxed) {
        i += 1;
        let mut refused = false;
        if let Some((response, _)) = client
            .submit(&Request::Insert { key: i, value: i })
            .expect("aggressor insert")
        {
            refused |= handle(response, &mut tracker);
        }
        if i.is_multiple_of(8) {
            if let Some((response, _)) = client
                .submit(&Request::DeleteMinBatch { max: 8 })
                .expect("aggressor removal")
            {
                refused |= handle(response, &mut tracker);
            }
        }
        if refused {
            std::thread::sleep(BACKOFF);
        }
    }
    client
        .drain_all(|(response, _)| {
            handle(response, &mut tracker);
        })
        .expect("aggressor drain");
    // Demand accounting read back from the obs mirrors: every `record` is
    // one histogram sample, every `record_refusal` one counter increment.
    let snapshot = hub.metrics().snapshot();
    AggressorOutcome {
        completed: snapshot
            .histogram("sched_lateness_ns", &[("class", "0")])
            .map_or(0, |h| h.count()),
        refused: snapshot
            .counter("sched_refusals_total", &[("class", "0")])
            .unwrap_or(0),
    }
}

/// The aggressor's quota in each noisy-neighbour phase.
#[derive(Clone, Copy)]
enum Neighbour {
    /// No aggressor at all — the victim's baseline.
    Absent,
    /// An aggressor with no quota: full interference.
    Unlimited,
    /// An aggressor behind an ops/sec token bucket.
    RateLimited { ops_per_sec: u64 },
}

impl Neighbour {
    fn label(self) -> &'static str {
        match self {
            Neighbour::Absent => "solo",
            Neighbour::Unlimited => "unlimited",
            Neighbour::RateLimited { .. } => "quota",
        }
    }
}

/// One noisy-neighbour phase: victim (+ optional aggressor) against a fresh
/// server; returns the victim outcome and the aggressor's counters.
fn run_phase(
    neighbour: Neighbour,
    victim_ops: u64,
    victim_rate: f64,
    window: usize,
    aggressors: usize,
) -> (VictimOutcome, AggressorOutcome) {
    let registry = Arc::new(QueueRegistry::default());
    registry
        .create(
            "victim",
            BackendSpec::MultiQueue { lanes: 4, d: 2 },
            QuotaSpec::unlimited(),
        )
        .unwrap();
    match neighbour {
        Neighbour::Absent => {}
        Neighbour::Unlimited => {
            registry
                .create(
                    "aggressor",
                    BackendSpec::MultiQueue { lanes: 4, d: 2 },
                    QuotaSpec::unlimited(),
                )
                .unwrap();
        }
        Neighbour::RateLimited { ops_per_sec } => {
            registry
                .create(
                    "aggressor",
                    BackendSpec::MultiQueue { lanes: 4, d: 2 },
                    QuotaSpec::unlimited().with_rate(ops_per_sec, ops_per_sec / 4),
                )
                .unwrap();
        }
    }
    let server = PqServer::spawn_registry(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default().with_credit_window(window),
    )
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr();

    let stop = AtomicBool::new(false);
    let (victim, aggressor) = std::thread::scope(|scope| {
        // The aggressor is a small fleet of connections all bound to the
        // same "aggressor" queue: the quota is a per-tenant budget, shared
        // across every session of the tenant, not a per-connection one.
        let fleet: Vec<_> = match neighbour {
            Neighbour::Absent => Vec::new(),
            _ => (0..aggressors)
                .map(|_| scope.spawn(|| run_aggressor(addr, window, &stop)))
                .collect(),
        };
        let victim = run_victim(addr, victim_ops, victim_rate);
        stop.store(true, Ordering::Relaxed);
        let aggressor = fleet.into_iter().map(|j| j.join().unwrap()).fold(
            AggressorOutcome {
                completed: 0,
                refused: 0,
            },
            |acc, outcome| AggressorOutcome {
                completed: acc.completed + outcome.completed,
                refused: acc.refused + outcome.refused,
            },
        );
        (victim, aggressor)
    });
    server.shutdown();
    server.join();
    (victim, aggressor)
}

/// Per-phase medians across samples.
struct PhaseSummary {
    victim_kops: f64,
    /// Dispersion of the victim-throughput samples behind the median —
    /// carried into the JSON row for the trajectory gate.
    victim_kops_dispersion: f64,
    victim_p99_us: f64,
    aggressor_ops: f64,
    aggressor_refusals: f64,
    refusal_share: f64,
}

fn summarise(samples: &[(VictimOutcome, AggressorOutcome)]) -> PhaseSummary {
    let victim_kops_samples: Vec<f64> = samples
        .iter()
        .map(|(v, _)| v.ops as f64 / v.elapsed_s.max(1e-9) / 1e3)
        .collect();
    let victim_kops = median(victim_kops_samples.clone());
    let victim_kops_dispersion = rel_dispersion(&victim_kops_samples);
    let victim_p99_us = median(
        samples
            .iter()
            .map(|(v, _)| v.p99_lateness_us as f64)
            .collect(),
    );
    let aggressor_ops = median(samples.iter().map(|(_, a)| a.completed as f64).collect());
    let aggressor_refusals = median(samples.iter().map(|(_, a)| a.refused as f64).collect());
    let refusal_share = median(
        samples
            .iter()
            .map(|(_, a)| {
                let demand = a.completed + a.refused;
                if demand == 0 {
                    0.0
                } else {
                    a.refused as f64 / demand as f64
                }
            })
            .collect(),
    );
    PhaseSummary {
        victim_kops,
        victim_kops_dispersion,
        victim_p99_us,
        aggressor_ops,
        aggressor_refusals,
        refusal_share,
    }
}

fn main() {
    let samples = env_u64("T11_SAMPLES", 5).max(1);
    let clients = env_u64("T11_CLIENTS", 4) as usize;
    let spread_ops = env_u64("T11_SPREAD_OPS", 20_000);
    let victim_ops = env_u64("T11_VICTIM_OPS", 20_000);
    let victim_rate = env_u64("T11_VICTIM_RATE", 40_000) as f64;
    let aggressor_rate = env_u64("T11_AGGRESSOR_RATE", 2_000);
    let aggressors = env_u64("T11_AGGRESSORS", 3) as usize;
    let window = env_u64("T11_WINDOW", 64) as usize;
    let strict = std::env::var("T11_STRICT").as_deref() == Ok("1");
    // Stamped into every JSON row so a BENCH_t11.json artifact is a
    // per-commit trajectory point (`t12_compare` reads it back).
    let commit = commit_hash();

    print_section(
        "T11",
        "choice-registry: queue-count spread and noisy-neighbour quota isolation",
    );
    println!(
        "median of {samples} samples; spread: {clients} clients × {spread_ops} arrivals; \
         noisy neighbour: victim {victim_ops} arrivals @ {victim_rate:.0}/s (EDF, 2ms \
         deadline) vs {aggressors} saturating aggressor connections sharing one \
         tenant queue (quota {aggressor_rate} ops/s)"
    );

    // -- Scenario A: spread ------------------------------------------------
    println!();
    println!("-- spread: one namespace, 1 / 8 / 64 queues, same total budget --");
    print_header(&["queues", "ops", "kops/s"]);
    let mut total_operations = 0u64;
    for queues in [1u64, 8, 64] {
        let runs: Vec<(u64, f64)> = (0..samples)
            .map(|_| run_spread(queues, clients, spread_ops, window))
            .collect();
        let ops = runs[0].0;
        total_operations += runs.iter().map(|(o, _)| o).sum::<u64>();
        let kops_samples: Vec<f64> = runs.iter().map(|(_, r)| r / 1e3).collect();
        let kops = median(kops_samples.clone());
        print_row(&[queues.to_string(), ops.to_string(), format!("{kops:.1}")]);
        emit_json_row(
            "t11",
            &[
                ("scenario", JsonValue::from("spread")),
                ("queues", JsonValue::from(queues)),
                ("clients", JsonValue::from(clients as u64)),
                ("samples", JsonValue::from(samples)),
                ("ops", JsonValue::from(ops)),
                ("kops_per_s", JsonValue::from(kops)),
                (
                    "rel_dispersion",
                    JsonValue::from(rel_dispersion(&kops_samples)),
                ),
                ("commit", JsonValue::from(commit.as_str())),
            ],
        );
    }

    // -- Scenario B: noisy neighbour ---------------------------------------
    println!();
    println!("-- noisy neighbour: victim vs aggressor, per-queue quotas --");
    print_header(&[
        "phase",
        "victim kops/s",
        "victim p99 µs",
        "aggr ops",
        "aggr refusals",
        "shed %",
    ]);
    let phases = [
        Neighbour::Absent,
        Neighbour::Unlimited,
        Neighbour::RateLimited {
            ops_per_sec: aggressor_rate,
        },
    ];
    let mut summaries = Vec::new();
    for neighbour in phases {
        let runs: Vec<(VictimOutcome, AggressorOutcome)> = (0..samples)
            .map(|_| run_phase(neighbour, victim_ops, victim_rate, window, aggressors))
            .collect();
        total_operations += runs.iter().map(|(v, _)| v.ops).sum::<u64>();
        let summary = summarise(&runs);
        print_row(&[
            neighbour.label().to_string(),
            format!("{:.1}", summary.victim_kops),
            format!("{:.0}", summary.victim_p99_us),
            format!("{:.0}", summary.aggressor_ops),
            format!("{:.0}", summary.aggressor_refusals),
            format!("{:.1}", summary.refusal_share * 100.0),
        ]);
        emit_json_row(
            "t11",
            &[
                ("scenario", JsonValue::from("noisy-neighbour")),
                ("phase", JsonValue::from(neighbour.label())),
                ("samples", JsonValue::from(samples)),
                ("aggressor_connections", JsonValue::from(aggressors as u64)),
                ("victim_ops", JsonValue::from(victim_ops)),
                ("victim_rate", JsonValue::from(victim_rate)),
                ("victim_kops_per_s", JsonValue::from(summary.victim_kops)),
                (
                    "victim_p99_lateness_us",
                    JsonValue::from(summary.victim_p99_us),
                ),
                ("aggressor_ops", JsonValue::from(summary.aggressor_ops)),
                (
                    "aggressor_refusals",
                    JsonValue::from(summary.aggressor_refusals),
                ),
                (
                    "aggressor_refusal_share",
                    JsonValue::from(summary.refusal_share),
                ),
                (
                    "rel_dispersion",
                    JsonValue::from(summary.victim_kops_dispersion),
                ),
                ("commit", JsonValue::from(commit.as_str())),
            ],
        );
        summaries.push(summary);
    }

    let (solo, unlimited, quota) = (&summaries[0], &summaries[1], &summaries[2]);
    let throughput_ratio = quota.victim_kops / solo.victim_kops.max(1e-9);
    // A near-zero solo p99 makes a pure ratio meaningless on a log-bucketed
    // histogram, so the lateness gate carries a small additive floor.
    let p99_bound_us = (solo.victim_p99_us * 1.10).max(solo.victim_p99_us + 250.0);
    println!();
    println!(
        "isolation: victim throughput quota/solo = {throughput_ratio:.3} \
         (unlimited/solo = {:.3}); victim p99 solo {:.0}µs → unlimited {:.0}µs → \
         quota {:.0}µs (gate ≤ {:.0}µs); quota phase shed {:.1}% of aggressor demand",
        unlimited.victim_kops / solo.victim_kops.max(1e-9),
        solo.victim_p99_us,
        unlimited.victim_p99_us,
        quota.victim_p99_us,
        p99_bound_us,
        quota.refusal_share * 100.0,
    );
    if strict {
        assert!(
            quota.aggressor_refusals > 0.0,
            "T11_STRICT: the quota never refused the aggressor"
        );
        assert!(
            throughput_ratio >= 0.90,
            "T11_STRICT: victim throughput under a quota-limited aggressor fell \
             below 90% of solo ({:.1} vs {:.1} kops/s)",
            quota.victim_kops,
            solo.victim_kops,
        );
        assert!(
            quota.victim_p99_us <= p99_bound_us,
            "T11_STRICT: victim p99 lateness under a quota-limited aggressor \
             ({:.0}µs) exceeded the solo-derived bound ({:.0}µs)",
            quota.victim_p99_us,
            p99_bound_us,
        );
    }

    // The CI smoke step relies on this: a run that silently did nothing is
    // a failure, not a fast success.
    assert!(
        total_operations > 0,
        "t11 completed zero operations — the service never answered"
    );
    println!();
    println!(
        "Expected shape: spread rows stay within the rebind overhead of each \
         other (queues are isolation units, not serialisation points); the \
         unlimited phase inflates victim p99 lateness, the quota phase sheds \
         the aggressor by typed refusals and restores the victim to its solo \
         baseline."
    );
}
