//! T13 — telemetry overhead: the Figure-1 throughput workload with the
//! choice-obs hub attached vs detached, plus a flight-recorder demo dump.
//!
//! The observability budget is a *claim*, so it is measured like any other
//! bench and gated like any other trajectory: one invocation runs the
//! alternating insert/deleteMin workload in exactly **one** telemetry mode
//! (`T13_OBS=0` detached — the baseline; `T13_OBS=1` attached — sharded
//! counters on every operation plus 1-in-`T13_SAMPLE_EVERY` latency
//! sampling; `T13_OBS=2` attached **and traced** — sampled operations also
//! record request spans into the hub's span ring, the same write a traced
//! wire request costs the server), and emits the same `BENCH_JSON=1` row
//! identity in every mode: `obs_mode`/`obs_enabled` are **diagnostic**
//! fields, not config keys, so the artifacts compare as the *same* bench
//! points. CI runs the binary three times and feeds each pair through
//! `t12_compare` at `T12_THRESHOLD=0.03` — the ≤3% overhead budget as a
//! failing gate, with the usual noise-aware allowance on top.
//!
//! After the throughput rows, a deterministic **flight-recorder demo**
//! forces one of everything the ring records — a quota refusal on a tenant
//! queue (via the registry's admission gate) and an elastic lane-table
//! resize (with its epoch) — then prints the full exposition dump, which is
//! also the README's observability quick-start output. The demo asserts
//! both event kinds landed, so a silent telemetry regression fails the
//! smoke run, not just the docs.
//!
//! Environment knobs: `T13_OBS` (0/1/2, default 0), `T13_SAMPLES` (reps per
//! row, default 3), `T13_THREADS` (default 4), `T13_OPS` (operations per
//! thread, default 200000), `T13_PREFILL` (default 4096),
//! `T13_SAMPLE_EVERY` (latency sampling stride when enabled, default 64),
//! `T13_SPAN_DUMP` (path: in traced mode, write the span-ring dump there —
//! the CI artifact showing what the traced run recorded); `BENCH_JSON=1`
//! emits one JSON object per row to stderr.

use std::sync::Arc;

use choice_bench::report::{emit_json_row, print_header, print_row, print_section, JsonValue};
use choice_bench::{env_u64, throughput_workload};
use choice_obs::ObsHub;
use choice_pq::{DynSharedPq, ElasticPolicy, MultiQueue, MultiQueueConfig, QueueObs};
use choice_wire::{BackendSpec, QueueRegistry, QuotaSpec};

/// Median of a non-empty sample vector.
fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Half the sample span over the median — the dispersion `t12_compare`
/// widens its allowance by (same convention as `t11_registry`).
fn rel_dispersion(samples: &[f64]) -> f64 {
    let m = median(samples.to_vec());
    let (lo, hi) = samples
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
            (lo.min(s), hi.max(s))
        });
    let half_span = (hi - lo) / 2.0;
    if half_span == 0.0 {
        0.0
    } else if m.abs() < 1e-12 {
        1.0
    } else {
        half_span / m.abs()
    }
}

/// One throughput sample: a fresh MultiQueue (obs attached when `hub` is
/// given, span-traced when `traced` too), run through the shared Figure-1
/// workload. Returns (ops, ops/s).
fn run_sample(
    hub: Option<&Arc<ObsHub>>,
    traced: bool,
    threads: usize,
    prefill: u64,
    ops_per_thread: u64,
    sample_every: u32,
    seed: u64,
) -> (u64, f64) {
    let mut queue =
        MultiQueue::<u64>::new(MultiQueueConfig::with_queues(2 * threads).with_seed(seed));
    if let Some(hub) = hub {
        queue.attach_obs(if traced {
            QueueObs::with_trace(hub, "bench", sample_every)
        } else {
            QueueObs::with_sample_every(hub, "bench", sample_every)
        });
    }
    let shared: Arc<dyn DynSharedPq<u64>> = Arc::new(queue);
    let result = throughput_workload(shared, threads, prefill, ops_per_thread, seed);
    (result.operations, result.ops_per_second)
}

/// The deterministic flight-recorder demo: force a quota refusal and an
/// elastic resize into one hub, dump it, and check both events landed.
fn flight_recorder_demo() -> String {
    let hub = ObsHub::with_capacity(256);

    // A tenant queue with an in-flight quota of 2: the third admission is
    // refused, and the refusal lands in the ring with its category, key and
    // in-flight depth.
    let registry = QueueRegistry::default();
    registry.set_obs(Arc::clone(&hub));
    registry
        .create(
            "tenant/a",
            BackendSpec::CoarseHeap,
            QuotaSpec::unlimited().with_max_inflight(2),
        )
        .expect("fresh registry accepts the tenant queue");
    let binding = registry.bind("tenant/a").expect("bind the tenant queue");
    for key in [1u64, 2] {
        binding.admit_insert(key).expect("under quota");
    }
    binding
        .admit_insert(3)
        .expect_err("the third in-flight insert must be refused");

    // An elastic MultiQueue grown past its floor: the committed resize is
    // recorded with its epoch and the lane counts either side.
    let mut queue = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(8)
            .with_seed(7)
            .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
    );
    queue.attach_obs(QueueObs::new(&hub, "elastic"));
    queue.resize_active(8);

    let dump = hub.render_dump(true);
    assert!(
        dump.contains("quota-refusal") && dump.contains("tenant/a"),
        "the demo dump must carry the tenant's quota refusal:\n{dump}"
    );
    assert!(
        dump.contains("resize") && dump.contains("elastic"),
        "the demo dump must carry the elastic resize:\n{dump}"
    );
    dump
}

fn main() {
    let obs_mode = env_u64("T13_OBS", 0).min(2);
    let obs_enabled = obs_mode != 0;
    let traced = obs_mode == 2;
    let samples = env_u64("T13_SAMPLES", 3).max(1);
    let threads = env_u64("T13_THREADS", 4) as usize;
    let ops_per_thread = env_u64("T13_OPS", 200_000);
    let prefill = env_u64("T13_PREFILL", 4_096);
    let sample_every = env_u64("T13_SAMPLE_EVERY", 64).max(1) as u32;
    let seed = 53u64;
    let mode_label = match obs_mode {
        0 => "detached",
        1 => "ATTACHED",
        _ => "ATTACHED+TRACED",
    };

    print_section(
        "T13",
        "choice-obs overhead: Figure-1 workload, telemetry attached vs detached",
    );
    println!(
        "mode: obs {mode_label} — {threads} threads × {ops_per_thread} ops, prefill \
         {prefill}, latency sampling 1-in-{sample_every}; median of {samples} samples. \
         Run once per mode and gate each pair with t12_compare (T12_THRESHOLD=0.03): \
         `obs_mode` is a diagnostic, so all modes are the same trajectory point.",
    );
    println!();
    print_header(&["threads", "obs", "ops", "mops/s", "disp %"]);

    let hub = ObsHub::new();
    let runs: Vec<(u64, f64)> = (0..samples)
        .map(|s| {
            run_sample(
                obs_enabled.then_some(&hub),
                traced,
                threads,
                prefill,
                ops_per_thread,
                sample_every,
                seed ^ (s + 1).wrapping_mul(0x9E37),
            )
        })
        .collect();
    let operations = runs[0].0;
    let mops_samples: Vec<f64> = runs.iter().map(|(_, r)| r / 1e6).collect();
    let mops = median(mops_samples.clone());
    let dispersion = rel_dispersion(&mops_samples);
    print_row(&[
        threads.to_string(),
        match obs_mode {
            0 => "off",
            1 => "on",
            _ => "traced",
        }
        .to_string(),
        operations.to_string(),
        format!("{mops:.2}"),
        format!("{:.1}", dispersion * 100.0),
    ]);

    // Telemetry self-check: with obs attached, the sharded counters must
    // have seen (at least) every completed operation across the samples.
    let mq_ops = hub
        .metrics()
        .snapshot()
        .counter("mq_ops_total", &[("queue", "bench")])
        .unwrap_or(0);
    if obs_enabled {
        assert!(
            mq_ops >= operations,
            "obs attached but mq_ops_total={mq_ops} < {operations} completed operations"
        );
    } else {
        assert_eq!(mq_ops, 0, "obs detached must record nothing");
    }
    // In traced mode the span ring must actually have seen sampled spans —
    // a traced run that recorded nothing would gate a vacuous overhead.
    let spans_recorded = hub.spans().recorded();
    if traced {
        assert!(
            spans_recorded > 0,
            "obs traced but the span ring recorded nothing"
        );
        if let Ok(path) = std::env::var("T13_SPAN_DUMP") {
            if !path.is_empty() {
                std::fs::write(&path, hub.spans().dump_text())
                    .unwrap_or_else(|e| panic!("T13_SPAN_DUMP={path}: {e}"));
                println!("span-ring dump written to {path}");
            }
        }
    } else {
        assert_eq!(spans_recorded, 0, "untraced modes must not record spans");
    }

    emit_json_row(
        "t13",
        &[
            ("threads", JsonValue::from(threads as u64)),
            ("prefill", JsonValue::from(prefill)),
            ("samples", JsonValue::from(samples)),
            ("ops", JsonValue::from(operations)),
            ("mops_per_s", JsonValue::from(mops)),
            ("rel_dispersion", JsonValue::from(dispersion)),
            ("obs_enabled", JsonValue::from(obs_enabled as u64)),
            ("obs_mode", JsonValue::from(obs_mode)),
            ("mq_ops_total", JsonValue::from(mq_ops)),
            ("spans_recorded", JsonValue::from(spans_recorded)),
        ],
    );

    // The CI smoke step relies on this: a run that silently did nothing is
    // a failure, not a fast success.
    assert!(
        operations > 0,
        "t13 completed zero operations — the workload never ran"
    );

    println!();
    println!("-- flight recorder demo: one forced quota refusal + one elastic resize --");
    println!("{}", flight_recorder_demo());
    println!(
        "Expected shape: the attached and detached rows agree within the 3% telemetry \
         budget (the gate t12_compare enforces in CI); the demo dump above shows the \
         quota-refusal and resize events with their tenant, category, epoch and lane \
         counts."
    );
}
