//! Figure 3 — parallel single-source shortest paths running time.
//!
//! Paper setup: Dijkstra's algorithm on the California road network, threads
//! 1..18; the (1 + β) variants with β < 1 run up to ~10% faster than β = 1 and
//! ~40% faster than the k-LSM. Here the road network is replaced by a synthetic
//! road-like graph (large sparse grid; see DESIGN.md §2.5) and the thread sweep
//! oversubscribes the available cores; the expected shape is that the relaxed
//! MultiQueues beat the centralized exact queues and that β < 1 is at least as
//! fast as β = 1, while all variants return exact distances.

use choice_bench::report::{f2, f3, print_header, print_row, print_section};
use choice_bench::workloads::sssp_workload;
use choice_pq::{DynSharedPq, MultiQueue, MultiQueueConfig};
use pq_baselines::{CoarseHeap, KLsmConfig, KLsmQueue, SkipListQueue};
use sssp_graph::grid_graph;
use std::sync::Arc;

fn queue_for(name: &str, beta: f64, threads: usize) -> (String, Arc<dyn DynSharedPq<u32>>) {
    match name {
        "multiqueue" => (
            format!("multiqueue(beta={beta})"),
            Arc::new(MultiQueue::new(
                MultiQueueConfig::for_threads(threads).with_beta(beta),
            )),
        ),
        "skiplist" => ("skiplist".to_string(), Arc::new(SkipListQueue::new())),
        "klsm" => (
            "klsm(k=256)".to_string(),
            Arc::new(KLsmQueue::new(
                KLsmConfig::for_threads(threads).with_relaxation(256),
            )),
        ),
        "coarse" => ("coarse-heap".to_string(), Arc::new(CoarseHeap::new())),
        other => panic!("unknown queue {other}"),
    }
}

fn main() {
    // A 300x300 grid (~90k nodes, ~360k directed edges) is the scaled-down
    // stand-in for the California road network (~1.9M nodes).
    let graph = grid_graph(300, 300, 1_000, 20_240);
    let threads_sweep = [1usize, 2, 4, 8];
    let lineup: [(&str, f64); 6] = [
        ("multiqueue", 1.0),
        ("multiqueue", 0.75),
        ("multiqueue", 0.5),
        ("skiplist", 0.0),
        ("klsm", 0.0),
        ("coarse", 0.0),
    ];

    print_section("F3", "parallel Dijkstra running time on a road-like graph");
    println!(
        "graph: {} nodes, {} directed edges (paper: California road network)",
        graph.nodes(),
        graph.edges()
    );
    print_header(&["queue", "threads", "seconds", "stale frac"]);

    for &(name, beta) in &lineup {
        for &threads in &threads_sweep {
            let (label, queue) = queue_for(name, beta, threads);
            let (seconds, stale) = sssp_workload(&graph, queue, threads);
            print_row(&[label, threads.to_string(), f3(seconds), f2(stale)]);
        }
    }
    println!();
    println!(
        "Expected shape (paper): relaxed multiqueues fastest; beta<1 at least as fast as \
         beta=1; centralized exact queues slowest at higher thread counts."
    );
}
