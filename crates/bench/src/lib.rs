//! Benchmark harness shared by the figure/table binaries.
//!
//! Every table and figure of the paper's evaluation (and the theory claims we
//! additionally check) has a dedicated binary under `src/bin/`; the code that
//! is common to several of them — building queues by name, the alternating
//! insert/deleteMin throughput workload of Figure 1, the instrumented rank
//! workload of Figure 2, and the parallel-SSSP workload of Figure 3 — lives
//! here so the binaries stay small and declarative.
//!
//! Absolute numbers will not match the paper (18-core Xeon there, whatever
//! machine runs this here); the binaries therefore print *shapes*: who wins,
//! by what factor, and how the series move with the swept parameter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queues;
pub mod report;
pub mod trajectory;
pub mod workloads;

pub use queues::{build_queue, QueueSpec};
pub use report::{emit_json_row, json_enabled, print_header, print_row, print_section, JsonValue};

/// Reads a `u64` knob from the environment (`SCHED_BENCH_*`,
/// `SERVICE_BENCH_*`, `BENCH_*`, …), falling back to `default` when the
/// variable is unset or unparsable — the one scaling mechanism every bench
/// binary shares with the CI smoke steps.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
pub use workloads::{
    d_sweep_workload, rank_quality_workload, scheduler_workload, sssp_workload,
    throughput_workload, DSweepResult, RankQualityResult, ThroughputResult,
};
