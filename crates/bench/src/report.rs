//! Plain-text table output helpers.
//!
//! Every binary prints one or more tables with a fixed-width layout so the
//! output can be pasted into EXPERIMENTS.md verbatim and diffed across runs.

/// Prints a section banner (the experiment id and its paper counterpart).
pub fn print_section(id: &str, title: &str) {
    println!();
    println!("==== {id}: {title} ====");
}

/// Prints a table header row followed by a separator line.
pub fn print_header(columns: &[&str]) {
    let row = columns
        .iter()
        .map(|c| format!("{c:>18}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one data row; values are already formatted strings.
pub fn print_row(cells: &[String]) {
    let row = cells
        .iter()
        .map(|c| format!("{c:>18}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an ops/s figure in Mops/s.
pub fn mops(ops_per_second: f64) -> String {
    format!("{:.3}", ops_per_second / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(mops(2_500_000.0), "2.500");
    }

    #[test]
    fn printing_does_not_panic() {
        print_section("F1", "throughput");
        print_header(&["queue", "threads", "Mops/s"]);
        print_row(&["multiqueue".into(), "4".into(), "1.234".into()]);
    }
}
