//! Plain-text table output helpers, plus opt-in machine-readable rows.
//!
//! Every binary prints one or more tables with a fixed-width layout so the
//! output can be pasted into EXPERIMENTS.md verbatim and diffed across runs.
//!
//! Setting `BENCH_JSON=1` additionally emits one JSON object per data row
//! to **stderr** (tables stay on stdout, so the two streams separate
//! cleanly): `{"experiment":"t9",...}`, one line each — the groundwork for
//! a perf-trajectory file that scripts can append to without parsing the
//! human tables. No serde exists in this offline workspace, so the emitter
//! is a small hand-rolled one over [`JsonValue`].

/// Prints a section banner (the experiment id and its paper counterpart).
pub fn print_section(id: &str, title: &str) {
    println!();
    println!("==== {id}: {title} ====");
}

/// Prints a table header row followed by a separator line.
pub fn print_header(columns: &[&str]) {
    let row = columns
        .iter()
        .map(|c| format!("{c:>18}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one data row; values are already formatted strings.
pub fn print_row(cells: &[String]) {
    let row = cells
        .iter()
        .map(|c| format!("{c:>18}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an ops/s figure in Mops/s.
pub fn mops(ops_per_second: f64) -> String {
    format!("{:.3}", ops_per_second / 1e6)
}

/// Column set of the choice/batch sweep tables (`t5_choice_sweep`): the
/// swept `d` and delete-batch size, then the measured throughput and rank
/// quality of that configuration.
pub fn print_sweep_header() {
    print_header(&["d", "batch", "threads", "Mops/s", "mean rank", "max rank"]);
}

/// One row of the choice/batch sweep table (see [`print_sweep_header`]).
pub fn print_sweep_row(
    d: usize,
    batch: usize,
    threads: usize,
    ops_per_second: f64,
    mean_rank: f64,
    max_rank: u64,
) {
    print_row(&[
        d.to_string(),
        batch.to_string(),
        threads.to_string(),
        mops(ops_per_second),
        f2(mean_rank),
        max_rank.to_string(),
    ]);
}

/// One field value of a machine-readable row.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A string (escaped on output).
    Str(String),
    /// An unsigned counter.
    U64(u64),
    /// A float (emitted with enough digits to round-trip the table value;
    /// non-finite values degrade to `null`, which JSON numbers cannot carry).
    F64(f64),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

/// Whether `BENCH_JSON=1` is set (checked per call: tests and harnesses may
/// toggle it between rows).
pub fn json_enabled() -> bool {
    std::env::var("BENCH_JSON").as_deref() == Ok("1")
}

/// Escapes `s` into `out` as JSON string contents (quotes not included).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders one row as a single-line JSON object (`experiment` first, then
/// the fields in the order given).
pub fn json_row_string(experiment: &str, fields: &[(&str, JsonValue)]) -> String {
    let mut line = String::with_capacity(64);
    line.push_str("{\"experiment\":\"");
    escape_json(experiment, &mut line);
    line.push('"');
    for (name, value) in fields {
        line.push_str(",\"");
        escape_json(name, &mut line);
        line.push_str("\":");
        match value {
            JsonValue::Str(s) => {
                line.push('"');
                escape_json(s, &mut line);
                line.push('"');
            }
            JsonValue::U64(v) => line.push_str(&v.to_string()),
            JsonValue::F64(v) if v.is_finite() => line.push_str(&format!("{v}")),
            JsonValue::F64(_) => line.push_str("null"),
        }
    }
    line.push('}');
    line
}

/// Emits one machine-readable row to stderr when `BENCH_JSON=1`; a no-op
/// otherwise. Call it right next to the matching [`print_row`].
pub fn emit_json_row(experiment: &str, fields: &[(&str, JsonValue)]) {
    if json_enabled() {
        eprintln!("{}", json_row_string(experiment, fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(mops(2_500_000.0), "2.500");
    }

    #[test]
    fn printing_does_not_panic() {
        print_section("F1", "throughput");
        print_header(&["queue", "threads", "Mops/s"]);
        print_row(&["multiqueue".into(), "4".into(), "1.234".into()]);
        print_sweep_header();
        print_sweep_row(4, 64, 2, 3_200_000.0, 5.25, 41);
    }

    #[test]
    fn json_rows_render_ordered_escaped_fields() {
        let line = json_row_string(
            "t9",
            &[
                ("backend", JsonValue::from("multiqueue(beta=0.75, c=2)")),
                ("ops", JsonValue::from(120_000u64)),
                ("kops_per_s", JsonValue::from(345.25f64)),
                ("note", JsonValue::Str("a \"quoted\"\nline".to_string())),
                ("bad", JsonValue::F64(f64::NAN)),
            ],
        );
        assert_eq!(
            line,
            "{\"experiment\":\"t9\",\"backend\":\"multiqueue(beta=0.75, c=2)\",\
             \"ops\":120000,\"kops_per_s\":345.25,\
             \"note\":\"a \\\"quoted\\\"\\nline\",\"bad\":null}"
        );
    }

    #[test]
    fn emit_json_row_is_gated_on_the_env_knob() {
        // The knob is read per call; emitting with it unset must be a no-op
        // (observable only as "does not panic" here — the gating logic is
        // what's under test).
        std::env::remove_var("BENCH_JSON");
        assert!(!json_enabled());
        emit_json_row("t0", &[("x", JsonValue::from(1u64))]);
        std::env::set_var("BENCH_JSON", "1");
        assert!(json_enabled());
        emit_json_row("t0", &[("x", JsonValue::from(1u64))]);
        std::env::remove_var("BENCH_JSON");
        assert!(!json_enabled());
    }
}
