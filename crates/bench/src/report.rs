//! Plain-text table output helpers.
//!
//! Every binary prints one or more tables with a fixed-width layout so the
//! output can be pasted into EXPERIMENTS.md verbatim and diffed across runs.

/// Prints a section banner (the experiment id and its paper counterpart).
pub fn print_section(id: &str, title: &str) {
    println!();
    println!("==== {id}: {title} ====");
}

/// Prints a table header row followed by a separator line.
pub fn print_header(columns: &[&str]) {
    let row = columns
        .iter()
        .map(|c| format!("{c:>18}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one data row; values are already formatted strings.
pub fn print_row(cells: &[String]) {
    let row = cells
        .iter()
        .map(|c| format!("{c:>18}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an ops/s figure in Mops/s.
pub fn mops(ops_per_second: f64) -> String {
    format!("{:.3}", ops_per_second / 1e6)
}

/// Column set of the choice/batch sweep tables (`t5_choice_sweep`): the
/// swept `d` and delete-batch size, then the measured throughput and rank
/// quality of that configuration.
pub fn print_sweep_header() {
    print_header(&["d", "batch", "threads", "Mops/s", "mean rank", "max rank"]);
}

/// One row of the choice/batch sweep table (see [`print_sweep_header`]).
pub fn print_sweep_row(
    d: usize,
    batch: usize,
    threads: usize,
    ops_per_second: f64,
    mean_rank: f64,
    max_rank: u64,
) {
    print_row(&[
        d.to_string(),
        batch.to_string(),
        threads.to_string(),
        mops(ops_per_second),
        f2(mean_rank),
        max_rank.to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(mops(2_500_000.0), "2.500");
    }

    #[test]
    fn printing_does_not_panic() {
        print_section("F1", "throughput");
        print_header(&["queue", "threads", "Mops/s"]);
        print_row(&["multiqueue".into(), "4".into(), "1.234".into()]);
        print_sweep_header();
        print_sweep_row(4, 64, 2, 3_200_000.0, 5.25, 41);
    }
}
