//! The concurrent workloads of the paper's evaluation section, plus the
//! scheduler-level workload of the `choice-sched` subsystem.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use choice_pq::{DynSharedPq, HandlePolicy, MultiQueue, MultiQueueConfig, PqHandle, SharedPq};
use choice_sched::traffic::TrafficTask;
use choice_sched::{run_scenario, ScenarioReport, SchedulerConfig, TrafficSpec};
use rank_stats::inversion::InversionCounter;
use rank_stats::rng::{RandomSource, Xoshiro256};
use rank_stats::timing::OpsTimer;
use sssp_graph::{parallel_sssp, Graph};

/// Result of one throughput trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputResult {
    /// Completed operations (inserts + deleteMins).
    pub operations: u64,
    /// Operations per second.
    pub ops_per_second: f64,
}

/// The Figure 1 workload: `threads` workers perform alternating
/// insert/deleteMin pairs against a queue prefilled with `prefill` elements,
/// for `ops_per_thread` operations each. Keys are drawn uniformly from a large
/// key space, as in the benchmark framework the paper uses. Each worker
/// operates through its own registered session handle.
///
/// Removals that find the structure empty do not count towards throughput
/// (matching the paper's methodology); with the prefill sized well above the
/// drain rate they essentially never happen.
pub fn throughput_workload(
    queue: Arc<dyn DynSharedPq<u64>>,
    threads: usize,
    prefill: u64,
    ops_per_thread: u64,
    seed: u64,
) -> ThroughputResult {
    assert!(threads > 0, "need at least one thread");
    let key_space = 1u64 << 40;
    let mut rng = Xoshiro256::seeded(seed);
    {
        let mut loader = queue.register_dyn();
        for _ in 0..prefill {
            loader.insert(rng.next_below(key_space), 0);
        }
    }
    let completed = Arc::new(AtomicU64::new(0));
    let timer = OpsTimer::start();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let queue = Arc::clone(&queue);
            let completed = Arc::clone(&completed);
            scope.spawn(move || {
                let mut handle = queue.register_dyn();
                let mut rng = Xoshiro256::seeded(seed ^ (t as u64 + 1).wrapping_mul(0x9E37));
                let mut done = 0u64;
                let mut i = 0u64;
                while done < ops_per_thread {
                    if i.is_multiple_of(2) {
                        handle.insert(rng.next_below(key_space), t as u64);
                        done += 1;
                    } else if handle.delete_min().is_some() {
                        done += 1;
                    }
                    i += 1;
                }
                completed.fetch_add(done, Ordering::Relaxed);
            });
        }
    });
    let operations = completed.load(Ordering::Relaxed);
    ThroughputResult {
        operations,
        ops_per_second: timer.ops_per_second(operations),
    }
}

/// Result of one rank-quality trial (Figure 2 methodology).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankQualityResult {
    /// Number of removals analysed.
    pub removals: u64,
    /// Mean rank of the removed elements.
    pub mean_rank: f64,
    /// Maximum rank observed.
    pub max_rank: u64,
}

/// The Figure 2 workload: a MultiQueue with `queues` lanes and the given β is
/// prefilled with `prefill` consecutive keys; `threads` workers then perform
/// alternating insert/deleteMin pairs (inserting fresh increasing keys)
/// through instrumented session handles
/// ([`HandlePolicy::instrumented`]), which log every removal with a globally
/// coherent timestamp. The merged logs are post-processed into rank
/// statistics exactly as in Section 5.
pub fn rank_quality_workload(
    queues: usize,
    beta: f64,
    threads: usize,
    prefill: u64,
    ops_per_thread: u64,
    seed: u64,
) -> RankQualityResult {
    let config = MultiQueueConfig::with_queues(queues)
        .with_beta(beta)
        .with_seed(seed);
    instrumented_rank_run(config, threads, prefill, ops_per_thread, 1)
}

/// The shared instrumented phase of [`rank_quality_workload`] and
/// [`d_sweep_workload`]: prefill with consecutive keys, then have `threads`
/// workers alternate `batch` fresh increasing inserts with one
/// `delete_min_batch_into(batch)` (plain `delete_min` semantics when
/// `batch == 1`), and merge the per-handle removal logs into rank statistics.
fn instrumented_rank_run(
    config: MultiQueueConfig,
    threads: usize,
    prefill: u64,
    ops_per_thread: u64,
    batch: usize,
) -> RankQualityResult {
    assert!(threads > 0, "need at least one thread");
    assert!(batch > 0, "need a positive delete batch");
    let queue = MultiQueue::<u64>::new(config);
    {
        let mut loader = queue.register();
        for k in 0..prefill {
            loader.insert(k, k);
        }
    }
    // Fresh keys continue after the prefill; a shared counter hands out blocks.
    let next_key = AtomicU64::new(prefill);
    let logs: Vec<Vec<rank_stats::inversion::TimestampedRemoval>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let queue = &queue;
            let next_key = &next_key;
            handles.push(scope.spawn(move || {
                let mut handle = queue.register_with(HandlePolicy::instrumented());
                let mut pops = Vec::with_capacity(batch);
                let rounds = (ops_per_thread / batch as u64).max(1);
                for _ in 0..rounds {
                    let base = next_key.fetch_add(batch as u64, Ordering::Relaxed);
                    for j in 0..batch as u64 {
                        handle.insert(base + j, base + j);
                    }
                    pops.clear();
                    handle.delete_min_batch_into(batch, &mut pops);
                }
                handle.take_log()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut counter = InversionCounter::new();
    for log in logs {
        counter.record_all(log);
    }
    let summary = counter.summarize();
    RankQualityResult {
        removals: summary.removals,
        mean_rank: summary.mean_rank,
        max_rank: summary.max_rank,
    }
}

/// Result of one `d_sweep` trial: throughput and rank quality of a
/// (d, delete-batch) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DSweepResult {
    /// Throughput of the uninstrumented timed phase.
    pub throughput: ThroughputResult,
    /// Rank quality of the instrumented phase (same configuration, fresh
    /// queue).
    pub rank: RankQualityResult,
}

/// The `d_sweep` workload axis behind `t5_choice_sweep`: a d-choice
/// MultiQueue with batched deletion, measured for both throughput and rank
/// quality.
///
/// Two phases run per configuration, both over a queue with `queues` lanes,
/// the `DChoice(d)` rule and per-handle delete batches of `batch`:
///
/// 1. **throughput** — `threads` workers alternate `batch` inserts with one
///    `delete_min_batch_into(batch)` against a prefilled queue (uncontended
///    when `threads == 1`); completed inserts + removals per second.
/// 2. **rank** — a fresh, identically configured queue is driven the same
///    way through instrumented handles and the merged removal logs are
///    post-processed into rank statistics (Section 5 methodology).
///
/// Keeping the phases separate keeps the timestamping overhead of the
/// instrumented handles out of the throughput numbers.
pub fn d_sweep_workload(
    d: usize,
    batch: usize,
    threads: usize,
    queues: usize,
    prefill: u64,
    ops_per_thread: u64,
    seed: u64,
) -> DSweepResult {
    assert!(threads > 0, "need at least one thread");
    assert!(batch > 0, "need a positive delete batch");
    let config = MultiQueueConfig::with_queues(queues)
        .with_d(d)
        .with_seed(seed);
    let key_space = 1u64 << 40;

    // Phase 1: throughput, uninstrumented.
    let queue = MultiQueue::<u64>::new(config.clone());
    {
        let mut loader = queue.register();
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..prefill {
            loader.insert(rng.next_below(key_space), 0);
        }
    }
    let completed = AtomicU64::new(0);
    let timer = OpsTimer::start();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let queue = &queue;
            let completed = &completed;
            scope.spawn(move || {
                let mut handle = queue.register();
                let mut rng = Xoshiro256::seeded(seed ^ (t as u64 + 1).wrapping_mul(0x9E37));
                let mut pops = Vec::with_capacity(batch);
                let mut done = 0u64;
                while done < ops_per_thread {
                    for _ in 0..batch {
                        handle.insert(rng.next_below(key_space), t as u64);
                    }
                    done += batch as u64;
                    pops.clear();
                    done += handle.delete_min_batch_into(batch, &mut pops) as u64;
                }
                completed.fetch_add(done, Ordering::Relaxed);
            });
        }
    });
    let operations = completed.load(Ordering::Relaxed);
    let throughput = ThroughputResult {
        operations,
        ops_per_second: timer.ops_per_second(operations),
    };

    // Phase 2: rank quality on a fresh, identically configured queue.
    DSweepResult {
        throughput,
        rank: instrumented_rank_run(config, threads, prefill, ops_per_thread, batch),
    }
}

/// The scheduler workload behind `t8_scheduler`: one open-loop traffic
/// scenario executed by a [`choice_sched::Scheduler`] worker pool over the
/// given (type-erased) queue.
///
/// `workers` worker threads drain the queue with per-poll batches of
/// `delete_batch` while the traffic engine injects `spec.tasks` tasks
/// following the spec's arrival process, concurrently and open-loop (the
/// injector never waits for the scheduler). The report carries end-to-end
/// throughput (tasks/second over the whole run), per-class lateness
/// distributions, deadline-inversion statistics, and the per-worker queue
/// counters (`empty_polls` / `contended_retries`).
///
/// This is the first workload where queue quality surfaces as an
/// *application* metric — lateness — rather than rank.
pub fn scheduler_workload(
    queue: Arc<dyn DynSharedPq<TrafficTask>>,
    workers: usize,
    delete_batch: usize,
    spec: &TrafficSpec,
) -> ScenarioReport {
    let config = SchedulerConfig::new(workers).with_delete_batch(delete_batch);
    run_scenario(&*queue, config, spec)
}

/// The Figure 3 workload: parallel SSSP from node 0 over the given queue.
/// Returns `(seconds, stale_fraction)`.
pub fn sssp_workload(
    graph: &Graph,
    queue: Arc<dyn DynSharedPq<u32>>,
    threads: usize,
) -> (f64, f64) {
    let timer = OpsTimer::start();
    let (_dist, stats) = parallel_sssp(graph, 0, &*queue, threads);
    (timer.elapsed().as_secs_f64(), stats.stale_fraction())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::{build_queue, QueueSpec};
    use sssp_graph::grid_graph;

    #[test]
    fn throughput_workload_completes_all_operations() {
        let q = build_queue(QueueSpec::multiqueue(0.75), 2, 3);
        let result = throughput_workload(q, 2, 2_000, 2_000, 3);
        assert_eq!(result.operations, 4_000);
        assert!(result.ops_per_second > 0.0);
    }

    #[test]
    fn throughput_workload_on_exact_queues() {
        let q = build_queue(QueueSpec::CoarseHeap, 2, 3);
        let result = throughput_workload(q, 2, 500, 500, 3);
        assert_eq!(result.operations, 1_000);
    }

    #[test]
    fn rank_quality_single_thread_is_order_n() {
        let r = rank_quality_workload(8, 1.0, 1, 20_000, 10_000, 5);
        assert_eq!(r.removals, 10_000);
        assert!(r.mean_rank >= 1.0);
        assert!(
            r.mean_rank < 4.0 * 8.0,
            "single-threaded mean rank {} should be O(n)",
            r.mean_rank
        );
        assert!(r.max_rank >= 1);
    }

    #[test]
    fn rank_quality_beta_ordering() {
        // Single worker: with several workers on an oversubscribed test
        // machine, preemption while holding lane locks (the Appendix C
        // pathology) adds scheduling noise that can swamp the β effect and
        // invert this ordering; single-threaded, the workload mirrors the
        // sequential model the theorems describe and the ordering is robust.
        let tight = rank_quality_workload(8, 1.0, 1, 20_000, 10_000, 9);
        let loose = rank_quality_workload(8, 0.125, 1, 20_000, 10_000, 9);
        assert!(
            loose.mean_rank > tight.mean_rank,
            "beta=0.125 rank {} should exceed beta=1 rank {}",
            loose.mean_rank,
            tight.mean_rank
        );
    }

    #[test]
    fn d_sweep_workload_reports_both_axes() {
        let r = d_sweep_workload(4, 8, 2, 8, 2_000, 2_000, 11);
        assert!(r.throughput.operations >= 4_000);
        assert!(r.throughput.ops_per_second > 0.0);
        assert!(r.rank.removals > 0);
        assert!(r.rank.mean_rank >= 1.0);
    }

    #[test]
    fn d_sweep_larger_d_means_better_rank_sequentially() {
        let wide = d_sweep_workload(8, 1, 1, 8, 20_000, 10_000, 5);
        let narrow = d_sweep_workload(1, 1, 1, 8, 20_000, 10_000, 5);
        assert!(
            wide.rank.mean_rank < narrow.rank.mean_rank,
            "d=8 rank {} should beat d=1 rank {}",
            wide.rank.mean_rank,
            narrow.rank.mean_rank
        );
    }

    #[test]
    fn scheduler_workload_executes_every_injected_task() {
        use choice_sched::{ArrivalPattern, TrafficClass};
        use std::time::Duration;
        let spec = TrafficSpec {
            pattern: ArrivalPattern::Steady { rate: 500_000.0 },
            classes: vec![
                TrafficClass::new("interactive", 3.0, Duration::from_micros(500), 16),
                TrafficClass::new("batch", 1.0, Duration::from_millis(20), 64),
            ],
            tasks: 2_000,
            seed: 5,
        };
        for queue_spec in [QueueSpec::multiqueue_d(2), QueueSpec::CoarseHeap] {
            let q = build_queue::<TrafficTask>(queue_spec, 2, 7);
            let report = scheduler_workload(q, 2, 4, &spec);
            assert_eq!(report.sched.executed, 2_000, "{}", report.label);
            assert_eq!(report.lateness.executed(), 2_000);
            assert!(report.sched.tasks_per_second > 0.0);
        }
    }

    #[test]
    fn sssp_workload_runs() {
        let g = grid_graph(20, 20, 20, 1);
        let q = build_queue::<u32>(QueueSpec::multiqueue(0.75), 2, 1);
        let (seconds, stale) = sssp_workload(&g, q, 2);
        assert!(seconds > 0.0);
        assert!((0.0..=1.0).contains(&stale));
    }
}
