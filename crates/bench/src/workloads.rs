//! The three concurrent workloads of the paper's evaluation section.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use choice_pq::{DynSharedPq, HandlePolicy, MultiQueue, MultiQueueConfig, PqHandle, SharedPq};
use rank_stats::inversion::InversionCounter;
use rank_stats::rng::{RandomSource, Xoshiro256};
use rank_stats::timing::OpsTimer;
use sssp_graph::{parallel_sssp, Graph};

/// Result of one throughput trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputResult {
    /// Completed operations (inserts + deleteMins).
    pub operations: u64,
    /// Operations per second.
    pub ops_per_second: f64,
}

/// The Figure 1 workload: `threads` workers perform alternating
/// insert/deleteMin pairs against a queue prefilled with `prefill` elements,
/// for `ops_per_thread` operations each. Keys are drawn uniformly from a large
/// key space, as in the benchmark framework the paper uses. Each worker
/// operates through its own registered session handle.
///
/// Removals that find the structure empty do not count towards throughput
/// (matching the paper's methodology); with the prefill sized well above the
/// drain rate they essentially never happen.
pub fn throughput_workload(
    queue: Arc<dyn DynSharedPq<u64>>,
    threads: usize,
    prefill: u64,
    ops_per_thread: u64,
    seed: u64,
) -> ThroughputResult {
    assert!(threads > 0, "need at least one thread");
    let key_space = 1u64 << 40;
    let mut rng = Xoshiro256::seeded(seed);
    {
        let mut loader = queue.register_dyn();
        for _ in 0..prefill {
            loader.insert(rng.next_below(key_space), 0);
        }
    }
    let completed = Arc::new(AtomicU64::new(0));
    let timer = OpsTimer::start();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let queue = Arc::clone(&queue);
            let completed = Arc::clone(&completed);
            scope.spawn(move || {
                let mut handle = queue.register_dyn();
                let mut rng = Xoshiro256::seeded(seed ^ (t as u64 + 1).wrapping_mul(0x9E37));
                let mut done = 0u64;
                let mut i = 0u64;
                while done < ops_per_thread {
                    if i.is_multiple_of(2) {
                        handle.insert(rng.next_below(key_space), t as u64);
                        done += 1;
                    } else if handle.delete_min().is_some() {
                        done += 1;
                    }
                    i += 1;
                }
                completed.fetch_add(done, Ordering::Relaxed);
            });
        }
    });
    let operations = completed.load(Ordering::Relaxed);
    ThroughputResult {
        operations,
        ops_per_second: timer.ops_per_second(operations),
    }
}

/// Result of one rank-quality trial (Figure 2 methodology).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankQualityResult {
    /// Number of removals analysed.
    pub removals: u64,
    /// Mean rank of the removed elements.
    pub mean_rank: f64,
    /// Maximum rank observed.
    pub max_rank: u64,
}

/// The Figure 2 workload: a MultiQueue with `queues` lanes and the given β is
/// prefilled with `prefill` consecutive keys; `threads` workers then perform
/// alternating insert/deleteMin pairs (inserting fresh increasing keys)
/// through instrumented session handles
/// ([`HandlePolicy::instrumented`]), which log every removal with a globally
/// coherent timestamp. The merged logs are post-processed into rank
/// statistics exactly as in Section 5.
pub fn rank_quality_workload(
    queues: usize,
    beta: f64,
    threads: usize,
    prefill: u64,
    ops_per_thread: u64,
    seed: u64,
) -> RankQualityResult {
    assert!(threads > 0, "need at least one thread");
    let queue = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(queues)
            .with_beta(beta)
            .with_seed(seed),
    );
    {
        let mut loader = queue.register();
        for k in 0..prefill {
            loader.insert(k, k);
        }
    }
    // Fresh keys continue after the prefill; a shared counter hands out blocks.
    let next_key = AtomicU64::new(prefill);
    let logs: Vec<Vec<rank_stats::inversion::TimestampedRemoval>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let queue = &queue;
            let next_key = &next_key;
            handles.push(scope.spawn(move || {
                let mut handle = queue.register_with(HandlePolicy::instrumented());
                for _ in 0..ops_per_thread {
                    let key = next_key.fetch_add(1, Ordering::Relaxed);
                    handle.insert(key, key);
                    handle.delete_min();
                }
                handle.take_log()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut counter = InversionCounter::new();
    for log in logs {
        counter.record_all(log);
    }
    let summary = counter.summarize();
    RankQualityResult {
        removals: summary.removals,
        mean_rank: summary.mean_rank,
        max_rank: summary.max_rank,
    }
}

/// The Figure 3 workload: parallel SSSP from node 0 over the given queue.
/// Returns `(seconds, stale_fraction)`.
pub fn sssp_workload(
    graph: &Graph,
    queue: Arc<dyn DynSharedPq<u32>>,
    threads: usize,
) -> (f64, f64) {
    let timer = OpsTimer::start();
    let (_dist, stats) = parallel_sssp(graph, 0, &*queue, threads);
    (timer.elapsed().as_secs_f64(), stats.stale_fraction())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::{build_queue, QueueSpec};
    use sssp_graph::grid_graph;

    #[test]
    fn throughput_workload_completes_all_operations() {
        let q = build_queue(QueueSpec::multiqueue(0.75), 2, 3);
        let result = throughput_workload(q, 2, 2_000, 2_000, 3);
        assert_eq!(result.operations, 4_000);
        assert!(result.ops_per_second > 0.0);
    }

    #[test]
    fn throughput_workload_on_exact_queues() {
        let q = build_queue(QueueSpec::CoarseHeap, 2, 3);
        let result = throughput_workload(q, 2, 500, 500, 3);
        assert_eq!(result.operations, 1_000);
    }

    #[test]
    fn rank_quality_single_thread_is_order_n() {
        let r = rank_quality_workload(8, 1.0, 1, 20_000, 10_000, 5);
        assert_eq!(r.removals, 10_000);
        assert!(r.mean_rank >= 1.0);
        assert!(
            r.mean_rank < 4.0 * 8.0,
            "single-threaded mean rank {} should be O(n)",
            r.mean_rank
        );
        assert!(r.max_rank >= 1);
    }

    #[test]
    fn rank_quality_beta_ordering() {
        // Single worker: with several workers on an oversubscribed test
        // machine, preemption while holding lane locks (the Appendix C
        // pathology) adds scheduling noise that can swamp the β effect and
        // invert this ordering; single-threaded, the workload mirrors the
        // sequential model the theorems describe and the ordering is robust.
        let tight = rank_quality_workload(8, 1.0, 1, 20_000, 10_000, 9);
        let loose = rank_quality_workload(8, 0.125, 1, 20_000, 10_000, 9);
        assert!(
            loose.mean_rank > tight.mean_rank,
            "beta=0.125 rank {} should exceed beta=1 rank {}",
            loose.mean_rank,
            tight.mean_rank
        );
    }

    #[test]
    fn sssp_workload_runs() {
        let g = grid_graph(20, 20, 20, 1);
        let q = build_queue::<u32>(QueueSpec::multiqueue(0.75), 2, 1);
        let (seconds, stale) = sssp_workload(&g, q, 2);
        assert!(seconds > 0.0);
        assert!((0.0..=1.0).contains(&stale));
    }
}
