//! C1 (part 1) — per-operation cost of the sequential priority queue
//! substrates used as MultiQueue lanes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rank_stats::rng::{RandomSource, Xoshiro256};
use seq_pq::{BinaryHeap, PairingHeap, SequentialPriorityQueue, SkipListPq};

const PREFILL: usize = 10_000;
const OPS: usize = 1_000;

fn keys(count: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256::seeded(seed);
    (0..count).map(|_| rng.next_below(1 << 32)).collect()
}

fn bench_backend<Q, F>(c: &mut Criterion, name: &str, make: F)
where
    Q: SequentialPriorityQueue<u64>,
    F: Fn() -> Q + Copy,
{
    let prefill_keys = keys(PREFILL, 1);
    let op_keys = keys(OPS, 2);

    c.bench_function(&format!("seq_pq/{name}/push_pop_mix"), |b| {
        b.iter_batched(
            || {
                let mut q = make();
                for &k in &prefill_keys {
                    q.push(k, k);
                }
                q
            },
            |mut q| {
                for &k in &op_keys {
                    q.push(k, k);
                    q.pop();
                }
                q.len()
            },
            BatchSize::LargeInput,
        )
    });
}

fn benches(c: &mut Criterion) {
    bench_backend(c, "binary_heap", BinaryHeap::<u64>::new);
    bench_backend(c, "pairing_heap", PairingHeap::<u64>::new);
    bench_backend(c, "skiplist", SkipListPq::<u64>::new);
}

criterion_group!(seq_pq_ops, benches);
criterion_main!(seq_pq_ops);
