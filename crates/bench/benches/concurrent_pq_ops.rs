//! C1 (part 2) — single-threaded per-operation cost of every concurrent
//! priority queue (the uncontended fast path), plus the β ablation for the
//! MultiQueue and the queues-per-thread ablation called out in DESIGN.md.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use choice_bench::{build_queue, QueueSpec};
use choice_pq::{DynSharedPq, SharedPq};
use rank_stats::rng::{RandomSource, Xoshiro256};

const PREFILL: usize = 20_000;
const OPS: usize = 1_000;

fn keys(count: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256::seeded(seed);
    (0..count).map(|_| rng.next_below(1 << 32)).collect()
}

fn bench_spec(c: &mut Criterion, group: &str, spec: QueueSpec) {
    let prefill_keys = keys(PREFILL, 1);
    let op_keys = keys(OPS, 2);
    c.bench_function(&format!("{group}/{}", spec.label()), |b| {
        b.iter_batched(
            || {
                let q = build_queue::<u64>(spec, 2, 7);
                let mut loader = q.register_dyn();
                for &k in &prefill_keys {
                    loader.insert(k, k);
                }
                drop(loader);
                q
            },
            |q: Arc<dyn DynSharedPq<u64>>| {
                let mut handle = q.register_dyn();
                for &k in &op_keys {
                    handle.insert(k, k);
                    handle.delete_min();
                }
                drop(handle);
                q.approx_len()
            },
            BatchSize::LargeInput,
        )
    });
}

fn benches(c: &mut Criterion) {
    // The Figure 1/3 lineup, uncontended.
    for spec in QueueSpec::figure_lineup() {
        bench_spec(c, "concurrent_pq", spec);
    }
    // Ablation: β sweep at fixed queue count.
    for beta in [1.0, 0.5, 0.25, 0.0] {
        bench_spec(c, "ablation_beta", QueueSpec::multiqueue(beta));
    }
    // Ablation: queues-per-thread factor.
    for c_factor in [1usize, 2, 4, 8] {
        bench_spec(
            c,
            "ablation_queues_per_thread",
            QueueSpec::MultiQueue {
                beta: 1.0,
                queues_per_thread: c_factor,
            },
        );
    }
}

criterion_group!(concurrent_pq_ops, benches);
criterion_main!(concurrent_pq_ops);
