//! C1 (part 3) — cost of simulating the analysed processes themselves
//! (the sequential labelled process with exact rank accounting, and the
//! exponential top process), so the table/figure binaries' run times can be
//! budgeted and regressions in the simulators are caught.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use choice_process::{ExponentialTopProcess, ProcessConfig, SequentialProcess};

fn benches(c: &mut Criterion) {
    for (n, beta) in [(16usize, 1.0f64), (64, 1.0), (64, 0.5)] {
        c.bench_function(
            &format!("sequential_process/alternating/n={n}/beta={beta}"),
            |b| {
                b.iter_batched(
                    || {
                        let mut p = SequentialProcess::new(
                            ProcessConfig::new(n).with_beta(beta).with_seed(1),
                        );
                        p.prefill(n as u64 * 200);
                        p
                    },
                    |mut p| p.run_alternating(5_000, 0),
                    BatchSize::LargeInput,
                )
            },
        );
    }

    c.bench_function("exponential_process/step/n=64", |b| {
        b.iter_batched(
            || ExponentialTopProcess::new(ProcessConfig::new(64).with_seed(1)),
            |mut p| {
                p.run(5_000);
                p.mu()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(sequential_process, benches);
criterion_main!(sequential_process);
