//! Declarative queue construction ([`BackendSpec`]) and per-queue resource
//! budgets ([`QuotaSpec`]).
//!
//! A registry entry is created from a *description*, not a queue value: the
//! backend spec is a small, wire-encodable enum naming one of the backends
//! the paper compares plus its sizing parameters, and the actual structure
//! is built lazily on first use. That keeps `CreateQueue` cheap (thousands
//! of queues can exist with only the hot ones instantiated) and makes the
//! description round-trippable through the service protocol.

use std::sync::Arc;

use choice_obs::ObsHub;
use choice_pq::{DynSharedPq, ElasticPolicy, MultiQueue, MultiQueueConfig, QueueObs};
use pq_baselines::{CoarseHeap, KLsmConfig, KLsmQueue, SkipListQueue};

/// Which backend a named queue runs on, with its sizing parameters.
///
/// Mirrors the bench harness's `QueueSpec` line-up, but sized in absolute
/// lanes/threads (a registry does not know how many workers a tenant will
/// bring) and encodable in four small wire fields: a code byte plus three
/// `u32` parameters (unused parameters are ignored; zero parameters are
/// clamped up to `1` so any wire value builds *some* valid queue rather
/// than panicking a construction deep inside the server).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendSpec {
    /// The d-choice MultiQueue with a fixed lane count.
    MultiQueue {
        /// Total lane count `n`.
        lanes: u32,
        /// Lanes sampled per `delete_min`.
        d: u32,
    },
    /// The sharded elastic MultiQueue (lane capacity `lanes`, default
    /// [`ElasticPolicy`] controller — each queue gets its own controller
    /// instance, so tenants resize independently).
    Elastic {
        /// Lane capacity (the elastic ceiling).
        lanes: u32,
        /// Lanes sampled per `delete_min`.
        d: u32,
        /// Insert shard count (clamped to `lanes`).
        shards: u32,
    },
    /// The coarse-locked exact binary heap.
    CoarseHeap,
    /// The k-LSM-style deterministic relaxed queue.
    KLsm {
        /// Thread slots the structure is sized for.
        threads: u32,
        /// Relaxation factor k.
        relaxation: u32,
    },
    /// The centralized skiplist queue.
    SkipList,
}

impl BackendSpec {
    /// A sensibly-sized default backend: an 8-lane two-choice MultiQueue.
    pub fn default_multiqueue() -> Self {
        BackendSpec::MultiQueue { lanes: 8, d: 2 }
    }

    /// The wire code byte identifying this backend family.
    pub fn code(&self) -> u8 {
        match self {
            BackendSpec::MultiQueue { .. } => 0,
            BackendSpec::Elastic { .. } => 1,
            BackendSpec::CoarseHeap => 2,
            BackendSpec::KLsm { .. } => 3,
            BackendSpec::SkipList => 4,
        }
    }

    /// The three positional wire parameters (unused ones are zero).
    pub fn params(&self) -> (u32, u32, u32) {
        match *self {
            BackendSpec::MultiQueue { lanes, d } => (lanes, d, 0),
            BackendSpec::Elastic { lanes, d, shards } => (lanes, d, shards),
            BackendSpec::CoarseHeap => (0, 0, 0),
            BackendSpec::KLsm {
                threads,
                relaxation,
            } => (threads, relaxation, 0),
            BackendSpec::SkipList => (0, 0, 0),
        }
    }

    /// Reassembles a spec from its wire form; `None` for an unknown code.
    pub fn from_wire(code: u8, p1: u32, p2: u32, p3: u32) -> Option<Self> {
        match code {
            0 => Some(BackendSpec::MultiQueue { lanes: p1, d: p2 }),
            1 => Some(BackendSpec::Elastic {
                lanes: p1,
                d: p2,
                shards: p3,
            }),
            2 => Some(BackendSpec::CoarseHeap),
            3 => Some(BackendSpec::KLsm {
                threads: p1,
                relaxation: p2,
            }),
            4 => Some(BackendSpec::SkipList),
            _ => None,
        }
    }

    /// Short human-readable label used in queue listings.
    pub fn label(&self) -> String {
        match *self {
            BackendSpec::MultiQueue { lanes, d } => {
                format!("multiqueue(n={}, d={})", lanes.max(1), d.max(1))
            }
            BackendSpec::Elastic { lanes, d, shards } => format!(
                "mq-elastic(n={}, d={}, s={})",
                lanes.max(1),
                d.max(1),
                shards.max(1).min(lanes.max(1))
            ),
            BackendSpec::CoarseHeap => "coarse-heap".to_string(),
            BackendSpec::KLsm {
                threads,
                relaxation,
            } => format!("klsm(t={}, k={})", threads.max(1), relaxation.max(1)),
            BackendSpec::SkipList => "skiplist".to_string(),
        }
    }

    /// Builds the described queue, type-erased. Zero-valued parameters are
    /// clamped up to `1` (and shard counts down to the lane count), so every
    /// wire-decodable spec constructs without panicking.
    pub fn build(&self, seed: u64) -> Arc<dyn DynSharedPq<u64>> {
        match *self {
            BackendSpec::MultiQueue { lanes, d } => Arc::new(MultiQueue::<u64>::new(
                MultiQueueConfig::with_queues(lanes.max(1) as usize)
                    .with_d(d.max(1) as usize)
                    .with_seed(seed),
            )),
            BackendSpec::Elastic { lanes, d, shards } => {
                let lanes = lanes.max(1) as usize;
                Arc::new(MultiQueue::<u64>::new(
                    MultiQueueConfig::with_queues(lanes)
                        .with_d(d.max(1) as usize)
                        .with_shards((shards.max(1) as usize).min(lanes))
                        .with_elastic(ElasticPolicy::default())
                        .with_seed(seed),
                ))
            }
            BackendSpec::CoarseHeap => Arc::new(CoarseHeap::new()),
            BackendSpec::KLsm {
                threads,
                relaxation,
            } => Arc::new(KLsmQueue::new(
                KLsmConfig::for_threads(threads.max(1) as usize)
                    .with_relaxation(relaxation.max(1) as usize),
            )),
            BackendSpec::SkipList => Arc::new(SkipListQueue::with_seed(seed)),
        }
    }

    /// Like [`build`](Self::build), but attaches a [`QueueObs`] bundle
    /// labelled `queue_name` to backends that support telemetry (the
    /// MultiQueue family) *before* type erasure, so a registry-built queue
    /// reports its counters, latency samples, and live rank-error probe
    /// (`mq_rank_error{queue=...}`) into `hub`. Baseline backends carry no
    /// instrumentation and build exactly as [`build`](Self::build) does.
    pub fn build_observed(
        &self,
        seed: u64,
        hub: &ObsHub,
        queue_name: &str,
    ) -> Arc<dyn DynSharedPq<u64>> {
        match *self {
            BackendSpec::MultiQueue { lanes, d } => {
                let mut q = MultiQueue::<u64>::new(
                    MultiQueueConfig::with_queues(lanes.max(1) as usize)
                        .with_d(d.max(1) as usize)
                        .with_seed(seed),
                );
                q.attach_obs(QueueObs::new(hub, queue_name));
                Arc::new(q)
            }
            BackendSpec::Elastic { lanes, d, shards } => {
                let lanes = lanes.max(1) as usize;
                let mut q = MultiQueue::<u64>::new(
                    MultiQueueConfig::with_queues(lanes)
                        .with_d(d.max(1) as usize)
                        .with_shards((shards.max(1) as usize).min(lanes))
                        .with_elastic(ElasticPolicy::default())
                        .with_seed(seed),
                );
                q.attach_obs(QueueObs::new(hub, queue_name));
                Arc::new(q)
            }
            BackendSpec::CoarseHeap | BackendSpec::KLsm { .. } | BackendSpec::SkipList => {
                self.build(seed)
            }
        }
    }
}

/// Resource budget of one named queue. `0` means *unlimited* for every
/// field except [`shed_key_bound`](QuotaSpec::shed_key_bound), whose
/// no-shedding value is `u64::MAX`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaSpec {
    /// Maximum elements in flight (inserted, not yet removed) at once.
    /// Inserts beyond this are refused until removals free budget.
    pub max_inflight: u64,
    /// Maximum concurrently bound sessions; further `UseQueue`/connection
    /// binds are refused.
    pub max_sessions: u64,
    /// Sustained queue-operation rate (inserts + removals per second)
    /// metered by a token bucket. `0` disables rate metering.
    pub ops_per_sec: u64,
    /// Token-bucket burst capacity. `0` defaults to one second of budget
    /// (`ops_per_sec`).
    pub burst: u64,
    /// Class boundary for rate shedding: inserts with `key >=` this bound
    /// are *background* class and are refused while the token bucket sits
    /// below half its burst (the reserve kept for urgent traffic). With
    /// earliest-deadline-first keys this sheds the latest-deadline work
    /// first. `u64::MAX` (the default) makes every insert urgent.
    pub shed_key_bound: u64,
}

impl QuotaSpec {
    /// No limits at all (the quota of the backward-compat default queue).
    pub fn unlimited() -> Self {
        Self {
            max_inflight: 0,
            max_sessions: 0,
            ops_per_sec: 0,
            burst: 0,
            shed_key_bound: u64::MAX,
        }
    }

    /// Sets the in-flight element ceiling (`0` = unlimited).
    pub fn with_max_inflight(mut self, max_inflight: u64) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Sets the concurrent-session ceiling (`0` = unlimited).
    pub fn with_max_sessions(mut self, max_sessions: u64) -> Self {
        self.max_sessions = max_sessions;
        self
    }

    /// Sets the sustained ops/sec rate and burst (`burst == 0` defaults to
    /// one second of budget).
    pub fn with_rate(mut self, ops_per_sec: u64, burst: u64) -> Self {
        self.ops_per_sec = ops_per_sec;
        self.burst = burst;
        self
    }

    /// Sets the background-class key boundary (see
    /// [`shed_key_bound`](QuotaSpec::shed_key_bound)).
    pub fn with_shed_key_bound(mut self, bound: u64) -> Self {
        self.shed_key_bound = bound;
        self
    }

    /// The effective burst capacity (the one-second default applied).
    pub fn effective_burst(&self) -> u64 {
        if self.burst == 0 {
            self.ops_per_sec
        } else {
            self.burst
        }
    }
}

impl Default for QuotaSpec {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choice_pq::SharedPq;

    #[test]
    fn every_backend_round_trips_through_the_wire_form() {
        let specs = [
            BackendSpec::MultiQueue { lanes: 8, d: 2 },
            BackendSpec::Elastic {
                lanes: 16,
                d: 4,
                shards: 2,
            },
            BackendSpec::CoarseHeap,
            BackendSpec::KLsm {
                threads: 4,
                relaxation: 256,
            },
            BackendSpec::SkipList,
        ];
        for spec in specs {
            let (p1, p2, p3) = spec.params();
            assert_eq!(BackendSpec::from_wire(spec.code(), p1, p2, p3), Some(spec));
        }
        assert_eq!(BackendSpec::from_wire(99, 0, 0, 0), None);
    }

    #[test]
    fn every_backend_builds_a_working_queue() {
        let specs = [
            BackendSpec::MultiQueue { lanes: 4, d: 2 },
            BackendSpec::Elastic {
                lanes: 8,
                d: 2,
                shards: 2,
            },
            BackendSpec::CoarseHeap,
            BackendSpec::KLsm {
                threads: 2,
                relaxation: 16,
            },
            BackendSpec::SkipList,
        ];
        for spec in specs {
            let q = spec.build(7);
            let mut h = q.register_dyn();
            h.insert(5, 50);
            h.insert(1, 10);
            let (k, _) = h.delete_min().expect("non-empty");
            assert!(k == 1 || k == 5, "{}", spec.label());
            assert_eq!(q.approx_len(), 1, "{}", spec.label());
        }
    }

    #[test]
    fn zero_parameters_are_clamped_not_panics() {
        for code in 0..=4u8 {
            let spec = BackendSpec::from_wire(code, 0, 0, 0).unwrap();
            let q = spec.build(1);
            let mut h = q.register_dyn();
            h.insert(1, 1);
            assert_eq!(h.delete_min(), Some((1, 1)), "code {code}");
        }
        // Shards beyond lanes clamp down instead of tripping the config
        // assertion.
        let spec = BackendSpec::Elastic {
            lanes: 2,
            d: 2,
            shards: 100,
        };
        let q = spec.build(1);
        assert!(q.topology_dyn().shards <= 2);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            BackendSpec::MultiQueue { lanes: 8, d: 2 }.label(),
            "multiqueue(n=8, d=2)"
        );
        assert_eq!(BackendSpec::CoarseHeap.label(), "coarse-heap");
        assert!(BackendSpec::default_multiqueue().label().contains("n=8"));
    }

    #[test]
    fn quota_builders_and_defaults() {
        let q = QuotaSpec::default();
        assert_eq!(q, QuotaSpec::unlimited());
        assert_eq!(q.shed_key_bound, u64::MAX);
        let q = QuotaSpec::unlimited()
            .with_max_inflight(100)
            .with_max_sessions(2)
            .with_rate(500, 0)
            .with_shed_key_bound(1_000);
        assert_eq!(q.max_inflight, 100);
        assert_eq!(q.max_sessions, 2);
        assert_eq!(q.effective_burst(), 500, "burst defaults to one second");
        assert_eq!(
            QuotaSpec::unlimited().with_rate(500, 50).effective_burst(),
            50
        );
    }
}
