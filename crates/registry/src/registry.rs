//! The queue registry: named queues, lazy instantiation, session bindings,
//! quota enforcement and per-queue statistics.
//!
//! # Lifecycle
//!
//! A queue is **created** from a [`BackendSpec`] + [`QuotaSpec`] description
//! (or **installed** pre-built, the backward-compat path for single-queue
//! servers). Creation does not build the structure: the first
//! [`QueueBinding`] that actually operates on it does, seeded
//! deterministically from the registry seed and the queue name. A queue is
//! **dropped** by name; the entry leaves the namespace immediately (the name
//! can be recreated) and every live binding observes the tombstone on its
//! next admitted operation, getting a typed refusal — never a panic, and
//! never a dangling session.
//!
//! # Statistics
//!
//! Each entry keeps one slot per *live* binding plus a single rolled-up
//! accumulator for every binding that has closed — connection churn costs
//! O(1) retained memory per queue, not O(sessions ever). A closing binding
//! merges its final counters into the roll-up and removes its slot under
//! one lock, so aggregates taken concurrently never double-count and never
//! go backwards. Refusals are counted on the entry (they have no session
//! stats slot of their own) and folded into the aggregate's
//! `HandleStats::refusals`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use choice_obs::{
    refusal_category, refusal_category_name, Counter, EventKind, FlightRecorder, Gauge, ObsHub,
};
use choice_pq::{DynSharedPq, HandlePolicy, HandleStats, Key, PqHandle, QueueTopology};
use parking_lot::Mutex;
use rank_stats::tokens::TokenBucket;

use crate::spec::{BackendSpec, QuotaSpec};

/// Hard ceiling on the number of queues any registry may hold (the wire
/// protocol sizes its list/stats frames against this).
pub const MAX_QUEUES: usize = 1024;

/// The queue every v2 (single-queue) client is bound to.
pub const DEFAULT_QUEUE: &str = "default";

/// Maximum queue-name length in bytes (names ride in one-byte-length wire
/// fields with room to spare).
pub const MAX_NAME_LEN: usize = 64;

/// Whether `name` is a legal queue name: 1..=[`MAX_NAME_LEN`] bytes of
/// ASCII alphanumerics plus `- _ . /`.
pub fn valid_name(name: &str) -> bool {
    (1..=MAX_NAME_LEN).contains(&name.len())
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'/'))
}

/// Everything a registry lifecycle or bind call can fail with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is empty, too long, or holds characters outside the allowed
    /// set.
    BadName(String),
    /// `create`/`install` target already exists.
    Exists(String),
    /// The named queue does not exist (never created, or dropped).
    NotFound(String),
    /// The registry is at its queue-count ceiling.
    Full {
        /// The configured ceiling that was hit.
        limit: usize,
    },
    /// The queue's concurrent-session quota is exhausted.
    SessionLimit {
        /// The queue being bound.
        name: String,
        /// Its session ceiling.
        limit: u64,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::BadName(name) => write!(
                f,
                "invalid queue name {name:?} (1..={MAX_NAME_LEN} bytes of [A-Za-z0-9._/-])"
            ),
            RegistryError::Exists(name) => write!(f, "queue {name:?} already exists"),
            RegistryError::NotFound(name) => write!(f, "no queue named {name:?}"),
            RegistryError::Full { limit } => {
                write!(f, "registry is full ({limit} queues)")
            }
            RegistryError::SessionLimit { name, limit } => {
                write!(f, "queue {name:?} is at its session quota ({limit})")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Why an admitted-path operation was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The queue's token bucket could not cover the operation.
    Rate {
        /// Whether the operation was background class (shed at the urgent
        /// reserve rather than at empty).
        background: bool,
    },
    /// The in-flight element quota is exhausted.
    InFlight,
    /// The queue was dropped while this binding was live.
    Dropped,
}

impl fmt::Display for Refusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Refusal::Rate { background: true } => {
                write!(f, "rate quota exhausted (background class shed first)")
            }
            Refusal::Rate { background: false } => write!(f, "rate quota exhausted"),
            Refusal::InFlight => write!(f, "in-flight element quota exhausted"),
            Refusal::Dropped => write!(f, "queue was dropped"),
        }
    }
}

/// A point-in-time view of one registry entry, used by queue listings and
/// the per-queue Stats breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueSnapshot {
    /// The queue's registry name.
    pub name: String,
    /// Backend label (see [`BackendSpec::label`]; installed queues report
    /// the queue's own name string).
    pub backend: String,
    /// Whether the backing structure has been built yet.
    pub instantiated: bool,
    /// Sessions ever bound to this queue.
    pub sessions_total: u64,
    /// Sessions currently bound.
    pub sessions_live: u64,
    /// Aggregated per-session counters (live slots + closed roll-up), with
    /// the entry's refusal count folded into `totals.refusals`.
    pub totals: HandleStats,
    /// Approximate element count (`0` while uninstantiated).
    pub approx_len: u64,
    /// Lane topology (`None` while uninstantiated).
    pub topology: Option<QueueTopology>,
}

/// Live + closed session counters of one entry, moved under a single lock
/// so a closing binding's "merge into roll-up, remove slot" is atomic with
/// respect to aggregation (totals can never double-count or go backwards).
struct StatsInner {
    live: Vec<Arc<Mutex<HandleStats>>>,
    closed: HandleStats,
}

/// One named queue: description, lazily-built structure, quota state.
struct QueueEntry {
    name: String,
    backend_label: String,
    spec: Option<BackendSpec>,
    quota: QuotaSpec,
    seed: u64,
    queue: OnceLock<Arc<dyn DynSharedPq<u64>>>,
    dropped: AtomicBool,
    /// Admitted-but-not-yet-removed element estimate (saturating).
    inflight: AtomicU64,
    sessions_live: AtomicU64,
    sessions_total: AtomicU64,
    refusals_rate_urgent: AtomicU64,
    refusals_rate_background: AtomicU64,
    refusals_inflight: AtomicU64,
    refusals_dropped: AtomicU64,
    /// Refusals decided outside the quota machinery (e.g. the service
    /// layer's reserved-key check), attributed here so per-queue totals
    /// stay complete.
    refusals_external: AtomicU64,
    bucket: Option<Mutex<TokenBucket>>,
    stats: Mutex<StatsInner>,
}

impl QueueEntry {
    fn new(name: &str, spec: Option<BackendSpec>, quota: QuotaSpec, seed: u64) -> Self {
        let bucket = if quota.ops_per_sec > 0 {
            Some(Mutex::new(TokenBucket::new(
                quota.ops_per_sec as f64,
                quota.effective_burst().max(1) as f64,
            )))
        } else {
            None
        };
        Self {
            name: name.to_string(),
            backend_label: spec
                .as_ref()
                .map(|s| s.label())
                .unwrap_or_else(|| "installed".to_string()),
            spec,
            quota,
            seed,
            queue: OnceLock::new(),
            dropped: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            sessions_live: AtomicU64::new(0),
            sessions_total: AtomicU64::new(0),
            refusals_rate_urgent: AtomicU64::new(0),
            refusals_rate_background: AtomicU64::new(0),
            refusals_inflight: AtomicU64::new(0),
            refusals_dropped: AtomicU64::new(0),
            refusals_external: AtomicU64::new(0),
            bucket,
            stats: Mutex::new(StatsInner {
                live: Vec::new(),
                closed: HandleStats::default(),
            }),
        }
    }

    /// The backing queue, built on first use. When the registry carries a
    /// telemetry hub the lazy build attaches a per-queue
    /// [`QueueObs`](choice_pq::QueueObs) bundle (see
    /// [`BackendSpec::build_observed`]); pre-installed queues
    /// are returned as-is (their owner decides their instrumentation).
    fn queue(&self, hub: Option<&Arc<ObsHub>>) -> &Arc<dyn DynSharedPq<u64>> {
        self.queue.get_or_init(|| {
            let spec = self
                .spec
                .as_ref()
                .expect("entry without a spec must be pre-installed");
            match hub {
                Some(hub) => spec.build_observed(self.seed, hub, &self.name),
                None => spec.build(self.seed),
            }
        })
    }

    fn total_refusals(&self) -> u64 {
        self.refusals_rate_urgent
            .load(Ordering::Relaxed)
            .saturating_add(self.refusals_rate_background.load(Ordering::Relaxed))
            .saturating_add(self.refusals_inflight.load(Ordering::Relaxed))
            .saturating_add(self.refusals_dropped.load(Ordering::Relaxed))
            .saturating_add(self.refusals_external.load(Ordering::Relaxed))
    }

    /// Aggregated counters: closed roll-up + every live slot + refusals.
    fn aggregate(&self) -> HandleStats {
        let inner = self.stats.lock();
        let mut totals = inner.closed;
        for slot in &inner.live {
            totals.merge(&slot.lock());
        }
        drop(inner);
        totals.refusals = totals.refusals.saturating_add(self.total_refusals());
        totals
    }

    fn snapshot(&self) -> QueueSnapshot {
        let instantiated = self.queue.get().is_some();
        let (approx_len, topology) = match self.queue.get() {
            Some(q) => (q.approx_len_dyn() as u64, Some(q.topology_dyn())),
            None => (0, None),
        };
        QueueSnapshot {
            name: self.name.clone(),
            backend: self.backend_label.clone(),
            instantiated,
            sessions_total: self.sessions_total.load(Ordering::Relaxed),
            sessions_live: self.sessions_live.load(Ordering::Relaxed),
            totals: self.aggregate(),
            approx_len,
            topology,
        }
    }
}

/// Registry-wide configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Queue-count ceiling (at most [`MAX_QUEUES`]).
    pub max_queues: usize,
    /// Base RNG seed; each queue derives its own seed from this and its
    /// name, so a registry full of queues stays deterministic per name.
    pub seed: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            max_queues: 256,
            seed: 0x5EED_4E57, // "nest"
        }
    }
}

impl RegistryConfig {
    /// Sets the queue-count ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `max_queues` is `0` or exceeds [`MAX_QUEUES`].
    pub fn with_max_queues(mut self, max_queues: usize) -> Self {
        assert!(
            (1..=MAX_QUEUES).contains(&max_queues),
            "max_queues must be in 1..={MAX_QUEUES}"
        );
        self.max_queues = max_queues;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// FNV-1a over the queue name: mixed into the registry seed so each queue's
/// RNG stream is deterministic per (registry seed, name).
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A registry of named queues with per-queue quotas.
///
/// Thread-safe: lifecycle calls, binds and snapshots may race freely. The
/// namespace lock is held only for map operations — never while building a
/// queue or taking stats locks.
pub struct QueueRegistry {
    queues: Mutex<BTreeMap<String, Arc<QueueEntry>>>,
    config: RegistryConfig,
    /// Monotonic origin for token-bucket timestamps.
    epoch: Instant,
    /// Refusals answered without any queue bound (e.g. session ops from a
    /// connection whose queue vanished) — kept out of per-queue rows but
    /// folded into service-level totals.
    unbound_refusals: AtomicU64,
    /// Roll-up of dropped queues' final aggregates, so service-level totals
    /// stay monotonic across `drop_queue` (per-queue rows for dropped
    /// queues disappear; their history does not).
    retired: Mutex<HandleStats>,
    /// Telemetry hub, attached once via [`set_obs`](Self::set_obs). A
    /// `OnceLock` because the registry `Arc` is typically created before
    /// the server that owns the hub.
    obs: OnceLock<Arc<ObsHub>>,
}

impl QueueRegistry {
    /// Creates an empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        Self {
            queues: Mutex::new(BTreeMap::new()),
            config,
            epoch: Instant::now(),
            unbound_refusals: AtomicU64::new(0),
            retired: Mutex::new(HandleStats::default()),
            obs: OnceLock::new(),
        }
    }

    /// Attaches a telemetry hub: every binding opened afterwards counts its
    /// refusals into `registry_refusals_total{queue=,category=}`, mirrors
    /// the in-flight quota into the `registry_inflight{queue=}` gauge, and
    /// records an epoch-stamped [`EventKind::QuotaRefusal`] flight-recorder
    /// event per refusal. The first hub wins; later calls are no-ops
    /// (bindings hold per-queue cells resolved from the hub at bind time,
    /// so swapping hubs mid-flight would split the counters).
    pub fn set_obs(&self, hub: Arc<ObsHub>) {
        let _ = self.obs.set(hub);
    }

    /// The attached telemetry hub, if any.
    pub fn obs(&self) -> Option<&Arc<ObsHub>> {
        self.obs.get()
    }

    /// The configured ceiling.
    pub fn max_queues(&self) -> usize {
        self.config.max_queues
    }

    /// Number of queues currently registered.
    pub fn len(&self) -> usize {
        self.queues.lock().len()
    }

    /// Whether the registry holds no queues.
    pub fn is_empty(&self) -> bool {
        self.queues.lock().is_empty()
    }

    /// Whether a queue named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.queues.lock().contains_key(name)
    }

    /// Registers a new queue described by `backend` + `quota`. The backing
    /// structure is built lazily on first use.
    pub fn create(
        &self,
        name: &str,
        backend: BackendSpec,
        quota: QuotaSpec,
    ) -> Result<(), RegistryError> {
        self.insert_entry(name, Some(backend), None, quota)
    }

    /// Registers a pre-built queue under `name` (the compat path: a server
    /// given one queue installs it as [`DEFAULT_QUEUE`]).
    pub fn install(
        &self,
        name: &str,
        queue: Arc<dyn DynSharedPq<u64>>,
        quota: QuotaSpec,
    ) -> Result<(), RegistryError> {
        self.insert_entry(name, None, Some(queue), quota)
    }

    fn insert_entry(
        &self,
        name: &str,
        spec: Option<BackendSpec>,
        prebuilt: Option<Arc<dyn DynSharedPq<u64>>>,
        quota: QuotaSpec,
    ) -> Result<(), RegistryError> {
        if !valid_name(name) {
            return Err(RegistryError::BadName(name.to_string()));
        }
        let seed = self.config.seed ^ name_hash(name);
        let entry = Arc::new(QueueEntry::new(name, spec, quota, seed));
        if let Some(queue) = prebuilt {
            let _ = entry.queue.set(queue);
        }
        let mut map = self.queues.lock();
        if map.contains_key(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        if map.len() >= self.config.max_queues {
            return Err(RegistryError::Full {
                limit: self.config.max_queues,
            });
        }
        map.insert(name.to_string(), entry);
        Ok(())
    }

    /// Drops the named queue: the name leaves the namespace immediately and
    /// live bindings observe a [`Refusal::Dropped`] tombstone on their next
    /// admitted operation. The queue's aggregate counters (as of the drop)
    /// move into the retired roll-up so service-level totals stay
    /// monotonic; per-queue rows for it disappear.
    pub fn drop_queue(&self, name: &str) -> Result<(), RegistryError> {
        let entry = self
            .queues
            .lock()
            .remove(name)
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))?;
        entry.dropped.store(true, Ordering::SeqCst);
        self.retired.lock().merge(&entry.aggregate());
        Ok(())
    }

    /// Opens a session binding on the named queue (counted against its
    /// session quota until the binding drops).
    pub fn bind(&self, name: &str) -> Result<QueueBinding, RegistryError> {
        let entry = self
            .queues
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))?;
        let max = entry.quota.max_sessions;
        if max > 0 {
            let claimed =
                entry
                    .sessions_live
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                        (v < max).then_some(v + 1)
                    });
            if claimed.is_err() {
                return Err(RegistryError::SessionLimit {
                    name: name.to_string(),
                    limit: max,
                });
            }
        } else {
            entry.sessions_live.fetch_add(1, Ordering::SeqCst);
        }
        entry.sessions_total.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Mutex::new(HandleStats::default()));
        entry.stats.lock().live.push(Arc::clone(&slot));
        Ok(QueueBinding {
            obs: self.obs.get().map(|hub| BindingObs::new(hub, name)),
            hub: self.obs.get().cloned(),
            entry,
            slot,
            epoch: self.epoch,
        })
    }

    /// Snapshots every queue, sorted by name.
    pub fn stats(&self) -> Vec<QueueSnapshot> {
        let entries: Vec<Arc<QueueEntry>> = self.queues.lock().values().cloned().collect();
        entries.iter().map(|e| e.snapshot()).collect()
    }

    /// The retired roll-up: final aggregates of every dropped queue.
    pub fn retired_totals(&self) -> HandleStats {
        *self.retired.lock()
    }

    /// Counts one refusal that no queue can be charged for.
    pub fn note_unbound_refusal(&self) {
        self.unbound_refusals.fetch_add(1, Ordering::Relaxed);
        if let Some(hub) = self.obs.get() {
            hub.metrics()
                .counter("registry_unbound_refusals_total", &[])
                .inc();
        }
    }

    /// Refusals answered without a bound queue.
    pub fn unbound_refusals(&self) -> u64 {
        self.unbound_refusals.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the registry's construction (the token-bucket
    /// clock, exposed for tests and simulations).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for QueueRegistry {
    fn default() -> Self {
        Self::new(RegistryConfig::default())
    }
}

impl fmt::Debug for QueueRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueRegistry")
            .field("queues", &self.len())
            .field("max_queues", &self.config.max_queues)
            .finish()
    }
}

/// Obs cells one binding touches, resolved once at bind time so the
/// admission path never takes the metrics-registry lock: refusal counters
/// indexed by [`refusal_category`] code, the queue's in-flight gauge, and
/// the flight recorder for per-refusal events.
struct BindingObs {
    recorder: Arc<FlightRecorder>,
    refusals: [Arc<Counter>; 5],
    inflight: Arc<Gauge>,
}

impl BindingObs {
    fn new(hub: &ObsHub, queue: &str) -> Self {
        let refusals = [
            refusal_category::DROPPED,
            refusal_category::INFLIGHT,
            refusal_category::RATE_BACKGROUND,
            refusal_category::RATE_URGENT,
            refusal_category::EXTERNAL,
        ]
        .map(|code| {
            hub.metrics().counter(
                "registry_refusals_total",
                &[("queue", queue), ("category", refusal_category_name(code))],
            )
        });
        Self {
            recorder: Arc::clone(hub.recorder()),
            refusals,
            inflight: hub
                .metrics()
                .gauge("registry_inflight", &[("queue", queue)]),
        }
    }
}

/// One session's claim on a named queue: the admission gate every service
/// operation passes through, plus this session's stats slot. Dropping the
/// binding releases the session-quota slot and rolls the session's final
/// counters into the queue's closed accumulator.
pub struct QueueBinding {
    entry: Arc<QueueEntry>,
    slot: Arc<Mutex<HandleStats>>,
    epoch: Instant,
    obs: Option<BindingObs>,
    /// The registry's telemetry hub at bind time, handed to the entry's
    /// lazy queue build so registry-built backends come up instrumented.
    hub: Option<Arc<ObsHub>>,
}

impl QueueBinding {
    /// The bound queue's name.
    pub fn name(&self) -> &str {
        &self.entry.name
    }

    /// The bound queue's quota record.
    pub fn quota(&self) -> &QuotaSpec {
        &self.entry.quota
    }

    /// Whether the queue was dropped out from under this binding.
    pub fn is_dropped(&self) -> bool {
        self.entry.dropped.load(Ordering::SeqCst)
    }

    /// The backing queue (built on first call).
    pub fn queue(&self) -> &Arc<dyn DynSharedPq<u64>> {
        self.entry.queue(self.hub.as_ref())
    }

    /// Opens a session handle on the backing queue (the handle borrows this
    /// binding, exactly as in-process handles borrow their queue).
    pub fn register(&self, policy: HandlePolicy) -> Box<dyn PqHandle<u64> + '_> {
        self.entry
            .queue(self.hub.as_ref())
            .register_policy_dyn(policy)
    }

    /// Admission check for an insert of `key`. Charges the in-flight quota
    /// and one rate token; an insert whose key falls in the background
    /// class is refused while the bucket sits below the urgent reserve
    /// (half the burst).
    pub fn admit_insert(&self, key: Key) -> Result<(), Refusal> {
        self.admit(true, key)
    }

    /// Admission check for a removal-side operation (delete-min, batch).
    /// Charges one urgent-class rate token; the in-flight quota is not
    /// consulted (removals free it).
    pub fn admit_removal(&self) -> Result<(), Refusal> {
        self.admit(false, 0)
    }

    fn admit(&self, is_insert: bool, key: Key) -> Result<(), Refusal> {
        if self.entry.dropped.load(Ordering::SeqCst) {
            self.entry.refusals_dropped.fetch_add(1, Ordering::Relaxed);
            self.obs_refusal(refusal_category::DROPPED, key);
            return Err(Refusal::Dropped);
        }
        let mut inflight_claimed = false;
        if is_insert {
            let max = self.entry.quota.max_inflight;
            if max > 0 {
                let claimed =
                    self.entry
                        .inflight
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                            (v < max).then_some(v + 1)
                        });
                if claimed.is_err() {
                    self.entry.refusals_inflight.fetch_add(1, Ordering::Relaxed);
                    self.obs_refusal(refusal_category::INFLIGHT, key);
                    return Err(Refusal::InFlight);
                }
            } else {
                self.entry.inflight.fetch_add(1, Ordering::Relaxed);
            }
            inflight_claimed = true;
        }
        if let Some(bucket) = &self.entry.bucket {
            let background = is_insert && key >= self.entry.quota.shed_key_bound;
            let now_ns = self.epoch.elapsed().as_nanos() as u64;
            let mut bucket = bucket.lock();
            let reserve = if background {
                bucket.capacity() * 0.5
            } else {
                0.0
            };
            if !bucket.try_take(now_ns, 1.0, reserve) {
                drop(bucket);
                if inflight_claimed {
                    // Give the optimistic in-flight claim back.
                    let _ =
                        self.entry
                            .inflight
                            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                                Some(v.saturating_sub(1))
                            });
                }
                let (counter, category) = if background {
                    (
                        &self.entry.refusals_rate_background,
                        refusal_category::RATE_BACKGROUND,
                    )
                } else {
                    (
                        &self.entry.refusals_rate_urgent,
                        refusal_category::RATE_URGENT,
                    )
                };
                counter.fetch_add(1, Ordering::Relaxed);
                self.obs_refusal(category, key);
                return Err(Refusal::Rate { background });
            }
        }
        if is_insert {
            if let Some(obs) = &self.obs {
                obs.inflight.inc();
            }
        }
        Ok(())
    }

    /// Mirrors one refusal into the obs hub: per-category counter plus a
    /// flight-recorder [`EventKind::QuotaRefusal`] event labelled with the
    /// queue name, carrying `[category, key, inflight-at-refusal]`.
    fn obs_refusal(&self, category: u64, key: Key) {
        if let Some(obs) = &self.obs {
            obs.refusals[category as usize].inc();
            obs.recorder.record(
                EventKind::QuotaRefusal,
                &self.entry.name,
                [category, key, self.entry.inflight.load(Ordering::Relaxed)],
            );
        }
    }

    /// Credits `n` successful removals back to the in-flight quota.
    pub fn note_removed(&self, n: u64) {
        if n > 0 {
            let prev = self
                .entry
                .inflight
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    Some(v.saturating_sub(n))
                })
                .unwrap_or(0);
            if let Some(obs) = &self.obs {
                // Mirror the credit that actually landed (the atomic
                // saturates at zero) so the gauge never goes negative.
                obs.inflight.add(-(prev.min(n) as i64));
            }
        }
    }

    /// Counts one refusal decided outside the quota machinery (e.g. a
    /// reserved-key refusal at the service layer) against this queue.
    pub fn note_external_refusal(&self) {
        self.entry.refusals_external.fetch_add(1, Ordering::Relaxed);
        self.obs_refusal(refusal_category::EXTERNAL, 0);
    }

    /// Publishes this session's current handle counters to its stats slot
    /// (the aggregate reads them from there).
    pub fn publish_stats(&self, stats: HandleStats) {
        *self.slot.lock() = stats;
    }

    /// This binding's queue snapshot (for tests and diagnostics).
    pub fn snapshot(&self) -> QueueSnapshot {
        self.entry.snapshot()
    }
}

impl fmt::Debug for QueueBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueBinding")
            .field("queue", &self.entry.name)
            .field("dropped", &self.is_dropped())
            .finish()
    }
}

impl Drop for QueueBinding {
    fn drop(&mut self) {
        // Merge-and-remove under one lock so concurrent aggregation sees
        // either (live slot) or (roll-up including it), never both/neither.
        let finals = *self.slot.lock();
        let mut inner = self.entry.stats.lock();
        inner.closed.merge(&finals);
        inner.live.retain(|s| !Arc::ptr_eq(s, &self.slot));
        drop(inner);
        self.entry.sessions_live.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mq() -> BackendSpec {
        BackendSpec::MultiQueue { lanes: 4, d: 2 }
    }

    #[test]
    fn create_bind_operate_drop_lifecycle() {
        let reg = QueueRegistry::default();
        reg.create("tenant/a", mq(), QuotaSpec::unlimited())
            .unwrap();
        assert!(reg.contains("tenant/a"));
        assert_eq!(reg.len(), 1);
        // Creation is lazy: nothing instantiated yet.
        assert!(!reg.stats()[0].instantiated);

        let binding = reg.bind("tenant/a").unwrap();
        let mut session = binding.register(HandlePolicy::default());
        binding.admit_insert(5).unwrap();
        session.insert(5, 50);
        binding.admit_removal().unwrap();
        assert_eq!(session.delete_min(), Some((5, 50)));
        binding.note_removed(1);
        binding.publish_stats(session.stats());
        drop(session);
        drop(binding);

        let snap = &reg.stats()[0];
        assert!(snap.instantiated);
        assert_eq!(snap.totals.inserts, 1);
        assert_eq!(snap.totals.removals, 1);
        assert_eq!(snap.sessions_total, 1);
        assert_eq!(snap.sessions_live, 0);

        reg.drop_queue("tenant/a").unwrap();
        assert!(!reg.contains("tenant/a"));
        assert_eq!(
            reg.drop_queue("tenant/a"),
            Err(RegistryError::NotFound("tenant/a".to_string()))
        );
        // History survives in the retired roll-up.
        assert_eq!(reg.retired_totals().inserts, 1);
        // The name is immediately reusable.
        reg.create("tenant/a", mq(), QuotaSpec::unlimited())
            .unwrap();
    }

    #[test]
    fn lazy_instantiation_is_deterministic_per_name() {
        let reg_a = QueueRegistry::new(RegistryConfig::default().with_seed(7));
        let reg_b = QueueRegistry::new(RegistryConfig::default().with_seed(7));
        for reg in [&reg_a, &reg_b] {
            reg.create("q", mq(), QuotaSpec::unlimited()).unwrap();
        }
        let ba = reg_a.bind("q").unwrap();
        let bb = reg_b.bind("q").unwrap();
        assert_eq!(ba.queue().name_dyn(), bb.queue().name_dyn());
    }

    #[test]
    fn namespace_errors_are_typed() {
        let reg = QueueRegistry::new(RegistryConfig::default().with_max_queues(2));
        assert!(matches!(
            reg.create("", mq(), QuotaSpec::unlimited()),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(
            reg.create("no spaces", mq(), QuotaSpec::unlimited()),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(
            reg.create(&"x".repeat(MAX_NAME_LEN + 1), mq(), QuotaSpec::unlimited()),
            Err(RegistryError::BadName(_))
        ));
        reg.create("a", mq(), QuotaSpec::unlimited()).unwrap();
        assert_eq!(
            reg.create("a", mq(), QuotaSpec::unlimited()),
            Err(RegistryError::Exists("a".to_string()))
        );
        reg.create("b", mq(), QuotaSpec::unlimited()).unwrap();
        assert_eq!(
            reg.create("c", mq(), QuotaSpec::unlimited()),
            Err(RegistryError::Full { limit: 2 })
        );
        assert!(matches!(
            reg.bind("missing"),
            Err(RegistryError::NotFound(_))
        ));
    }

    #[test]
    fn session_quota_bounds_concurrent_bindings() {
        let reg = QueueRegistry::default();
        reg.create("q", mq(), QuotaSpec::unlimited().with_max_sessions(2))
            .unwrap();
        let b1 = reg.bind("q").unwrap();
        let _b2 = reg.bind("q").unwrap();
        assert_eq!(
            reg.bind("q").map(drop),
            Err(RegistryError::SessionLimit {
                name: "q".to_string(),
                limit: 2
            }),
            "third bind refused"
        );
        drop(b1);
        // Releasing a binding frees its quota slot.
        let _b3 = reg.bind("q").unwrap();
    }

    #[test]
    fn inflight_quota_refuses_then_recovers_on_removal() {
        let reg = QueueRegistry::default();
        reg.create("q", mq(), QuotaSpec::unlimited().with_max_inflight(2))
            .unwrap();
        let b = reg.bind("q").unwrap();
        b.admit_insert(1).unwrap();
        b.admit_insert(2).unwrap();
        assert_eq!(b.admit_insert(3), Err(Refusal::InFlight));
        // Removals do not consult the in-flight quota...
        b.admit_removal().unwrap();
        // ...and crediting one removal frees one insert.
        b.note_removed(1);
        b.admit_insert(3).unwrap();
        assert_eq!(b.snapshot().totals.refusals, 1);
    }

    #[test]
    fn rate_quota_sheds_background_before_urgent() {
        let reg = QueueRegistry::default();
        // 10 tokens of burst; keys >= 100 are background and must leave 5
        // tokens of urgent reserve.
        reg.create(
            "q",
            mq(),
            QuotaSpec::unlimited()
                .with_rate(1, 10)
                .with_shed_key_bound(100),
        )
        .unwrap();
        let b = reg.bind("q").unwrap();
        // Background inserts are admitted down to the reserve...
        let mut background_ok = 0;
        loop {
            match b.admit_insert(100) {
                Ok(()) => background_ok += 1,
                Err(Refusal::Rate { background: true }) => break,
                other => panic!("unexpected {other:?}"),
            }
            assert!(background_ok <= 10, "reserve never kicked in");
        }
        assert_eq!(background_ok, 5, "half the burst is urgent reserve");
        // ...while urgent inserts keep going through the reserve.
        let mut urgent_ok = 0;
        loop {
            match b.admit_insert(1) {
                Ok(()) => urgent_ok += 1,
                Err(Refusal::Rate { background: false }) => break,
                other => panic!("unexpected {other:?}"),
            }
            assert!(urgent_ok <= 10, "bucket never drained");
        }
        assert_eq!(urgent_ok, 5, "urgent traffic spends the reserve");
        let snap = b.snapshot();
        assert_eq!(snap.totals.refusals, 2);
    }

    #[test]
    fn rate_refusal_returns_the_inflight_claim() {
        let reg = QueueRegistry::default();
        reg.create(
            "q",
            mq(),
            QuotaSpec::unlimited().with_max_inflight(10).with_rate(1, 2),
        )
        .unwrap();
        let b = reg.bind("q").unwrap();
        b.admit_insert(1).unwrap();
        b.admit_insert(1).unwrap();
        assert!(matches!(b.admit_insert(1), Err(Refusal::Rate { .. })));
        // Two admitted inserts hold two in-flight slots; the refused one
        // holds none — 8 more removals' worth of budget remain.
        b.note_removed(2);
        b.admit_removal().unwrap_err(); // bucket empty: removal shed too
        let snap = b.snapshot();
        assert_eq!(snap.totals.refusals, 2);
    }

    #[test]
    fn dropped_queue_refuses_with_a_tombstone_and_counts_it() {
        let reg = QueueRegistry::default();
        reg.create("q", mq(), QuotaSpec::unlimited()).unwrap();
        let b = reg.bind("q").unwrap();
        b.admit_insert(1).unwrap();
        reg.drop_queue("q").unwrap();
        assert!(b.is_dropped());
        assert_eq!(b.admit_insert(2), Err(Refusal::Dropped));
        assert_eq!(b.admit_removal(), Err(Refusal::Dropped));
        // The binding itself never panics; dropping it releases cleanly.
        drop(b);
    }

    #[test]
    fn closed_sessions_roll_up_into_one_accumulator() {
        let reg = QueueRegistry::default();
        reg.create("q", mq(), QuotaSpec::unlimited()).unwrap();
        for round in 0..100u64 {
            let b = reg.bind("q").unwrap();
            let mut s = b.register(HandlePolicy::default());
            s.insert(round, round);
            b.publish_stats(s.stats());
            drop(s);
            drop(b);
        }
        let snap = &reg.stats()[0];
        assert_eq!(snap.totals.inserts, 100);
        assert_eq!(snap.sessions_total, 100);
        assert_eq!(snap.sessions_live, 0);
        // The roll-up is bounded: the entry's live list is empty, and the
        // closed accumulator is a single HandleStats regardless of churn.
        assert_eq!(reg.bind("q").unwrap().snapshot().sessions_live, 1);
    }

    #[test]
    fn aggregate_is_monotonic_under_concurrent_churn() {
        let reg = QueueRegistry::default();
        reg.create("q", mq(), QuotaSpec::unlimited()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..50u64 {
                        let b = reg.bind("q").unwrap();
                        let mut s = b.register(HandlePolicy::default());
                        s.insert(i, i);
                        b.publish_stats(s.stats());
                        drop(s);
                        drop(b);
                    }
                });
            }
            scope.spawn(|| {
                let mut last = 0u64;
                for _ in 0..200 {
                    let inserts = reg.stats()[0].totals.inserts;
                    assert!(inserts >= last, "aggregate went backwards");
                    last = inserts;
                }
            });
        });
        assert_eq!(reg.stats()[0].totals.inserts, 200);
    }

    #[test]
    fn snapshots_come_back_sorted_by_name() {
        let reg = QueueRegistry::default();
        for name in ["zeta", "alpha", "mid"] {
            reg.create(name, mq(), QuotaSpec::unlimited()).unwrap();
        }
        let names: Vec<String> = reg.stats().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn installed_queues_share_state_with_the_caller() {
        let reg = QueueRegistry::default();
        let queue = mq().build(3);
        {
            let mut h = queue.register_dyn();
            h.insert(9, 90);
        }
        reg.install("default", Arc::clone(&queue), QuotaSpec::unlimited())
            .unwrap();
        let b = reg.bind("default").unwrap();
        let mut s = b.register(HandlePolicy::default());
        assert_eq!(s.delete_min(), Some((9, 90)), "same underlying structure");
        assert_eq!(b.snapshot().backend, "installed");
    }

    #[test]
    fn registry_built_queues_come_up_instrumented() {
        let hub = ObsHub::new();
        let reg = QueueRegistry::default();
        reg.set_obs(Arc::clone(&hub));
        reg.create("tenant/a", mq(), QuotaSpec::unlimited())
            .unwrap();
        let b = reg.bind("tenant/a").unwrap();
        {
            let mut s = b.register(HandlePolicy::default());
            for k in 0..200u64 {
                s.insert(k, k);
            }
            while s.delete_min().is_some() {}
        }
        let snap = hub.metrics().snapshot();
        let ops = snap
            .counter("mq_ops_total", &[("queue", "tenant/a")])
            .expect("the lazily-built backend reports into the hub");
        assert!(ops >= 400, "200 inserts + 200 removals: {ops}");
        assert!(
            snap.histogram("mq_rank_error", &[("queue", "tenant/a")])
                .is_some(),
            "the rank-error probe is registered under the queue's name"
        );
        // Without a hub, the same spec builds uninstrumented — the old
        // behaviour is the no-telemetry baseline.
        let bare = QueueRegistry::default();
        bare.create("tenant/b", mq(), QuotaSpec::unlimited())
            .unwrap();
        let bb = bare.bind("tenant/b").unwrap();
        let mut s = bb.register(HandlePolicy::default());
        s.insert(1, 1);
        assert_eq!(s.delete_min(), Some((1, 1)));
    }

    #[test]
    fn obs_hub_mirrors_refusals_inflight_and_quota_events() {
        let hub = ObsHub::new();
        let reg = QueueRegistry::default();
        reg.set_obs(Arc::clone(&hub));
        reg.create(
            "tenant/a",
            mq(),
            QuotaSpec::unlimited().with_max_inflight(2),
        )
        .unwrap();
        let b = reg.bind("tenant/a").unwrap();
        b.admit_insert(1).unwrap();
        b.admit_insert(2).unwrap();
        assert_eq!(b.admit_insert(3), Err(Refusal::InFlight));
        b.note_external_refusal();
        b.note_removed(1);
        reg.drop_queue("tenant/a").unwrap();
        assert_eq!(b.admit_removal(), Err(Refusal::Dropped));
        reg.note_unbound_refusal();

        let snap = hub.metrics().snapshot();
        let refusal = |cat: &str| {
            snap.counter(
                "registry_refusals_total",
                &[("queue", "tenant/a"), ("category", cat)],
            )
        };
        assert_eq!(refusal("inflight"), Some(1));
        assert_eq!(refusal("external"), Some(1));
        assert_eq!(refusal("dropped"), Some(1));
        assert_eq!(refusal("rate-urgent"), Some(0), "cell exists, untouched");
        assert_eq!(
            snap.gauge("registry_inflight", &[("queue", "tenant/a")]),
            Some(1),
            "two admits minus one removal credit"
        );
        assert_eq!(
            snap.counter("registry_unbound_refusals_total", &[]),
            Some(1)
        );

        // Every refusal left an epoch-stamped event naming the tenant.
        let events: Vec<_> = hub
            .recorder()
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::QuotaRefusal)
            .collect();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.label == "tenant/a"));
        assert_eq!(events[0].fields[0], refusal_category::INFLIGHT);
        assert_eq!(events[0].fields[1], 3, "the refused key rides along");
        assert_eq!(events[0].fields[2], 2, "in-flight load at refusal time");
        assert_eq!(events[1].fields[0], refusal_category::EXTERNAL);
        assert_eq!(events[2].fields[0], refusal_category::DROPPED);
    }

    #[test]
    fn bindings_without_a_hub_record_nothing() {
        let reg = QueueRegistry::default();
        reg.create("q", mq(), QuotaSpec::unlimited()).unwrap();
        let b = reg.bind("q").unwrap();
        b.admit_insert(1).unwrap();
        assert!(reg.obs().is_none());
        // Attaching after a bind leaves that binding unobserved (cells are
        // resolved at bind time) but new bindings pick the hub up.
        let hub = ObsHub::new();
        reg.set_obs(Arc::clone(&hub));
        b.note_external_refusal();
        assert!(hub.metrics().snapshot().counters.is_empty());
        let b2 = reg.bind("q").unwrap();
        b2.note_external_refusal();
        assert_eq!(
            hub.metrics().snapshot().counter(
                "registry_refusals_total",
                &[("queue", "q"), ("category", "external")],
            ),
            Some(1)
        );
    }

    #[test]
    fn name_validation_accepts_the_documented_charset() {
        for good in [
            "a",
            "tenant/queue-1",
            "A_b.c/d-9",
            &"x".repeat(MAX_NAME_LEN),
        ] {
            assert!(valid_name(good), "{good:?}");
        }
        for bad in ["", "é", "a b", "a\nb", &"x".repeat(MAX_NAME_LEN + 1)] {
            assert!(!valid_name(bad), "{bad:?}");
        }
    }
}
