//! # choice-registry — multi-tenant named priority queues
//!
//! One relaxed priority queue per workload stops scaling the moment a
//! second tenant shows up: the (1+β) rank bound is a *per-structure*
//! guarantee, so tenants sharing one MultiQueue also share its relaxation
//! budget, its contention, and its failure modes. This crate gives each
//! tenant its own structure instead, behind a shared namespace:
//!
//! * [`QueueRegistry`] — a bounded namespace of named queues. Each entry
//!   carries a declarative [`BackendSpec`] (which backend, what sizing) and
//!   a [`QuotaSpec`] (resource budget); the structure itself is built
//!   lazily on first use, seeded deterministically per name.
//! * [`QueueBinding`] — one session's claim on a queue: the admission gate
//!   (in-flight quota, token-bucket rate with class-aware shedding, drop
//!   tombstones) plus the session's stats slot. Every refusal is typed
//!   ([`Refusal`]) and counted first-class in the queue's
//!   [`HandleStats::refusals`](choice_pq::HandleStats) — shedding is an
//!   observable outcome, not a silent drop.
//! * Per-queue statistics that stay bounded and monotonic under session
//!   churn: live sessions keep individual slots, closed sessions roll up
//!   into a single accumulator, dropped queues retire into a
//!   registry-level roll-up.
//!
//! The service crate (`choice-wire`) exposes all of this over the wire as
//! protocol v3 (`CreateQueue` / `DropQueue` / `ListQueues` / `UseQueue`);
//! v2 clients transparently operate on the [`DEFAULT_QUEUE`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod spec;

pub use registry::{
    valid_name, QueueBinding, QueueRegistry, QueueSnapshot, Refusal, RegistryConfig, RegistryError,
    DEFAULT_QUEUE, MAX_NAME_LEN, MAX_QUEUES,
};
pub use spec::{BackendSpec, QuotaSpec};
