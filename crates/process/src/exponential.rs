//! The exponential process of Section 4.
//!
//! The proof device of the paper replaces integer labels with real-valued
//! ones: bin `i` generates labels `0 < w₁ < w₂ < …` where consecutive labels
//! differ by independent `Exp(mean = 1/π_i)` increments. Theorem 2 shows the
//! *rank* distribution of this process equals that of the original labelled
//! process, and Theorem 3 bounds the potential `Γ` of its top labels.
//!
//! Two views are provided:
//!
//! * [`ExponentialTopProcess`] — the lazy, infinite-supply view used by the
//!   potential argument: only the label currently on top of each bin is
//!   tracked, and a removal from bin `i` advances its top by a fresh
//!   exponential increment (the paper's `κ_i`). This is what experiment T5
//!   uses to measure `Γ(t)`.
//! * [`ExponentialInsertion`] — the finite-`M` insertion view used by the
//!   rank-equivalence coupling (Theorem 2 / experiment T6): generate all `M`
//!   labels, then convert each to its global rank.

use rank_stats::rng::{RandomSource, Xoshiro256};

use crate::config::ProcessConfig;

/// Lazy exponential process tracking only the top label of each bin.
#[derive(Clone, Debug)]
pub struct ExponentialTopProcess {
    config: ProcessConfig,
    probabilities: Vec<f64>,
    /// Current top label (weight) of each bin.
    tops: Vec<f64>,
    rng: Xoshiro256,
    steps: u64,
    /// Reusable sample buffer for the choice rule.
    scratch: Vec<usize>,
}

impl ExponentialTopProcess {
    /// Creates the process; each bin's initial top label is one exponential
    /// increment above zero, matching the paper's initial state.
    pub fn new(config: ProcessConfig) -> Self {
        let probabilities = config.insertion_probabilities();
        let mut rng = Xoshiro256::seeded(config.seed ^ 0xE4B0_11E7);
        let tops = probabilities
            .iter()
            .map(|&p| rng.next_exponential(1.0 / p))
            .collect();
        Self {
            config,
            probabilities,
            tops,
            rng,
            steps: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.tops.len()
    }

    /// Number of removal steps performed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The top label of each bin.
    pub fn tops(&self) -> &[f64] {
        &self.tops
    }

    /// The insertion probabilities `π_i`.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Performs one removal step under the configured choice rule: the chosen
    /// bin's top label advances by an `Exp(1/π_i)` increment. Returns the
    /// index of the chosen bin.
    pub fn step(&mut self) -> usize {
        let rule = self.config.choice;
        let n = self.tops.len();
        let chosen = {
            let Self {
                tops, rng, scratch, ..
            } = self;
            rule.choose_by_key(rng, n, scratch, |bin| Some(tops[bin]))
                .expect("every bin always has a top label")
        };
        let mean = 1.0 / self.probabilities[chosen];
        self.tops[chosen] += self.rng.next_exponential(mean);
        self.steps += 1;
        chosen
    }

    /// Runs `count` steps.
    pub fn run(&mut self, count: u64) {
        for _ in 0..count {
            self.step();
        }
    }

    /// Mean of the normalised top labels `x_i = w_i / n` (the paper's `µ`).
    pub fn mu(&self) -> f64 {
        let n = self.tops.len() as f64;
        self.tops.iter().map(|&w| w / n).sum::<f64>() / n
    }

    /// The normalised deviations `y_i = w_i/n − µ`, the quantities the
    /// potential functions are built from.
    pub fn deviations(&self) -> Vec<f64> {
        let n = self.tops.len() as f64;
        let mu = self.mu();
        self.tops.iter().map(|&w| w / n - mu).collect()
    }

    /// The spread `w_max − w_min` of the top labels, the quantity bounded by
    /// Lemma 4 (`O(n·(log n + log C)/α)` in expectation).
    pub fn top_spread(&self) -> f64 {
        let max = self.tops.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = self.tops.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }
}

/// Finite-`M` exponential insertion used for the rank-equivalence coupling.
#[derive(Clone, Debug)]
pub struct ExponentialInsertion {
    /// `labels[i]` are bin `i`'s generated real-valued labels, ascending.
    labels: Vec<Vec<f64>>,
}

impl ExponentialInsertion {
    /// Generates `total` labels split across bins in proportion to `π_i`
    /// (each insertion step picks its bin independently with probability
    /// `π_i`, mirroring the original process's insertion step counts), with
    /// bin `i`'s labels spaced by `Exp(1/π_i)` increments.
    pub fn generate(config: &ProcessConfig, total: u64) -> Self {
        let probabilities = config.insertion_probabilities();
        let mut rng = Xoshiro256::seeded(config.seed ^ 0x0E09_11AA);
        let n = probabilities.len();
        // Decide how many labels each bin receives.
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &probabilities {
            acc += p;
            cumulative.push(acc);
        }
        let mut counts = vec![0u64; n];
        for _ in 0..total {
            let u = rng.next_f64();
            let bin = cumulative.partition_point(|&c| c < u).min(n - 1);
            counts[bin] += 1;
        }
        // Generate each bin's cumulative-exponential label sequence.
        let labels = counts
            .iter()
            .zip(probabilities.iter())
            .map(|(&count, &p)| {
                let mean = 1.0 / p;
                let mut w = 0.0;
                (0..count)
                    .map(|_| {
                        w += rng.next_exponential(mean);
                        w
                    })
                    .collect()
            })
            .collect();
        Self { labels }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.labels.len()
    }

    /// Total number of generated labels.
    pub fn total(&self) -> u64 {
        self.labels.iter().map(|l| l.len() as u64).sum()
    }

    /// The raw real-valued labels of each bin (ascending).
    pub fn labels(&self) -> &[Vec<f64>] {
        &self.labels
    }

    /// Converts the real-valued labels to global ranks: returns, per bin, the
    /// ascending sequence of ranks (0-based) its labels occupy among all
    /// generated labels. This is the paper's "replace each label with its rank"
    /// step; Theorem 2 says the distribution of this rank assignment matches
    /// the original process's label placement.
    pub fn rank_sequences(&self) -> Vec<Vec<u64>> {
        // Collect (label, bin) pairs and sort by label; ties are measure-zero.
        let mut all: Vec<(f64, usize)> = Vec::with_capacity(self.total() as usize);
        for (bin, labels) in self.labels.iter().enumerate() {
            for &w in labels {
                all.push((w, bin));
            }
        }
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("labels are finite"));
        let mut sequences = vec![Vec::new(); self.labels.len()];
        for (rank, &(_, bin)) in all.iter().enumerate() {
            sequences[bin].push(rank as u64);
        }
        sequences
    }

    /// For every rank `r`, the bin that holds the label of rank `r`.
    pub fn rank_owners(&self) -> Vec<usize> {
        let mut owners = vec![0usize; self.total() as usize];
        for (bin, ranks) in self.rank_sequences().iter().enumerate() {
            for &r in ranks {
                owners[r as usize] = bin;
            }
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessConfig;

    #[test]
    fn top_process_advances_monotonically() {
        let mut p = ExponentialTopProcess::new(ProcessConfig::new(8).with_seed(1));
        let before = p.tops().to_vec();
        assert!(before.iter().all(|&w| w > 0.0));
        let chosen = p.step();
        let after = p.tops();
        assert!(after[chosen] > before[chosen]);
        for i in 0..8 {
            if i != chosen {
                assert_eq!(after[i], before[i]);
            }
        }
        assert_eq!(p.steps(), 1);
    }

    #[test]
    fn two_choice_keeps_tops_close_together() {
        // Theorem 3 / Lemma 4: the spread of the tops stays O(n log n) for
        // two-choice, while single-choice lets it wander like sqrt(t)·n.
        let n = 32;
        let steps = 200_000;
        let mut two = ExponentialTopProcess::new(ProcessConfig::new(n).with_beta(1.0).with_seed(5));
        let mut one = ExponentialTopProcess::new(ProcessConfig::new(n).with_beta(0.0).with_seed(5));
        two.run(steps);
        one.run(steps);
        let spread_two = two.top_spread();
        let spread_one = one.top_spread();
        assert!(
            spread_two < spread_one,
            "two-choice spread {spread_two} should beat single-choice {spread_one}"
        );
        // Spread is in label units; one removal advances ~n on average, so
        // O(n log n) spread means a few hundred here. Allow wide slack.
        assert!(
            spread_two < 20.0 * (n as f64) * (n as f64).ln(),
            "two-choice spread {spread_two} is not O(n log n)-ish"
        );
    }

    #[test]
    fn d_choice_tightens_the_top_spread() {
        // More samples per step push harder towards the minimum top, so the
        // spread shrinks monotonically in d.
        let n = 32;
        let steps = 100_000;
        let mut two = ExponentialTopProcess::new(ProcessConfig::new(n).with_d(2).with_seed(7));
        let mut eight = ExponentialTopProcess::new(ProcessConfig::new(n).with_d(8).with_seed(7));
        two.run(steps);
        eight.run(steps);
        assert!(
            eight.top_spread() < two.top_spread(),
            "8-choice spread {} should beat two-choice spread {}",
            eight.top_spread(),
            two.top_spread()
        );
    }

    #[test]
    fn deviations_sum_to_zero() {
        let mut p = ExponentialTopProcess::new(ProcessConfig::new(16).with_seed(9));
        p.run(10_000);
        let devs = p.deviations();
        let sum: f64 = devs.iter().sum();
        assert!(sum.abs() < 1e-6, "deviations should sum to 0, got {sum}");
        assert!(p.mu() > 0.0);
    }

    #[test]
    fn insertion_counts_follow_probabilities() {
        let cfg = ProcessConfig::new(4)
            .with_bias_weights(vec![4.0, 2.0, 1.0, 1.0])
            .with_seed(3);
        let ins = ExponentialInsertion::generate(&cfg, 80_000);
        assert_eq!(ins.total(), 80_000);
        let counts: Vec<usize> = ins.labels().iter().map(|l| l.len()).collect();
        let total: usize = counts.iter().sum();
        assert_eq!(total, 80_000);
        let frac0 = counts[0] as f64 / total as f64;
        assert!((frac0 - 0.5).abs() < 0.02, "bin 0 fraction {frac0}");
    }

    #[test]
    fn labels_within_a_bin_are_increasing() {
        let cfg = ProcessConfig::new(8).with_seed(17);
        let ins = ExponentialInsertion::generate(&cfg, 5_000);
        for bin in ins.labels() {
            assert!(bin.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn rank_sequences_are_a_partition_of_all_ranks() {
        let cfg = ProcessConfig::new(6).with_seed(23);
        let ins = ExponentialInsertion::generate(&cfg, 1_000);
        let sequences = ins.rank_sequences();
        let mut all: Vec<u64> = sequences.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1_000u64).collect::<Vec<_>>());
        // Each bin's rank sequence must be increasing (labels are increasing).
        for seq in &sequences {
            assert!(seq.windows(2).all(|w| w[0] < w[1]));
        }
        let owners = ins.rank_owners();
        assert_eq!(owners.len(), 1_000);
    }

    #[test]
    fn uniform_insertion_spreads_ranks_evenly() {
        let cfg = ProcessConfig::new(4).with_seed(29);
        let ins = ExponentialInsertion::generate(&cfg, 40_000);
        let owners = ins.rank_owners();
        // Among the first 1000 ranks, each of the 4 bins should own ~250.
        let mut counts = [0u32; 4];
        for &bin in &owners[..1000] {
            counts[bin] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 250.0).abs() < 80.0,
                "rank ownership skewed: {counts:?}"
            );
        }
    }
}
