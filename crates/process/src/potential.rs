//! The potential functions Φ, Ψ and Γ of Section 4.2.
//!
//! For normalised deviations `y_i = w_i/n − µ` and a parameter `α < 1`, the
//! paper defines
//!
//! ```text
//! Φ(t) = Σ_i exp(α·y_i)      Ψ(t) = Σ_i exp(−α·y_i)      Γ(t) = Φ(t) + Ψ(t)
//! ```
//!
//! Theorem 3 states that for suitable `α = Θ(β)` the expectation of `Γ(t)` is
//! `O(n)` at every step `t`, which is the engine behind both rank bounds. This
//! module computes the potentials for a given deviation vector and provides
//! the parameter plumbing (`ε = β/16`, `δ` from equation (1), the `ε ≥ δ`
//! assumption (2)) so experiment T5 can report whether the empirical
//! trajectory stays within a constant multiple of `n` and whether it tends to
//! shrink whenever it exceeds that threshold (the supermartingale property of
//! Lemma 2).

/// The analysis parameters of Section 4.2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PotentialParams {
    /// The exponent scale `α` (the paper sets `α = Θ(β)`, `α < 1`).
    pub alpha: f64,
    /// The two-choice probability `β`.
    pub beta: f64,
    /// The insertion bias bound `γ`.
    pub gamma: f64,
    /// The constant `c ≥ 2` of equation (1).
    pub c: f64,
}

impl PotentialParams {
    /// Builds parameters from `β` and `γ` following the paper's choices:
    /// `c = 2` and `α = β/16` (a concrete instance of `α = Θ(β)` that keeps
    /// `ε ≥ δ` for small `γ`).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not in `(0, 1]` or `gamma` not in `[0, 1)`.
    pub fn from_beta_gamma(beta: f64, gamma: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
        Self {
            alpha: beta / 16.0,
            beta,
            gamma,
            c: 2.0,
        }
    }

    /// The paper's `ε = β/16`.
    pub fn epsilon(&self) -> f64 {
        self.beta / 16.0
    }

    /// The paper's `δ` from equation (1):
    /// `1 + δ = (1 + γ + cα(1+γ)²) / (1 − γ − cα(1+γ)²)`.
    ///
    /// Returns infinity if the denominator is non-positive (parameters far
    /// outside the analysed regime).
    pub fn delta(&self) -> f64 {
        let bump = self.c * self.alpha * (1.0 + self.gamma).powi(2);
        let denom = 1.0 - self.gamma - bump;
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        (1.0 + self.gamma + bump) / denom - 1.0
    }

    /// Whether assumption (2), `ε ≥ δ`, holds for these parameters — the
    /// regime in which Theorem 3 applies. The paper notes the empirical
    /// inflection around `β ≈ 0.5` in Figure 2 may correspond to this
    /// assumption breaking down.
    pub fn assumption_holds(&self) -> bool {
        self.epsilon() >= self.delta()
    }
}

/// The value of the potentials at one point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PotentialSnapshot {
    /// Φ — penalises tops far *above* the mean.
    pub phi: f64,
    /// Ψ — penalises tops far *below* the mean.
    pub psi: f64,
    /// Γ = Φ + Ψ.
    pub gamma_total: f64,
    /// Γ / n, the quantity Theorem 3 bounds by a constant in expectation.
    pub gamma_per_bin: f64,
}

impl PotentialSnapshot {
    /// Computes the potentials for a vector of normalised deviations
    /// `y_i = w_i/n − µ` with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `deviations` is empty or `alpha` is not finite and positive.
    pub fn compute(deviations: &[f64], alpha: f64) -> Self {
        assert!(!deviations.is_empty(), "need at least one bin");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let mut phi = 0.0;
        let mut psi = 0.0;
        for &y in deviations {
            phi += (alpha * y).exp();
            psi += (-alpha * y).exp();
        }
        let gamma_total = phi + psi;
        Self {
            phi,
            psi,
            gamma_total,
            gamma_per_bin: gamma_total / deviations.len() as f64,
        }
    }
}

/// Statistics over a sampled Γ trajectory: used by experiment T5 to report the
/// empirical counterpart of Theorem 3 and of the Lemma 2 supermartingale
/// behaviour.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PotentialTrajectory {
    /// Sampled `(step, Γ/n)` points.
    pub samples: Vec<(u64, f64)>,
}

impl PotentialTrajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, step: u64, gamma_per_bin: f64) {
        self.samples.push((step, gamma_per_bin));
    }

    /// Mean of Γ/n over all samples.
    pub fn mean_gamma_per_bin(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, g)| g).sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum of Γ/n over all samples.
    pub fn max_gamma_per_bin(&self) -> f64 {
        self.samples.iter().map(|&(_, g)| g).fold(0.0, f64::max)
    }

    /// The fraction of *consecutive sample pairs* where the potential was
    /// above `threshold` and did not decrease — the empirical violation rate
    /// of the supermartingale drift of Lemma 2. For a healthy two-choice run
    /// this should be well below one half.
    pub fn drift_violation_rate(&self, threshold: f64) -> f64 {
        let mut above = 0u64;
        let mut violated = 0u64;
        for pair in self.samples.windows(2) {
            let (_, g0) = pair[0];
            let (_, g1) = pair[1];
            if g0 > threshold {
                above += 1;
                if g1 >= g0 {
                    violated += 1;
                }
            }
        }
        if above == 0 {
            0.0
        } else {
            violated as f64 / above as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessConfig;
    use crate::exponential::ExponentialTopProcess;

    #[test]
    fn balanced_deviations_give_minimum_potential() {
        // With all deviations 0, Φ = Ψ = n and Γ/n = 2, the global minimum.
        let snap = PotentialSnapshot::compute(&[0.0; 10], 0.1);
        assert!((snap.phi - 10.0).abs() < 1e-12);
        assert!((snap.psi - 10.0).abs() < 1e-12);
        assert!((snap.gamma_per_bin - 2.0).abs() < 1e-12);
        // Any imbalance strictly increases Γ (convexity).
        let skewed = PotentialSnapshot::compute(&[5.0, -5.0, 0.0, 0.0], 0.1);
        let balanced = PotentialSnapshot::compute(&[0.0; 4], 0.1);
        assert!(skewed.gamma_total > balanced.gamma_total);
    }

    #[test]
    fn phi_and_psi_are_asymmetric() {
        // A single far-above-average bin inflates Φ but barely moves Ψ.
        let snap = PotentialSnapshot::compute(&[30.0, -10.0, -10.0, -10.0], 0.2);
        assert!(snap.phi > snap.psi);
    }

    #[test]
    #[should_panic(expected = "need at least one bin")]
    fn empty_deviation_vector_panics() {
        let _ = PotentialSnapshot::compute(&[], 0.1);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn bad_alpha_panics() {
        let _ = PotentialSnapshot::compute(&[0.0], 0.0);
    }

    #[test]
    fn parameter_relationships() {
        let params = PotentialParams::from_beta_gamma(1.0, 0.0);
        assert!((params.alpha - 1.0 / 16.0).abs() < 1e-12);
        assert!((params.epsilon() - 1.0 / 16.0).abs() < 1e-12);
        // With gamma = 0: 1 + δ = (1 + cα)/(1 − cα) so δ = 2cα/(1−cα).
        let expected_delta = 2.0 * 2.0 * params.alpha / (1.0 - 2.0 * params.alpha);
        assert!((params.delta() - expected_delta).abs() < 1e-12);
    }

    #[test]
    fn assumption_breaks_for_large_gamma() {
        // β = 1, γ = 0 is comfortably inside the regime … with the concrete
        // α = β/16 the ε ≥ δ inequality is actually tight-ish; what we check
        // here is monotonicity: increasing γ can only make δ larger, so once
        // the assumption fails it keeps failing.
        let deltas: Vec<f64> = [0.0, 0.1, 0.3, 0.6]
            .iter()
            .map(|&g| PotentialParams::from_beta_gamma(0.5, g).delta())
            .collect();
        assert!(deltas.windows(2).all(|w| w[0] <= w[1]));
        assert!(!PotentialParams::from_beta_gamma(0.5, 0.6).assumption_holds());
    }

    #[test]
    #[should_panic(expected = "beta must be in (0, 1]")]
    fn zero_beta_params_panic() {
        let _ = PotentialParams::from_beta_gamma(0.0, 0.0);
    }

    #[test]
    fn trajectory_statistics() {
        let mut traj = PotentialTrajectory::new();
        traj.push(0, 2.0);
        traj.push(1, 3.0);
        traj.push(2, 10.0);
        traj.push(3, 6.0);
        traj.push(4, 7.0);
        assert!((traj.mean_gamma_per_bin() - 5.6).abs() < 1e-12);
        assert_eq!(traj.max_gamma_per_bin(), 10.0);
        // Pairs with first element above threshold 5: (10,6) decreased,
        // (6,7) increased -> violation rate 1/2.
        assert!((traj.drift_violation_rate(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(traj.drift_violation_rate(100.0), 0.0);
    }

    #[test]
    fn empty_trajectory() {
        let traj = PotentialTrajectory::new();
        assert_eq!(traj.mean_gamma_per_bin(), 0.0);
        assert_eq!(traj.max_gamma_per_bin(), 0.0);
        assert_eq!(traj.drift_violation_rate(1.0), 0.0);
    }

    #[test]
    fn gamma_stays_linear_in_n_for_two_choice() {
        // Empirical Theorem 3: run the exponential top process and check the
        // sampled Γ/n stays bounded by a modest constant.
        let n = 32;
        let params = PotentialParams::from_beta_gamma(1.0, 0.0);
        let mut process =
            ExponentialTopProcess::new(ProcessConfig::new(n).with_beta(1.0).with_seed(7));
        let mut traj = PotentialTrajectory::new();
        for step in 0..50_000u64 {
            process.step();
            if step % 500 == 0 {
                let snap = PotentialSnapshot::compute(&process.deviations(), params.alpha);
                traj.push(step, snap.gamma_per_bin);
            }
        }
        let mean = traj.mean_gamma_per_bin();
        let max = traj.max_gamma_per_bin();
        assert!(mean < 10.0, "mean Γ/n = {mean} should be a small constant");
        assert!(max < 50.0, "max Γ/n = {max} should stay bounded");
    }

    #[test]
    fn gamma_grows_for_single_choice() {
        // The same measurement under single-choice removals: deviations drift
        // like a random walk, so Γ/n grows with t (no supermartingale).
        let n = 32;
        let alpha = 1.0 / 16.0;
        let mut process =
            ExponentialTopProcess::new(ProcessConfig::new(n).with_beta(0.0).with_seed(7));
        let early = {
            process.run(5_000);
            PotentialSnapshot::compute(&process.deviations(), alpha).gamma_per_bin
        };
        let late = {
            process.run(200_000);
            PotentialSnapshot::compute(&process.deviations(), alpha).gamma_per_bin
        };
        assert!(
            late > early,
            "single-choice Γ/n should grow: early {early}, late {late}"
        );
    }
}
