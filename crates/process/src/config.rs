//! Configuration of the sequential and exponential processes.
//!
//! The paper's process has three knobs (Section 3):
//!
//! * the number of queues `n`,
//! * the two-choice probability `β ∈ (0, 1]` (with `β = 0` degenerating into
//!   the divergent single-choice process of Appendix B), and
//! * the insertion bias: queue `i` is chosen with probability `π_i`, where
//!   `1 − γ ≤ 1/(n·π_i) ≤ 1 + γ` for a constant `γ ∈ (0, 1)`.
//!
//! [`ProcessConfig`] is a builder capturing all three plus the RNG seed.

use rank_stats::rng::{RandomSource, SplitMix64};

/// How removals choose their victim queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RemovalRule {
    /// Always remove from a single uniformly random queue (`β = 0`); this is
    /// the divergent process of Theorem 6.
    SingleChoice,
    /// Always compare two uniformly random queues and remove the smaller top
    /// label (`β = 1`); the plain MultiQueue rule.
    TwoChoice,
    /// With probability `β` act like [`RemovalRule::TwoChoice`], otherwise
    /// like [`RemovalRule::SingleChoice`] — the paper's (1 + β) process.
    OnePlusBeta(f64),
}

impl RemovalRule {
    /// The effective two-choice probability `β` of this rule.
    pub fn beta(&self) -> f64 {
        match self {
            RemovalRule::SingleChoice => 0.0,
            RemovalRule::TwoChoice => 1.0,
            RemovalRule::OnePlusBeta(beta) => *beta,
        }
    }

    /// Builds the rule corresponding to a β value, normalising the endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn from_beta(beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        if beta == 0.0 {
            RemovalRule::SingleChoice
        } else if beta == 1.0 {
            RemovalRule::TwoChoice
        } else {
            RemovalRule::OnePlusBeta(beta)
        }
    }
}

/// The insertion distribution over queues.
#[derive(Clone, Debug, PartialEq)]
pub enum BiasSpec {
    /// Uniform insertion (`γ = 0`).
    Uniform,
    /// The paper's bounded bias: each `π_i` is drawn once (from the config
    /// seed) uniformly in `[(1 − γ)/n, (1 + γ)/n]` and then normalised, so the
    /// realised bias bound is at most `γ`.
    BoundedRandom {
        /// The bias bound `γ ∈ [0, 1)`.
        gamma: f64,
    },
    /// Explicit per-queue weights (need not sum to one; they are normalised).
    Explicit(Vec<f64>),
}

impl BiasSpec {
    /// Materialises the per-queue insertion probabilities `π_1..π_n`
    /// (summing to 1), using `seed` for the random variants.
    ///
    /// # Panics
    ///
    /// Panics if an explicit weight vector has the wrong length, contains a
    /// negative/non-finite weight, or sums to zero; or if `gamma` is outside
    /// `[0, 1)`.
    pub fn probabilities(&self, n: usize, seed: u64) -> Vec<f64> {
        assert!(n > 0, "need at least one queue");
        match self {
            BiasSpec::Uniform => vec![1.0 / n as f64; n],
            BiasSpec::BoundedRandom { gamma } => {
                assert!(
                    (0.0..1.0).contains(gamma),
                    "gamma must be in [0, 1), got {gamma}"
                );
                let mut rng = SplitMix64::seeded(seed ^ 0xB1A5_B1A5);
                let raw: Vec<f64> = (0..n)
                    .map(|_| {
                        let u = rng.next_u64() as f64 / u64::MAX as f64;
                        (1.0 + gamma * (2.0 * u - 1.0)) / n as f64
                    })
                    .collect();
                normalise(&raw)
            }
            BiasSpec::Explicit(weights) => {
                assert_eq!(weights.len(), n, "need one weight per queue");
                for &w in weights {
                    assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
                }
                normalise(weights)
            }
        }
    }

    /// The worst-case bias bound γ realised by the given probability vector:
    /// the smallest γ such that `1 − γ ≤ 1/(n·π_i) ≤ 1 + γ` for every `i`.
    ///
    /// Returns infinity if any probability is zero.
    pub fn realized_gamma(probabilities: &[f64]) -> f64 {
        let n = probabilities.len() as f64;
        probabilities
            .iter()
            .map(|&p| {
                if p <= 0.0 {
                    f64::INFINITY
                } else {
                    (1.0 / (n * p) - 1.0).abs()
                }
            })
            .fold(0.0, f64::max)
    }
}

fn normalise(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    weights.iter().map(|&w| w / total).collect()
}

/// Full configuration of a sequential / exponential process run.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessConfig {
    /// Number of queues `n`.
    pub queues: usize,
    /// Removal rule (β).
    pub removal: RemovalRule,
    /// Insertion distribution.
    pub bias: BiasSpec,
    /// RNG seed; every run with the same config is identical.
    pub seed: u64,
}

impl ProcessConfig {
    /// Creates a configuration with `queues` queues, two-choice removals,
    /// uniform insertion and a fixed default seed.
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0`.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        Self {
            queues,
            removal: RemovalRule::TwoChoice,
            bias: BiasSpec::Uniform,
            seed: 0xC0FF_EE00,
        }
    }

    /// Sets the two-choice probability β.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.removal = RemovalRule::from_beta(beta);
        self
    }

    /// Sets the removal rule directly.
    pub fn with_removal(mut self, rule: RemovalRule) -> Self {
        self.removal = rule;
        self
    }

    /// Uses the paper's bounded-random insertion bias with bound `gamma`.
    pub fn with_bias_gamma(mut self, gamma: f64) -> Self {
        self.bias = BiasSpec::BoundedRandom { gamma };
        self
    }

    /// Uses explicit insertion weights.
    pub fn with_bias_weights(mut self, weights: Vec<f64>) -> Self {
        self.bias = BiasSpec::Explicit(weights);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialises the insertion probability vector of this configuration.
    pub fn insertion_probabilities(&self) -> Vec<f64> {
        self.bias.probabilities(self.queues, self.seed)
    }

    /// The effective β of this configuration.
    pub fn beta(&self) -> f64 {
        self.removal.beta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_rule_beta_roundtrip() {
        assert_eq!(RemovalRule::from_beta(0.0), RemovalRule::SingleChoice);
        assert_eq!(RemovalRule::from_beta(1.0), RemovalRule::TwoChoice);
        assert_eq!(RemovalRule::from_beta(0.5), RemovalRule::OnePlusBeta(0.5));
        assert_eq!(RemovalRule::SingleChoice.beta(), 0.0);
        assert_eq!(RemovalRule::TwoChoice.beta(), 1.0);
        assert_eq!(RemovalRule::OnePlusBeta(0.25).beta(), 0.25);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn invalid_beta_panics() {
        let _ = RemovalRule::from_beta(1.2);
    }

    #[test]
    fn uniform_probabilities_sum_to_one() {
        let p = BiasSpec::Uniform.probabilities(10, 0);
        assert_eq!(p.len(), 10);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| (x - 0.1).abs() < 1e-12));
        assert_eq!(BiasSpec::realized_gamma(&p), 0.0);
    }

    #[test]
    fn bounded_random_respects_gamma() {
        let gamma = 0.3;
        let p = BiasSpec::BoundedRandom { gamma }.probabilities(64, 99);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let realized = BiasSpec::realized_gamma(&p);
        // Normalisation can stretch the bound slightly, but it stays well
        // within 2γ/(1-γ).
        assert!(
            realized <= 2.0 * gamma / (1.0 - gamma) + 1e-9,
            "realised gamma {realized} too large"
        );
        assert!(realized > 0.0, "bias should not be exactly uniform");
    }

    #[test]
    fn bounded_random_is_deterministic_per_seed() {
        let spec = BiasSpec::BoundedRandom { gamma: 0.5 };
        assert_eq!(spec.probabilities(8, 1), spec.probabilities(8, 1));
        assert_ne!(spec.probabilities(8, 1), spec.probabilities(8, 2));
    }

    #[test]
    fn explicit_weights_are_normalised() {
        let p = BiasSpec::Explicit(vec![1.0, 1.0, 2.0]).probabilities(3, 0);
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need one weight per queue")]
    fn explicit_weight_length_mismatch_panics() {
        let _ = BiasSpec::Explicit(vec![1.0]).probabilities(2, 0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0, 1)")]
    fn invalid_gamma_panics() {
        let _ = BiasSpec::BoundedRandom { gamma: 1.0 }.probabilities(4, 0);
    }

    #[test]
    fn realized_gamma_handles_zero_probability() {
        assert!(BiasSpec::realized_gamma(&[0.0, 1.0]).is_infinite());
    }

    #[test]
    fn config_builder_chains() {
        let cfg = ProcessConfig::new(16)
            .with_beta(0.5)
            .with_bias_gamma(0.1)
            .with_seed(42);
        assert_eq!(cfg.queues, 16);
        assert_eq!(cfg.beta(), 0.5);
        assert_eq!(cfg.seed, 42);
        let p = cfg.insertion_probabilities();
        assert_eq!(p.len(), 16);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least one queue")]
    fn zero_queues_panics() {
        let _ = ProcessConfig::new(0);
    }
}
