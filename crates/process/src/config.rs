//! Configuration of the sequential and exponential processes.
//!
//! The paper's process has three knobs (Section 3):
//!
//! * the number of queues `n`,
//! * the two-choice probability `β ∈ (0, 1]` (with `β = 0` degenerating into
//!   the divergent single-choice process of Appendix B), and
//! * the insertion bias: queue `i` is chosen with probability `π_i`, where
//!   `1 − γ ≤ 1/(n·π_i) ≤ 1 + γ` for a constant `γ ∈ (0, 1)`.
//!
//! [`ProcessConfig`] is a builder capturing all three plus the RNG seed. The
//! removal rule is the workspace-wide [`ChoiceRule`] — the *same* type the
//! concurrent `choice_pq::MultiQueue` is configured with — so a scenario's
//! theory run and its real-queue run are parameterised by one value. Beyond
//! the paper's three rules, [`ChoiceRule::DChoice`] generalises removals to
//! the best of any `d ≥ 1` sampled queues.

use rank_stats::rng::{RandomSource, SplitMix64};

pub use rank_stats::choice::ChoiceRule;

/// The former process-local removal-rule enum; `ChoiceRule` carries the same
/// variants (`SingleChoice`, `TwoChoice`, `OnePlusBeta`) plus the general
/// `DChoice(d)`.
#[deprecated(
    since = "0.3.0",
    note = "use rank_stats::choice::ChoiceRule (re-exported as \
            choice_process::ChoiceRule), which the concurrent queue shares"
)]
pub type RemovalRule = ChoiceRule;

/// The insertion distribution over queues.
#[derive(Clone, Debug, PartialEq)]
pub enum BiasSpec {
    /// Uniform insertion (`γ = 0`).
    Uniform,
    /// The paper's bounded bias: each `π_i` is drawn once (from the config
    /// seed) uniformly in `[(1 − γ)/n, (1 + γ)/n]` and then normalised, so the
    /// realised bias bound is at most `γ`.
    BoundedRandom {
        /// The bias bound `γ ∈ [0, 1)`.
        gamma: f64,
    },
    /// Explicit per-queue weights (need not sum to one; they are normalised).
    Explicit(Vec<f64>),
}

impl BiasSpec {
    /// Materialises the per-queue insertion probabilities `π_1..π_n`
    /// (summing to 1), using `seed` for the random variants.
    ///
    /// # Panics
    ///
    /// Panics if an explicit weight vector has the wrong length, contains a
    /// negative/non-finite weight, or sums to zero; or if `gamma` is outside
    /// `[0, 1)`.
    pub fn probabilities(&self, n: usize, seed: u64) -> Vec<f64> {
        assert!(n > 0, "need at least one queue");
        match self {
            BiasSpec::Uniform => vec![1.0 / n as f64; n],
            BiasSpec::BoundedRandom { gamma } => {
                assert!(
                    (0.0..1.0).contains(gamma),
                    "gamma must be in [0, 1), got {gamma}"
                );
                let mut rng = SplitMix64::seeded(seed ^ 0xB1A5_B1A5);
                let raw: Vec<f64> = (0..n)
                    .map(|_| {
                        let u = rng.next_u64() as f64 / u64::MAX as f64;
                        (1.0 + gamma * (2.0 * u - 1.0)) / n as f64
                    })
                    .collect();
                normalise(&raw)
            }
            BiasSpec::Explicit(weights) => {
                assert_eq!(weights.len(), n, "need one weight per queue");
                for &w in weights {
                    assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
                }
                normalise(weights)
            }
        }
    }

    /// The worst-case bias bound γ realised by the given probability vector:
    /// the smallest γ such that `1 − γ ≤ 1/(n·π_i) ≤ 1 + γ` for every `i`.
    ///
    /// Returns infinity if any probability is zero.
    pub fn realized_gamma(probabilities: &[f64]) -> f64 {
        let n = probabilities.len() as f64;
        probabilities
            .iter()
            .map(|&p| {
                if p <= 0.0 {
                    f64::INFINITY
                } else {
                    (1.0 / (n * p) - 1.0).abs()
                }
            })
            .fold(0.0, f64::max)
    }
}

fn normalise(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    weights.iter().map(|&w| w / total).collect()
}

/// Full configuration of a sequential / exponential process run.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessConfig {
    /// Number of queues `n`.
    pub queues: usize,
    /// Removal rule: which queues a removal samples (β / d). Shared with the
    /// concurrent queue (`choice_pq::MultiQueueConfig::choice`).
    pub choice: ChoiceRule,
    /// Insertion distribution.
    pub bias: BiasSpec,
    /// RNG seed; every run with the same config is identical.
    pub seed: u64,
}

impl ProcessConfig {
    /// Creates a configuration with `queues` queues, two-choice removals,
    /// uniform insertion and a fixed default seed.
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0`.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        Self {
            queues,
            choice: ChoiceRule::TwoChoice,
            bias: BiasSpec::Uniform,
            seed: 0xC0FF_EE00,
        }
    }

    /// Sets the two-choice probability β (endpoints normalised to the
    /// single-/two-choice rules).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn with_beta(self, beta: f64) -> Self {
        self.with_choice(ChoiceRule::from_beta(beta))
    }

    /// Sets a uniform `d`-choice removal rule.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn with_d(self, d: usize) -> Self {
        self.with_choice(ChoiceRule::uniform(d))
    }

    /// Sets the removal rule directly.
    ///
    /// # Panics
    ///
    /// Panics if the rule is invalid (see [`ChoiceRule::validate`]).
    pub fn with_choice(mut self, choice: ChoiceRule) -> Self {
        choice.validate();
        self.choice = choice;
        self
    }

    /// Uses the paper's bounded-random insertion bias with bound `gamma`.
    pub fn with_bias_gamma(mut self, gamma: f64) -> Self {
        self.bias = BiasSpec::BoundedRandom { gamma };
        self
    }

    /// Uses explicit insertion weights.
    pub fn with_bias_weights(mut self, weights: Vec<f64>) -> Self {
        self.bias = BiasSpec::Explicit(weights);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialises the insertion probability vector of this configuration.
    pub fn insertion_probabilities(&self) -> Vec<f64> {
        self.bias.probabilities(self.queues, self.seed)
    }

    /// The effective β of this configuration (see [`ChoiceRule::beta`]).
    pub fn beta(&self) -> f64 {
        self.choice.beta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_rule_beta_roundtrip() {
        assert_eq!(ChoiceRule::from_beta(0.0), ChoiceRule::SingleChoice);
        assert_eq!(ChoiceRule::from_beta(1.0), ChoiceRule::TwoChoice);
        assert_eq!(ChoiceRule::from_beta(0.5), ChoiceRule::OnePlusBeta(0.5));
        assert_eq!(ChoiceRule::SingleChoice.beta(), 0.0);
        assert_eq!(ChoiceRule::TwoChoice.beta(), 1.0);
        assert_eq!(ChoiceRule::OnePlusBeta(0.25).beta(), 0.25);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn invalid_beta_panics() {
        let _ = ChoiceRule::from_beta(1.2);
    }

    #[test]
    fn d_choice_config_builder() {
        let cfg = ProcessConfig::new(8).with_d(4);
        assert_eq!(cfg.choice, ChoiceRule::DChoice(4));
        assert_eq!(cfg.beta(), 1.0);
        assert_eq!(ProcessConfig::new(8).with_d(1).beta(), 0.0);
    }

    #[test]
    fn uniform_probabilities_sum_to_one() {
        let p = BiasSpec::Uniform.probabilities(10, 0);
        assert_eq!(p.len(), 10);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| (x - 0.1).abs() < 1e-12));
        assert_eq!(BiasSpec::realized_gamma(&p), 0.0);
    }

    #[test]
    fn bounded_random_respects_gamma() {
        let gamma = 0.3;
        let p = BiasSpec::BoundedRandom { gamma }.probabilities(64, 99);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let realized = BiasSpec::realized_gamma(&p);
        // Normalisation can stretch the bound slightly, but it stays well
        // within 2γ/(1-γ).
        assert!(
            realized <= 2.0 * gamma / (1.0 - gamma) + 1e-9,
            "realised gamma {realized} too large"
        );
        assert!(realized > 0.0, "bias should not be exactly uniform");
    }

    #[test]
    fn bounded_random_is_deterministic_per_seed() {
        let spec = BiasSpec::BoundedRandom { gamma: 0.5 };
        assert_eq!(spec.probabilities(8, 1), spec.probabilities(8, 1));
        assert_ne!(spec.probabilities(8, 1), spec.probabilities(8, 2));
    }

    #[test]
    fn explicit_weights_are_normalised() {
        let p = BiasSpec::Explicit(vec![1.0, 1.0, 2.0]).probabilities(3, 0);
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need one weight per queue")]
    fn explicit_weight_length_mismatch_panics() {
        let _ = BiasSpec::Explicit(vec![1.0]).probabilities(2, 0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0, 1)")]
    fn invalid_gamma_panics() {
        let _ = BiasSpec::BoundedRandom { gamma: 1.0 }.probabilities(4, 0);
    }

    #[test]
    fn realized_gamma_handles_zero_probability() {
        assert!(BiasSpec::realized_gamma(&[0.0, 1.0]).is_infinite());
    }

    #[test]
    fn config_builder_chains() {
        let cfg = ProcessConfig::new(16)
            .with_beta(0.5)
            .with_bias_gamma(0.1)
            .with_seed(42);
        assert_eq!(cfg.queues, 16);
        assert_eq!(cfg.beta(), 0.5);
        assert_eq!(cfg.seed, 42);
        let p = cfg.insertion_probabilities();
        assert_eq!(p.len(), 16);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least one queue")]
    fn zero_queues_panics() {
        let _ = ProcessConfig::new(0);
    }
}
