//! The sequential labelled (1 + β) process of Section 3.
//!
//! Elements with strictly increasing labels are inserted into `n` queues
//! (queue `i` with probability `π_i`); removals follow the (1 + β) rule and
//! are charged the exact rank of the removed label among all labels still
//! present, computed with an order-statistics set.
//!
//! Two execution shapes are supported, both *prefixed* in the paper's sense
//! (removals essentially never see empty queues):
//!
//! * **prefill then drain** — insert a large buffer up front and only remove
//!   (the shape used in the paper's Section 3 discussion and in Figure 2); and
//! * **alternating** — one insert per removal after a prefill, keeping the
//!   population constant so arbitrarily long executions fit in memory (the
//!   shape used for the "for any time t" claims, T1–T4).

use std::collections::VecDeque;

use rank_stats::order::OrderStatisticsSet;
use rank_stats::rng::{RandomSource, Xoshiro256};

use crate::config::ProcessConfig;
use crate::metrics::{RankCostAccumulator, RankCostSummary, RankTimeSeries};

/// One removal event of the sequential process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemovalRecord {
    /// The label that was removed.
    pub label: u64,
    /// The queue it was removed from.
    pub queue: usize,
    /// Its rank among all labels present at the moment of removal (1-based).
    pub rank: u64,
}

/// The sequential labelled process.
#[derive(Clone, Debug)]
pub struct SequentialProcess {
    config: ProcessConfig,
    /// Cumulative insertion probabilities for queue selection.
    cumulative: Vec<f64>,
    /// Per-queue labels, ascending (labels are inserted in increasing order,
    /// so pushing to the back keeps each queue sorted).
    queues: Vec<VecDeque<u64>>,
    /// All labels currently present, for exact rank queries.
    present: OrderStatisticsSet,
    next_label: u64,
    removals: u64,
    rng: Xoshiro256,
    /// Reusable sample buffer for the choice rule.
    scratch: Vec<usize>,
}

impl SequentialProcess {
    /// Creates the process described by `config` with empty queues.
    pub fn new(config: ProcessConfig) -> Self {
        let probabilities = config.insertion_probabilities();
        let mut acc = 0.0;
        let cumulative = probabilities
            .iter()
            .map(|&p| {
                acc += p;
                acc
            })
            .collect();
        let rng = Xoshiro256::seeded(config.seed);
        Self {
            queues: vec![VecDeque::new(); config.queues],
            present: OrderStatisticsSet::with_capacity(1024),
            next_label: 0,
            removals: 0,
            cumulative,
            config,
            rng,
            scratch: Vec::new(),
        }
    }

    /// The configuration this process was built from.
    pub fn config(&self) -> &ProcessConfig {
        &self.config
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.queues.len()
    }

    /// Number of labels currently present across all queues.
    pub fn total_present(&self) -> u64 {
        self.present.len()
    }

    /// Number of removals performed so far.
    pub fn removals(&self) -> u64 {
        self.removals
    }

    /// The next label that will be inserted.
    pub fn next_label(&self) -> u64 {
        self.next_label
    }

    /// Per-queue element counts.
    pub fn queue_lengths(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.len()).collect()
    }

    /// The label on top of each queue (`None` for empty queues).
    pub fn top_labels(&self) -> Vec<Option<u64>> {
        self.queues.iter().map(|q| q.front().copied()).collect()
    }

    fn sample_queue(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.queues.len() - 1)
    }

    /// Inserts the next label into a randomly chosen queue; returns
    /// `(label, queue)`.
    pub fn insert(&mut self) -> (u64, usize) {
        let label = self.next_label;
        self.next_label += 1;
        let queue = self.sample_queue();
        self.queues[queue].push_back(label);
        self.present.insert(label);
        (label, queue)
    }

    /// Inserts `count` labels.
    pub fn prefill(&mut self, count: u64) {
        for _ in 0..count {
            self.insert();
        }
    }

    /// Decides which queue the next removal should take from, following the
    /// configured choice rule (single-, two-, `d`-, or (1 + β)-choice).
    /// Sampled empty queues fall through to the other samples; returns `None`
    /// only when the sampled queues are all empty.
    fn choose_removal_queue(&mut self) -> Option<usize> {
        let rule = self.config.choice;
        let n = self.queues.len();
        let Self {
            queues,
            rng,
            scratch,
            ..
        } = self;
        rule.choose_by_key(rng, n, scratch, |q| queues[q].front().copied())
    }

    /// Performs one removal. Returns `None` if the sampled queues were empty
    /// (which the prefixed-execution assumption makes negligibly rare).
    pub fn remove(&mut self) -> Option<RemovalRecord> {
        let queue = self.choose_removal_queue()?;
        let label = self.queues[queue]
            .pop_front()
            .expect("chosen queue is non-empty");
        let rank = self
            .present
            .remove_and_rank(label)
            .expect("label tracked as present");
        self.removals += 1;
        Some(RemovalRecord { label, queue, rank })
    }

    /// Performs `count` removal attempts, returning the rank-cost summary of
    /// the removals that succeeded.
    pub fn run_removals(&mut self, count: u64) -> RankCostSummary {
        let mut acc = RankCostAccumulator::new();
        for _ in 0..count {
            if let Some(record) = self.remove() {
                acc.record(record.rank);
            }
        }
        acc.finish()
    }

    /// Performs `count` removal attempts while sampling a time series every
    /// `interval` removals: each sample reports the mean and max rank over the
    /// *preceding* interval, so divergence over time is visible.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn run_removals_with_series(
        &mut self,
        count: u64,
        interval: u64,
    ) -> (RankCostSummary, RankTimeSeries) {
        assert!(interval > 0, "interval must be positive");
        let mut total = RankCostAccumulator::new();
        let mut window = RankCostAccumulator::new();
        let mut series = RankTimeSeries::new(interval);
        for step in 1..=count {
            if let Some(record) = self.remove() {
                total.record(record.rank);
                window.record(record.rank);
            }
            if step % interval == 0 {
                series.push(self.removals, window.mean_rank(), window.max_rank());
                window = RankCostAccumulator::new();
            }
        }
        (total.finish(), series)
    }

    /// Runs `steps` alternating (insert, remove) pairs after ensuring at least
    /// `floor` elements are present, keeping the population roughly constant.
    /// This is the long-lived shape used for the "any time t" experiments.
    pub fn run_alternating(&mut self, steps: u64, floor: u64) -> RankCostSummary {
        if self.total_present() < floor {
            self.prefill(floor - self.total_present());
        }
        let mut acc = RankCostAccumulator::new();
        for _ in 0..steps {
            self.insert();
            if let Some(record) = self.remove() {
                acc.record(record.rank);
            }
        }
        acc.finish()
    }

    /// Like [`Self::run_alternating`] but also samples a time series every
    /// `interval` steps (mean/max over the preceding window).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn run_alternating_with_series(
        &mut self,
        steps: u64,
        floor: u64,
        interval: u64,
    ) -> (RankCostSummary, RankTimeSeries) {
        assert!(interval > 0, "interval must be positive");
        if self.total_present() < floor {
            self.prefill(floor - self.total_present());
        }
        let mut total = RankCostAccumulator::new();
        let mut window = RankCostAccumulator::new();
        let mut series = RankTimeSeries::new(interval);
        for step in 1..=steps {
            self.insert();
            if let Some(record) = self.remove() {
                total.record(record.rank);
                window.record(record.rank);
            }
            if step % interval == 0 {
                series.push(self.removals, window.mean_rank(), window.max_rank());
                window = RankCostAccumulator::new();
            }
        }
        (total.finish(), series)
    }

    /// The rank (1-based) of the best label currently on top of any queue —
    /// i.e. the cost an *optimal* two-choice-free scheduler would pay. Always
    /// 1 unless every queue is empty.
    pub fn best_available_rank(&self) -> Option<u64> {
        let best_top = self.top_labels().into_iter().flatten().min()?;
        Some(self.present.rank(best_top))
    }

    /// Checks internal consistency: every queue is ascending and the order
    /// set size matches the queue contents (test/diagnostic helper).
    pub fn check_invariants(&self) -> bool {
        let mut count = 0u64;
        for q in &self.queues {
            if !q.iter().zip(q.iter().skip(1)).all(|(a, b)| a < b) {
                return false;
            }
            count += q.len() as u64;
        }
        count == self.present.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BiasSpec, ProcessConfig};
    use proptest::prelude::*;

    fn process(n: usize, beta: f64, seed: u64) -> SequentialProcess {
        SequentialProcess::new(ProcessConfig::new(n).with_beta(beta).with_seed(seed))
    }

    #[test]
    fn insertion_bookkeeping() {
        let mut p = process(4, 1.0, 1);
        p.prefill(100);
        assert_eq!(p.total_present(), 100);
        assert_eq!(p.next_label(), 100);
        assert_eq!(p.queue_lengths().iter().sum::<usize>(), 100);
        assert!(p.check_invariants());
        assert_eq!(p.best_available_rank(), Some(1));
    }

    #[test]
    fn single_queue_process_is_exact() {
        // With one queue every removal takes the global minimum: rank 1 always.
        let mut p = process(1, 1.0, 3);
        p.prefill(50);
        let summary = p.run_removals(50);
        assert_eq!(summary.removals, 50);
        assert_eq!(summary.mean_rank, 1.0);
        assert_eq!(summary.max_rank, 1);
        assert_eq!(p.total_present(), 0);
    }

    #[test]
    fn removal_rank_matches_manual_computation() {
        let mut p = process(2, 1.0, 7);
        p.prefill(10);
        // Two-choice over two queues always inspects both, so it always takes
        // the global minimum: cost 1 every time.
        for _ in 0..10 {
            let r = p.remove().unwrap();
            assert_eq!(r.rank, 1);
        }
        assert_eq!(p.remove(), None);
    }

    #[test]
    fn drain_removes_every_label_exactly_once() {
        let mut p = process(8, 0.5, 11);
        p.prefill(500);
        let mut seen = vec![false; 500];
        // Allow extra attempts because sampled-empty removals return None.
        let mut attempts = 0;
        while p.total_present() > 0 && attempts < 100_000 {
            if let Some(r) = p.remove() {
                assert!(!seen[r.label as usize], "label removed twice");
                seen[r.label as usize] = true;
            }
            attempts += 1;
        }
        assert!(seen.iter().all(|&s| s), "every label must be removed");
        assert!(p.check_invariants());
    }

    #[test]
    fn two_choice_mean_rank_is_order_n() {
        // Theorem 1: E[rank] = O(n). Use alternating mode so the process is
        // prefixed and long-lived.
        let n = 16;
        let mut p = process(n, 1.0, 42);
        let summary = p.run_alternating(20_000, (n as u64) * 200);
        assert!(summary.removals > 19_000);
        assert!(
            summary.mean_rank < 3.0 * n as f64,
            "mean rank {} should be O(n) (n = {n})",
            summary.mean_rank
        );
        // And it cannot be better than (n+1)/2 on average (the rank of the
        // best top element is 1, but two random choices can't always find it).
        assert!(summary.mean_rank >= 1.0);
    }

    #[test]
    fn single_choice_mean_rank_grows_with_time() {
        let n = 16;
        let mut p = process(n, 0.0, 13);
        let (_, series) = p.run_alternating_with_series(40_000, (n as u64) * 1_000, 10_000);
        let first = series.points.first().unwrap().1;
        let last = series.points.last().unwrap().1;
        assert!(
            last > first * 1.3,
            "single-choice mean rank should grow: first window {first}, last window {last}"
        );
    }

    #[test]
    fn two_choice_mean_rank_is_flat_over_time() {
        let n = 16;
        let mut p = process(n, 1.0, 13);
        let (_, series) = p.run_alternating_with_series(40_000, (n as u64) * 1_000, 10_000);
        let first = series.points.first().unwrap().1;
        let last = series.points.last().unwrap().1;
        assert!(
            last < first * 2.0 + 2.0 * n as f64,
            "two-choice mean rank should stay bounded: first {first}, last {last}"
        );
    }

    #[test]
    fn smaller_beta_gives_larger_rank() {
        let n = 8;
        let run = |beta: f64| {
            let mut p = process(n, beta, 5);
            p.run_alternating(30_000, (n as u64) * 500).mean_rank
        };
        let r_10 = run(1.0);
        let r_05 = run(0.5);
        let r_02 = run(0.2);
        assert!(
            r_10 < r_05 && r_05 < r_02,
            "mean rank should increase as beta decreases: {r_10}, {r_05}, {r_02}"
        );
    }

    #[test]
    fn larger_d_means_smaller_rank() {
        // The d-choice generalisation: more samples per removal find better
        // tops, monotonically. d = n inspects every queue, so it always takes
        // the global minimum (the smallest label overall sits on top of its
        // queue): rank exactly 1.
        let n = 8;
        let run = |d: usize| {
            let mut p = SequentialProcess::new(ProcessConfig::new(n).with_d(d).with_seed(5));
            p.run_alternating(30_000, (n as u64) * 500).mean_rank
        };
        let (r1, r2, r4, r8) = (run(1), run(2), run(4), run(8));
        assert!(
            r1 > r2 && r2 > r4 && r4 > r8,
            "mean rank should shrink with d: {r1}, {r2}, {r4}, {r8}"
        );
        assert_eq!(r8, 1.0, "d = n always removes the global minimum");
    }

    #[test]
    fn biased_insertion_still_bounded_for_two_choice() {
        let n = 16;
        let cfg = ProcessConfig::new(n)
            .with_beta(1.0)
            .with_bias_gamma(0.3)
            .with_seed(21);
        let mut p = SequentialProcess::new(cfg);
        let summary = p.run_alternating(20_000, (n as u64) * 200);
        assert!(
            summary.mean_rank < 4.0 * n as f64,
            "biased two-choice mean rank {} should remain O(n)",
            summary.mean_rank
        );
    }

    #[test]
    fn explicit_bias_is_respected() {
        // All mass on queue 0: every label goes there, removals always find it.
        let cfg = ProcessConfig::new(4)
            .with_bias_weights(vec![1.0, 0.0, 0.0, 0.0])
            .with_seed(2);
        let mut p = SequentialProcess::new(cfg);
        p.prefill(100);
        let lens = p.queue_lengths();
        assert_eq!(lens[0], 100);
        assert_eq!(lens[1] + lens[2] + lens[3], 0);
        // A queue with zero insertion probability violates the bounded-bias
        // assumption entirely, so the realised gamma is reported as infinite.
        assert!(BiasSpec::realized_gamma(&p.config().insertion_probabilities()).is_infinite());
    }

    #[test]
    fn determinism_from_seed() {
        let run = |seed| {
            let mut p = process(8, 0.75, seed);
            p.prefill(1_000);
            let s = p.run_removals(1_000);
            (s.mean_rank, s.max_rank)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn empty_process_remove_returns_none() {
        let mut p = process(4, 1.0, 0);
        assert_eq!(p.remove(), None);
        let summary = p.run_removals(10);
        assert_eq!(summary.removals, 0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let mut p = process(4, 1.0, 0);
        let _ = p.run_removals_with_series(10, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_labels_conserved(n in 1usize..12, prefill in 1u64..400, removals in 0u64..400, beta in 0.0f64..=1.0, seed in 0u64..1000) {
            let mut p = process(n, beta, seed);
            p.prefill(prefill);
            let mut removed = 0u64;
            for _ in 0..removals {
                if p.remove().is_some() {
                    removed += 1;
                }
            }
            prop_assert_eq!(p.total_present(), prefill - removed);
            prop_assert!(p.check_invariants());
        }

        #[test]
        fn prop_rank_never_exceeds_population(n in 2usize..10, seed in 0u64..1000) {
            let mut p = process(n, 0.5, seed);
            p.prefill(200);
            let mut present = 200u64;
            for _ in 0..200 {
                if let Some(r) = p.remove() {
                    prop_assert!(r.rank >= 1);
                    prop_assert!(r.rank <= present);
                    present -= 1;
                }
            }
        }
    }
}
