//! The sequential processes analysed by the paper.
//!
//! *The Power of Choice in Priority Scheduling* (Alistarh, Kopinsky, Li,
//! Nadiradze; PODC 2017) analyses the following **sequential labelled
//! process**: `n` queues receive consecutively labelled elements, each
//! inserted into queue `i` with probability `π_i` (uniform up to a bias bound
//! `γ`). A removal, with probability `β`, samples two queues uniformly at
//! random and removes the smaller (higher-priority) label of the two tops; with
//! probability `1 − β` it removes the top of a single random queue. The cost of
//! a removal is the *rank* of the removed label among all labels still present.
//!
//! The paper's main results, all reproducible with this crate:
//!
//! * **Theorem 1** — for `β = Ω(γ)` the expected rank per removal is
//!   `O(n/β²)` and the expected maximum rank is `O((n/β)(log n + log 1/β))`,
//!   *independent of how long the process runs* ([`sequential`]).
//! * **Theorem 6** — the single-choice process (`β = 0`) diverges: its rank
//!   cost grows as `Ω(√(t·n·log n))` ([`sequential`] with
//!   [`ChoiceRule::SingleChoice`](config::ChoiceRule)).
//! * **Theorem 2** — the rank distribution of the labelled process equals that
//!   of an *exponential process* with real-valued labels ([`exponential`],
//!   checked statistically in [`coupling`]).
//! * **Theorem 3** — the potential `Γ(t) = Φ(t) + Ψ(t)` of the exponential
//!   process stays `O(n)` in expectation ([`potential`]).
//! * **Appendix A** — under round-robin insertion the process reduces exactly
//!   to a classic two-choice balls-into-bins process ([`round_robin`]).
//!
//! Every process is parameterised by the workspace-wide
//! [`ChoiceRule`] — the same type that
//! configures the concurrent `choice_pq::MultiQueue` — so a theory prediction
//! and the matching real-queue experiment are driven by one rule value. In
//! addition to the paper's single-/two-/(1 + β)-choice rules this admits the
//! general `d`-choice rule (`ChoiceRule::DChoice(d)`), whose couplings the
//! processes here share with the queue.
//!
//! # Example
//!
//! ```
//! use choice_process::{ProcessConfig, SequentialProcess};
//!
//! // 8 queues, pure two-choice removals, 10k prefilled labels.
//! let config = ProcessConfig::new(8).with_beta(1.0).with_seed(7);
//! let mut process = SequentialProcess::new(config);
//! process.prefill(10_000);
//! let summary = process.run_removals(5_000);
//! // Theorem 1: the average rank is O(n); with n = 8 it is a small number.
//! assert!(summary.mean_rank < 8.0 * 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod coupling;
pub mod exponential;
pub mod metrics;
pub mod potential;
pub mod round_robin;
pub mod sequential;

#[allow(deprecated)]
pub use config::RemovalRule;
pub use config::{BiasSpec, ChoiceRule, ProcessConfig};
pub use coupling::{distance_to_theory, rank_occupancy_distance, RankOccupancy};
pub use exponential::{ExponentialInsertion, ExponentialTopProcess};
pub use metrics::{RankCostSummary, RankTimeSeries};
pub use potential::{PotentialParams, PotentialSnapshot, PotentialTrajectory};
pub use round_robin::RoundRobinProcess;
pub use sequential::{RemovalRecord, SequentialProcess};
