//! Rank-distribution equivalence between the original and exponential
//! processes (Theorem 2).
//!
//! Theorem 2 states that, after all insertions, the event "the label of rank
//! `r` sits in bin `j`" has probability `π_j` in *both* the original labelled
//! process and the exponential process, independently across ranks. This
//! module measures the empirical *rank occupancy* distribution of both
//! processes over repeated trials and provides a total-variation-style
//! distance so experiment T6 can show the two are statistically
//! indistinguishable (and both match the theoretical `π`).

use rank_stats::rng::{RandomSource, Xoshiro256};

use crate::config::ProcessConfig;
use crate::exponential::ExponentialInsertion;

/// Empirical distribution of which bin owns each rank, aggregated over trials
/// and ranks.
#[derive(Clone, Debug, PartialEq)]
pub struct RankOccupancy {
    /// `counts[j]` = number of (trial, rank) pairs owned by bin `j`.
    pub counts: Vec<u64>,
    /// Total number of (trial, rank) observations.
    pub total: u64,
}

impl RankOccupancy {
    /// Creates an empty occupancy table over `bins` bins.
    pub fn new(bins: usize) -> Self {
        Self {
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records that some rank was owned by `bin`.
    pub fn record(&mut self, bin: usize) {
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// The empirical probability vector.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Measures the occupancy of the **original** labelled process: insert
    /// `labels` consecutive labels with the configured bias over `trials`
    /// independent trials and count, for each rank, which bin owns it.
    /// (For the original process rank `r` is simply label `r`, since labels
    /// are inserted in increasing order.)
    pub fn of_original(config: &ProcessConfig, labels: u64, trials: u64) -> Self {
        let probabilities = config.insertion_probabilities();
        let n = probabilities.len();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &probabilities {
            acc += p;
            cumulative.push(acc);
        }
        let mut occupancy = Self::new(n);
        let mut rng = Xoshiro256::seeded(config.seed ^ 0x0041_61A1);
        for _ in 0..trials {
            for _ in 0..labels {
                let u = rng.next_f64();
                let bin = cumulative.partition_point(|&c| c < u).min(n - 1);
                occupancy.record(bin);
            }
        }
        occupancy
    }

    /// Measures the occupancy of the **exponential** process: generate the
    /// real-valued labels, rank them globally, and count rank owners.
    pub fn of_exponential(config: &ProcessConfig, labels: u64, trials: u64) -> Self {
        let n = config.queues;
        let mut occupancy = Self::new(n);
        // Pin the probability vector of the base configuration so that varying
        // the per-trial seed only varies the random stream, not π itself
        // (a BoundedRandom bias derives π from the seed).
        let probabilities = config.insertion_probabilities();
        for trial in 0..trials {
            let mut cfg = config.clone();
            cfg.bias = crate::config::BiasSpec::Explicit(probabilities.clone());
            cfg.seed = config.seed.wrapping_add(trial.wrapping_mul(0x9E37_79B9));
            let insertion = ExponentialInsertion::generate(&cfg, labels);
            for &bin in &insertion.rank_owners() {
                occupancy.record(bin);
            }
        }
        occupancy
    }
}

/// Total-variation distance between two occupancy tables:
/// `½ Σ_j |p_j − q_j|`. Zero means identical; values near zero mean the rank
/// distributions are statistically indistinguishable at the sampled size.
///
/// # Panics
///
/// Panics if the tables cover a different number of bins.
pub fn rank_occupancy_distance(a: &RankOccupancy, b: &RankOccupancy) -> f64 {
    assert_eq!(a.counts.len(), b.counts.len(), "bin counts must match");
    let fa = a.frequencies();
    let fb = b.frequencies();
    0.5 * fa
        .iter()
        .zip(fb.iter())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
}

/// Total-variation distance between an occupancy table and a theoretical
/// probability vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn distance_to_theory(occupancy: &RankOccupancy, probabilities: &[f64]) -> f64 {
    assert_eq!(
        occupancy.counts.len(),
        probabilities.len(),
        "bin counts must match"
    );
    let f = occupancy.frequencies();
    0.5 * f
        .iter()
        .zip(probabilities.iter())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_bookkeeping() {
        let mut occ = RankOccupancy::new(3);
        occ.record(0);
        occ.record(0);
        occ.record(2);
        assert_eq!(occ.total, 3);
        let f = occ.frequencies();
        assert!((f[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f[1], 0.0);
        assert!((f[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_occupancy_frequencies_are_zero() {
        let occ = RankOccupancy::new(4);
        assert_eq!(occ.frequencies(), vec![0.0; 4]);
    }

    #[test]
    fn distance_of_identical_tables_is_zero() {
        let mut a = RankOccupancy::new(2);
        a.record(0);
        a.record(1);
        let b = a.clone();
        assert_eq!(rank_occupancy_distance(&a, &b), 0.0);
    }

    #[test]
    fn distance_of_disjoint_tables_is_one() {
        let mut a = RankOccupancy::new(2);
        a.record(0);
        let mut b = RankOccupancy::new(2);
        b.record(1);
        assert!((rank_occupancy_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bin counts must match")]
    fn mismatched_bins_panics() {
        let a = RankOccupancy::new(2);
        let b = RankOccupancy::new(3);
        let _ = rank_occupancy_distance(&a, &b);
    }

    #[test]
    fn theorem_2_uniform_case() {
        // Uniform insertion, 8 bins: both processes should match the uniform
        // vector and each other to within sampling noise.
        let cfg = ProcessConfig::new(8).with_seed(101);
        let labels = 4_000;
        let trials = 10;
        let original = RankOccupancy::of_original(&cfg, labels, trials);
        let exponential = RankOccupancy::of_exponential(&cfg, labels, trials);
        let probs = cfg.insertion_probabilities();
        assert!(distance_to_theory(&original, &probs) < 0.02);
        assert!(distance_to_theory(&exponential, &probs) < 0.02);
        assert!(rank_occupancy_distance(&original, &exponential) < 0.03);
    }

    #[test]
    fn theorem_2_biased_case() {
        // A strongly biased insertion distribution: the exponential process
        // must reproduce the same (non-uniform) rank ownership frequencies.
        let cfg = ProcessConfig::new(4)
            .with_bias_weights(vec![4.0, 2.0, 1.0, 1.0])
            .with_seed(77);
        let labels = 4_000;
        let trials = 10;
        let original = RankOccupancy::of_original(&cfg, labels, trials);
        let exponential = RankOccupancy::of_exponential(&cfg, labels, trials);
        let probs = cfg.insertion_probabilities();
        assert!(distance_to_theory(&original, &probs) < 0.02);
        assert!(
            distance_to_theory(&exponential, &probs) < 0.02,
            "exponential occupancy {:?} should match theory {probs:?}",
            exponential.frequencies()
        );
        assert!(rank_occupancy_distance(&original, &exponential) < 0.03);
    }

    #[test]
    fn low_rank_ownership_is_also_proportional() {
        // Theorem 2 is per-rank, not just in aggregate: restrict attention to
        // the lowest 10% of ranks in the exponential process and check those
        // are still owned proportionally to π.
        let cfg = ProcessConfig::new(4)
            .with_bias_weights(vec![3.0, 1.0, 1.0, 1.0])
            .with_seed(13);
        let labels = 6_000u64;
        let mut low_rank = RankOccupancy::new(4);
        for trial in 0..10u64 {
            let mut c = cfg.clone();
            c.seed = cfg.seed + trial;
            let ins = ExponentialInsertion::generate(&c, labels);
            let owners = ins.rank_owners();
            for &bin in &owners[..(labels as usize / 10)] {
                low_rank.record(bin);
            }
        }
        let probs = cfg.insertion_probabilities();
        assert!(
            distance_to_theory(&low_rank, &probs) < 0.05,
            "low-rank occupancy {:?} vs theory {probs:?}",
            low_rank.frequencies()
        );
    }
}
