//! Round-robin insertions and the reduction to classic two-choice
//! balls-into-bins (Appendix A).
//!
//! When labels are inserted round-robin (label `t` goes to queue `t mod n`),
//! removing the smaller of two random tops is *exactly* equivalent to
//! inserting a ball into the less-loaded of two random "virtual bins", where
//! virtual bin `i` counts how many elements have been removed from queue `i`.
//! [`RoundRobinProcess`] runs the labelled process under round-robin insertion
//! while simultaneously tracking the virtual-bin loads, so the equivalence can
//! be asserted step by step, and the known gap bounds of the classic process
//! (`O(log log n)` for two-choice, `Θ(√(t/n·log n))` for single-choice)
//! transfer to removal-count imbalance.

use std::collections::VecDeque;

use rank_stats::order::OrderStatisticsSet;
use rank_stats::rng::Xoshiro256;

use balls_bins::process::load_stats;
use balls_bins::LoadStats;

use crate::config::ChoiceRule;
use crate::metrics::{RankCostAccumulator, RankCostSummary};

/// The labelled process under round-robin insertion, with its virtual-bin
/// shadow process.
#[derive(Clone, Debug)]
pub struct RoundRobinProcess {
    queues: Vec<VecDeque<u64>>,
    present: OrderStatisticsSet,
    /// Virtual bin loads: removals per queue (the Appendix A reduction).
    removal_counts: Vec<u64>,
    choice: ChoiceRule,
    next_label: u64,
    rng: Xoshiro256,
    /// Reusable sample buffer for the choice rule.
    scratch: Vec<usize>,
}

impl RoundRobinProcess {
    /// Creates the process with `queues` queues and the given choice rule.
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0` or the rule is invalid.
    pub fn new(queues: usize, choice: ChoiceRule, seed: u64) -> Self {
        assert!(queues > 0, "need at least one queue");
        choice.validate();
        Self {
            queues: vec![VecDeque::new(); queues],
            present: OrderStatisticsSet::with_capacity(1024),
            removal_counts: vec![0; queues],
            choice,
            next_label: 0,
            rng: Xoshiro256::seeded(seed),
            scratch: Vec::new(),
        }
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.queues.len()
    }

    /// Inserts `count` labels round-robin.
    pub fn prefill(&mut self, count: u64) {
        for _ in 0..count {
            let label = self.next_label;
            self.next_label += 1;
            let queue = (label % self.queues.len() as u64) as usize;
            self.queues[queue].push_back(label);
            self.present.insert(label);
        }
    }

    /// Number of labels currently present.
    pub fn total_present(&self) -> u64 {
        self.present.len()
    }

    /// The per-queue removal counts (the virtual-bin load vector).
    pub fn removal_counts(&self) -> &[u64] {
        &self.removal_counts
    }

    /// Load statistics of the virtual bins.
    pub fn virtual_bin_stats(&self) -> LoadStats {
        load_stats(&self.removal_counts)
    }

    /// Performs one removal; returns `(queue, label, rank)` or `None` when
    /// the sampled queues are empty.
    ///
    /// The key invariant of the Appendix A reduction — under round-robin
    /// insertion, "smaller top label" and "fewer removals so far" coincide —
    /// is asserted in debug builds on every multi-sample comparison (it holds
    /// for any `d`, not just the paper's two-choice case).
    pub fn remove(&mut self) -> Option<(usize, u64, u64)> {
        let rule = self.choice;
        let n = self.queues.len();
        let chosen = {
            let Self {
                queues,
                rng,
                scratch,
                ..
            } = self;
            rule.choose_by_key(rng, n, scratch, |q| queues[q].front().copied())?
        };
        // The reduction: among the sampled non-empty queues, "smallest top
        // label" and "fewest removals so far" (ties broken by queue index =
        // label order) select the same queue.
        #[cfg(debug_assertions)]
        {
            let by_load = self
                .scratch
                .iter()
                .copied()
                .filter(|&q| !self.queues[q].is_empty())
                .min_by_key(|&q| (self.removal_counts[q], q))
                .expect("a non-empty queue was chosen");
            debug_assert_eq!(
                chosen, by_load,
                "round-robin reduction violated: sample {:?}, loads {:?}",
                self.scratch, self.removal_counts
            );
        }
        let label = self.queues[chosen].pop_front().expect("non-empty");
        let rank = self
            .present
            .remove_and_rank(label)
            .expect("label was present");
        self.removal_counts[chosen] += 1;
        Some((chosen, label, rank))
    }

    /// Performs `count` removal attempts, returning rank statistics.
    pub fn run_removals(&mut self, count: u64) -> RankCostSummary {
        let mut acc = RankCostAccumulator::new();
        for _ in 0..count {
            if let Some((_, _, rank)) = self.remove() {
                acc.record(rank);
            }
        }
        acc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_prefill_is_balanced() {
        let mut p = RoundRobinProcess::new(8, ChoiceRule::TwoChoice, 1);
        p.prefill(800);
        assert_eq!(p.total_present(), 800);
        // Every queue holds exactly 100 labels.
        let lens: Vec<usize> = (0..8).map(|i| p.queues[i].len()).collect();
        assert!(lens.iter().all(|&l| l == 100));
    }

    #[test]
    fn reduction_invariant_holds_over_a_long_run() {
        // The debug_assert inside remove() checks the label/load equivalence
        // on every two-choice step; run enough steps to exercise it heavily.
        let mut p = RoundRobinProcess::new(16, ChoiceRule::TwoChoice, 7);
        p.prefill(16 * 2_000);
        let summary = p.run_removals(16_000);
        assert!(summary.removals > 15_000);
        // Virtual bins must account for exactly the removals performed.
        let total_removed: u64 = p.removal_counts().iter().sum();
        assert_eq!(total_removed, summary.removals);
    }

    #[test]
    fn two_choice_virtual_gap_is_tiny() {
        // Classic two-choice heavily-loaded bound: gap = O(log log n).
        let n = 32;
        let mut p = RoundRobinProcess::new(n, ChoiceRule::TwoChoice, 3);
        p.prefill(n as u64 * 5_000);
        p.run_removals(n as u64 * 3_000);
        let gap = p.virtual_bin_stats().gap_above_mean;
        assert!(
            gap <= 5.0,
            "two-choice virtual-bin gap {gap} should be tiny"
        );
    }

    #[test]
    fn single_choice_virtual_gap_is_large() {
        let n = 32;
        let mut p = RoundRobinProcess::new(n, ChoiceRule::SingleChoice, 3);
        p.prefill(n as u64 * 5_000);
        p.run_removals(n as u64 * 3_000);
        let gap = p.virtual_bin_stats().gap_above_mean;
        assert!(
            gap > 5.0,
            "single-choice virtual-bin gap {gap} should exceed the two-choice gap"
        );
    }

    #[test]
    fn round_robin_two_choice_rank_is_order_n() {
        let n = 16;
        let mut p = RoundRobinProcess::new(n, ChoiceRule::TwoChoice, 9);
        p.prefill(n as u64 * 3_000);
        let summary = p.run_removals(n as u64 * 1_500);
        assert!(
            summary.mean_rank < 3.0 * n as f64,
            "round-robin two-choice mean rank {} should be O(n)",
            summary.mean_rank
        );
    }

    #[test]
    fn empty_process_returns_none() {
        let mut p = RoundRobinProcess::new(4, ChoiceRule::TwoChoice, 0);
        assert_eq!(p.remove(), None);
        assert_eq!(p.run_removals(5).removals, 0);
    }
}
