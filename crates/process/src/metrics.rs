//! Rank-cost summaries of a process run.

use rank_stats::histogram::LogHistogram;
use rank_stats::summary::StreamingSummary;

/// Aggregate rank-cost statistics of a batch of removals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankCostSummary {
    /// Number of removals performed.
    pub removals: u64,
    /// Mean rank of a removed element (1 = always optimal).
    pub mean_rank: f64,
    /// Maximum rank over all removals in the batch.
    pub max_rank: u64,
    /// Standard deviation of the per-removal rank.
    pub std_dev: f64,
    /// Upper bound of the log-bucket containing the 50th percentile.
    pub p50_upper: u64,
    /// Upper bound of the log-bucket containing the 99th percentile.
    pub p99_upper: u64,
}

/// Accumulator used while a process runs; converts into a [`RankCostSummary`].
#[derive(Clone, Debug, Default)]
pub struct RankCostAccumulator {
    summary: StreamingSummary,
    histogram: LogHistogram,
    max: u64,
}

impl RankCostAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the rank of one removal.
    pub fn record(&mut self, rank: u64) {
        self.summary.record_u64(rank);
        self.histogram.record(rank);
        self.max = self.max.max(rank);
    }

    /// Number of removals recorded so far.
    pub fn removals(&self) -> u64 {
        self.summary.count()
    }

    /// Running mean rank.
    pub fn mean_rank(&self) -> f64 {
        self.summary.mean()
    }

    /// Running maximum rank.
    pub fn max_rank(&self) -> u64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RankCostAccumulator) {
        self.summary.merge(&other.summary);
        self.histogram.merge(&other.histogram);
        self.max = self.max.max(other.max);
    }

    /// Produces the final summary.
    pub fn finish(&self) -> RankCostSummary {
        RankCostSummary {
            removals: self.summary.count(),
            mean_rank: self.summary.mean(),
            max_rank: self.max,
            std_dev: self.summary.std_dev(),
            p50_upper: self.histogram.quantile_upper_bound(0.5).unwrap_or(0),
            p99_upper: self.histogram.quantile_upper_bound(0.99).unwrap_or(0),
        }
    }
}

/// A time series of rank costs sampled at fixed intervals, used to check that
/// the two-choice bounds are flat in `t` while single-choice diverges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankTimeSeries {
    /// Number of removals between consecutive samples.
    pub interval: u64,
    /// `(removals_so_far, mean_rank_over_last_interval, max_rank_over_last_interval)`.
    pub points: Vec<(u64, f64, u64)>,
}

impl RankTimeSeries {
    /// Creates an empty series with the given sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        Self {
            interval,
            points: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, removals: u64, mean_rank: f64, max_rank: u64) {
        self.points.push((removals, mean_rank, max_rank));
    }

    /// The last sampled mean rank, if any.
    pub fn final_mean(&self) -> Option<f64> {
        self.points.last().map(|&(_, m, _)| m)
    }

    /// The largest sampled interval-max rank, if any.
    pub fn overall_max(&self) -> Option<u64> {
        self.points.iter().map(|&(_, _, m)| m).max()
    }

    /// Fits `mean_rank ≈ a·sqrt(removals)` by least squares through the
    /// origin and returns `a`; used to verify the Ω(√t) divergence of the
    /// single-choice process. Returns 0 when there are no points.
    pub fn sqrt_growth_coefficient(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for &(t, mean, _) in &self.points {
            let x = (t as f64).sqrt();
            num += x * mean;
            den += x * x;
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic_statistics() {
        let mut acc = RankCostAccumulator::new();
        for r in [1u64, 1, 2, 4, 100] {
            acc.record(r);
        }
        assert_eq!(acc.removals(), 5);
        assert_eq!(acc.max_rank(), 100);
        let s = acc.finish();
        assert_eq!(s.removals, 5);
        assert_eq!(s.max_rank, 100);
        assert!((s.mean_rank - 21.6).abs() < 1e-9);
        assert!(s.p50_upper <= 4);
        assert!(s.p99_upper >= 64);
    }

    #[test]
    fn empty_accumulator_finishes_cleanly() {
        let s = RankCostAccumulator::new().finish();
        assert_eq!(s.removals, 0);
        assert_eq!(s.mean_rank, 0.0);
        assert_eq!(s.max_rank, 0);
        assert_eq!(s.p50_upper, 0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let values: Vec<u64> = (1..200u64).map(|v| v * 3 % 50 + 1).collect();
        let mut whole = RankCostAccumulator::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = RankCostAccumulator::new();
        let mut b = RankCostAccumulator::new();
        for &v in &values[..77] {
            a.record(v);
        }
        for &v in &values[77..] {
            b.record(v);
        }
        a.merge(&b);
        let sa = a.finish();
        let sw = whole.finish();
        assert_eq!(sa.removals, sw.removals);
        assert!((sa.mean_rank - sw.mean_rank).abs() < 1e-9);
        assert_eq!(sa.max_rank, sw.max_rank);
        assert_eq!(sa.p99_upper, sw.p99_upper);
    }

    #[test]
    fn time_series_summaries() {
        let mut ts = RankTimeSeries::new(100);
        ts.push(100, 5.0, 20);
        ts.push(200, 6.0, 18);
        ts.push(300, 5.5, 40);
        assert_eq!(ts.final_mean(), Some(5.5));
        assert_eq!(ts.overall_max(), Some(40));
        assert!(ts.sqrt_growth_coefficient() > 0.0);
    }

    #[test]
    fn sqrt_growth_fit_recovers_coefficient() {
        let mut ts = RankTimeSeries::new(1);
        for t in (1..=100u64).map(|k| k * 100) {
            ts.push(t, 3.0 * (t as f64).sqrt(), 0);
        }
        let a = ts.sqrt_growth_coefficient();
        assert!((a - 3.0).abs() < 1e-9, "fit {a}");
    }

    #[test]
    fn empty_time_series() {
        let ts = RankTimeSeries::new(10);
        assert_eq!(ts.final_mean(), None);
        assert_eq!(ts.overall_max(), None);
        assert_eq!(ts.sqrt_growth_coefficient(), 0.0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = RankTimeSeries::new(0);
    }
}
