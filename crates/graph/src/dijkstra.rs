//! Sequential shortest-path references.
//!
//! These are the exact baselines the parallel relaxed-queue SSSP is validated
//! against: classic Dijkstra with a binary heap, Dijkstra with a monotone
//! bucket queue (often called Dial's algorithm), and Bellman–Ford as an
//! independent cross-check used by the property tests.

use seq_pq::{BinaryHeap, BucketQueue, SequentialPriorityQueue};

use crate::graph::{Graph, NodeId};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u64 = u64::MAX;

/// Classic Dijkstra with a binary heap. Returns the distance from `source` to
/// every node (`UNREACHABLE` for nodes not reachable from `source`).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn dijkstra(graph: &Graph, source: NodeId) -> Vec<u64> {
    assert!((source as usize) < graph.nodes(), "source out of range");
    let mut dist = vec![UNREACHABLE; graph.nodes()];
    let mut heap: BinaryHeap<NodeId> = BinaryHeap::with_capacity(graph.nodes());
    dist[source as usize] = 0;
    heap.push(0, source);
    while let Some((d, node)) = heap.pop() {
        if d > dist[node as usize] {
            continue; // stale entry
        }
        for (next, weight) in graph.neighbors(node) {
            let candidate = d + weight as u64;
            if candidate < dist[next as usize] {
                dist[next as usize] = candidate;
                heap.push(candidate, next);
            }
        }
    }
    dist
}

/// Dijkstra with a monotone bucket queue (Dial's algorithm); requires the
/// graph's maximum edge weight to size the bucket span.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn dijkstra_bucket(graph: &Graph, source: NodeId) -> Vec<u64> {
    assert!((source as usize) < graph.nodes(), "source out of range");
    let mut dist = vec![UNREACHABLE; graph.nodes()];
    let span = graph.max_weight().max(1) as usize;
    let mut queue: BucketQueue<NodeId> = BucketQueue::new(span);
    dist[source as usize] = 0;
    queue.push(0, source);
    while let Some((d, node)) = queue.pop() {
        if d > dist[node as usize] {
            continue;
        }
        for (next, weight) in graph.neighbors(node) {
            let candidate = d + weight as u64;
            if candidate < dist[next as usize] {
                dist[next as usize] = candidate;
                queue.push(candidate, next);
            }
        }
    }
    dist
}

/// Bellman–Ford; `O(V·E)` but queue-free, used as an independent oracle.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bellman_ford(graph: &Graph, source: NodeId) -> Vec<u64> {
    assert!((source as usize) < graph.nodes(), "source out of range");
    let mut dist = vec![UNREACHABLE; graph.nodes()];
    dist[source as usize] = 0;
    for _ in 0..graph.nodes() {
        let mut changed = false;
        for u in 0..graph.nodes() as NodeId {
            let du = dist[u as usize];
            if du == UNREACHABLE {
                continue;
            }
            for (v, w) in graph.neighbors(u) {
                let candidate = du + w as u64;
                if candidate < dist[v as usize] {
                    dist[v as usize] = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_graph, random_graph};
    use crate::graph::Graph;
    use proptest::prelude::*;

    fn diamond() -> Graph {
        Graph::from_edges(4, &[(0, 1, 1), (0, 2, 4), (1, 2, 2), (1, 3, 6), (2, 3, 3)])
    }

    #[test]
    fn dijkstra_on_known_graph() {
        let g = diamond();
        assert_eq!(dijkstra(&g, 0), vec![0, 1, 3, 6]);
        assert_eq!(
            dijkstra(&g, 3),
            vec![UNREACHABLE, UNREACHABLE, UNREACHABLE, 0]
        );
    }

    #[test]
    fn bucket_variant_matches_heap_variant() {
        let g = diamond();
        assert_eq!(dijkstra_bucket(&g, 0), dijkstra(&g, 0));
        let grid = grid_graph(20, 20, 30, 5);
        assert_eq!(dijkstra_bucket(&grid, 0), dijkstra(&grid, 0));
    }

    #[test]
    fn bellman_ford_matches_dijkstra() {
        let g = random_graph(60, 400, 25, 3);
        assert_eq!(bellman_ford(&g, 0), dijkstra(&g, 0));
    }

    #[test]
    fn unreachable_nodes_are_marked() {
        // Node 2 has no incoming edges from node 0's component.
        let g = Graph::from_edges(3, &[(0, 1, 5)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 5, UNREACHABLE]);
    }

    #[test]
    fn zero_weight_edges_are_handled() {
        let g = Graph::from_edges(3, &[(0, 1, 0), (1, 2, 0)]);
        assert_eq!(dijkstra(&g, 0), vec![0, 0, 0]);
        assert_eq!(dijkstra_bucket(&g, 0), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        let _ = dijkstra(&diamond(), 9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_all_variants_agree(nodes in 2usize..40, extra_edges in 0usize..200, seed in 0u64..500) {
            let g = random_graph(nodes, nodes + extra_edges, 20, seed);
            let a = dijkstra(&g, 0);
            let b = dijkstra_bucket(&g, 0);
            let c = bellman_ford(&g, 0);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &c);
        }

        #[test]
        fn prop_triangle_inequality(nodes in 2usize..30, seed in 0u64..500) {
            // For every edge (u, v, w): dist[v] <= dist[u] + w.
            let g = random_graph(nodes, nodes * 3, 15, seed);
            let dist = dijkstra(&g, 0);
            for u in 0..nodes as NodeId {
                if dist[u as usize] == UNREACHABLE { continue; }
                for (v, w) in g.neighbors(u) {
                    prop_assert!(dist[v as usize] <= dist[u as usize] + w as u64);
                }
            }
        }
    }
}
