//! Parallel SSSP over a relaxed concurrent priority queue.
//!
//! This is the application benchmark of Figure 3. The algorithm is the
//! standard "Dijkstra with re-relaxation" used with relaxed priority queues
//! (and by the Galois/OBIM-style schedulers cited in the paper): the shared
//! distance array is maintained with atomic compare-and-swap, and when the
//! queue hands back a *stale* entry (its recorded distance no longer matches
//! the current tentative distance) the entry is simply discarded. Priority
//! inversions therefore cost wasted relaxations — counted and reported in
//! [`ParallelSsspStats`] — but never correctness.
//!
//! Each worker thread registers its own session handle on the shared queue
//! ([`SharedPq::register`]), which is where its private randomness and lane
//! affinity live; the queue type is anything implementing
//! [`SharedPq`]`<NodeId>` — concrete or type-erased
//! (`dyn DynSharedPq<NodeId>`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use choice_pq::{PqHandle, SharedPq};

use crate::dijkstra::UNREACHABLE;
use crate::graph::{Graph, NodeId};

/// Statistics of one parallel SSSP run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelSsspStats {
    /// Number of queue pops that led to useful relaxation work.
    pub useful_pops: u64,
    /// Number of queue pops discarded as stale (the cost of relaxation).
    pub stale_pops: u64,
    /// Number of edge relaxations that improved a distance.
    pub improvements: u64,
    /// Number of worker threads used.
    pub threads: usize,
}

impl ParallelSsspStats {
    /// Fraction of pops that were wasted on stale entries.
    pub fn stale_fraction(&self) -> f64 {
        let total = self.useful_pops + self.stale_pops;
        if total == 0 {
            0.0
        } else {
            self.stale_pops as f64 / total as f64
        }
    }
}

/// Computes single-source shortest paths from `source` using `threads` worker
/// threads sharing the given concurrent priority queue, each through its own
/// registered session handle.
///
/// Returns the distance array and the run statistics. The distances are
/// exact — relaxation of the queue only affects how much redundant work is
/// performed, which the statistics expose.
///
/// # Panics
///
/// Panics if `source` is out of range or `threads == 0`.
pub fn parallel_sssp<Q>(
    graph: &Graph,
    source: NodeId,
    queue: &Q,
    threads: usize,
) -> (Vec<u64>, ParallelSsspStats)
where
    Q: SharedPq<NodeId> + ?Sized,
{
    assert!((source as usize) < graph.nodes(), "source out of range");
    assert!(threads > 0, "need at least one worker thread");

    let dist: Vec<AtomicU64> = (0..graph.nodes())
        .map(|_| AtomicU64::new(UNREACHABLE))
        .collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    queue.register().insert(0, source);

    // Termination: a worker that finds the queue empty increments the idle
    // counter and spins; any successful pop resets its idle claim. When all
    // workers are simultaneously idle and the queue is still empty, we stop.
    let idle = AtomicUsize::new(0);
    let useful = AtomicU64::new(0);
    let stale = AtomicU64::new(0);
    let improvements = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let dist = &dist;
            let idle = &idle;
            let useful = &useful;
            let stale = &stale;
            let improvements = &improvements;
            scope.spawn(move || {
                let mut handle = queue.register();
                let mut am_idle = false;
                loop {
                    match handle.delete_min() {
                        Some((popped_dist, node)) => {
                            if am_idle {
                                idle.fetch_sub(1, Ordering::AcqRel);
                                am_idle = false;
                            }
                            let current = dist[node as usize].load(Ordering::Relaxed);
                            if popped_dist > current {
                                stale.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            useful.fetch_add(1, Ordering::Relaxed);
                            for (next, weight) in graph.neighbors(node) {
                                let candidate = popped_dist + weight as u64;
                                // CAS loop lowering the neighbour's distance.
                                let mut observed = dist[next as usize].load(Ordering::Relaxed);
                                while candidate < observed {
                                    match dist[next as usize].compare_exchange_weak(
                                        observed,
                                        candidate,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    ) {
                                        Ok(_) => {
                                            improvements.fetch_add(1, Ordering::Relaxed);
                                            handle.insert(candidate, next);
                                            break;
                                        }
                                        Err(now) => observed = now,
                                    }
                                }
                            }
                        }
                        None => {
                            if !am_idle {
                                idle.fetch_add(1, Ordering::AcqRel);
                                am_idle = true;
                            }
                            if idle.load(Ordering::Acquire) == threads {
                                // Everyone is idle and the queue looked empty:
                                // double-check emptiness and stop.
                                if queue.is_empty() {
                                    break;
                                }
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }
    });

    let distances = dist.into_iter().map(|d| d.into_inner()).collect();
    let stats = ParallelSsspStats {
        useful_pops: useful.into_inner(),
        stale_pops: stale.into_inner(),
        improvements: improvements.into_inner(),
        threads,
    };
    (distances, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::generators::{grid_graph, random_geometric_graph, random_graph};
    use choice_pq::{DynSharedPq, MultiQueue, MultiQueueConfig};
    use pq_baselines::{CoarseHeap, KLsmConfig, KLsmQueue, SkipListQueue};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn multiqueue(beta: f64) -> MultiQueue<NodeId> {
        MultiQueue::new(
            MultiQueueConfig::with_queues(8)
                .with_beta(beta)
                .with_seed(5),
        )
    }

    #[test]
    fn matches_sequential_dijkstra_on_grid() {
        let g = grid_graph(25, 25, 40, 9);
        let expected = dijkstra(&g, 0);
        let (got, stats) = parallel_sssp(&g, 0, &multiqueue(0.75), 2);
        assert_eq!(got, expected);
        assert!(stats.useful_pops > 0);
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn works_single_threaded_with_every_queue() {
        let g = random_geometric_graph(800, 0.06, 30, 3);
        let expected = dijkstra(&g, 0);
        let (d1, _) = parallel_sssp(&g, 0, &multiqueue(1.0), 1);
        assert_eq!(d1, expected);
        let (d2, _) = parallel_sssp(&g, 0, &CoarseHeap::new(), 1);
        assert_eq!(d2, expected);
        let (d3, _) = parallel_sssp(&g, 0, &SkipListQueue::new(), 1);
        assert_eq!(d3, expected);
        let (d4, _) = parallel_sssp(
            &g,
            0,
            &KLsmQueue::new(KLsmConfig::for_threads(1).with_relaxation(64)),
            1,
        );
        assert_eq!(d4, expected);
    }

    #[test]
    fn multithreaded_runs_agree_with_reference_for_all_queues() {
        let g = grid_graph(30, 30, 20, 77);
        let expected = dijkstra(&g, 0);
        let (d1, s1) = parallel_sssp(&g, 0, &multiqueue(0.5), 4);
        assert_eq!(d1, expected);
        assert!(s1.useful_pops >= g.nodes() as u64 / 2);
        let (d2, _) = parallel_sssp(&g, 0, &CoarseHeap::new(), 4);
        assert_eq!(d2, expected);
        let (d3, _) = parallel_sssp(
            &g,
            0,
            &KLsmQueue::new(KLsmConfig::for_threads(4).with_relaxation(64)),
            4,
        );
        assert_eq!(d3, expected);
    }

    #[test]
    fn type_erased_queues_work_too() {
        // The bench harness hands queues around as Arc<dyn DynSharedPq>;
        // parallel_sssp must accept the erased form unchanged.
        let g = grid_graph(15, 15, 10, 4);
        let expected = dijkstra(&g, 0);
        let q: Arc<dyn DynSharedPq<NodeId>> = Arc::new(multiqueue(0.75));
        let (got, _) = parallel_sssp(&g, 0, &*q, 2);
        assert_eq!(got, expected);
    }

    #[test]
    fn relaxed_queue_costs_extra_work_not_correctness() {
        // With a very relaxed queue (beta = 0, i.e. single-choice) the answer
        // is still exact; only the stale/extra-pop counters grow.
        let g = grid_graph(20, 20, 25, 13);
        let expected = dijkstra(&g, 0);
        let (got, stats) = parallel_sssp(&g, 0, &multiqueue(0.0), 2);
        assert_eq!(got, expected);
        assert!(stats.stale_fraction() < 1.0);
    }

    #[test]
    fn disconnected_components_stay_unreachable() {
        let g = crate::graph::Graph::from_edges(4, &[(0, 1, 3)]);
        let (d, _) = parallel_sssp(&g, 0, &multiqueue(1.0), 2);
        assert_eq!(d, vec![0, 3, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    #[should_panic(expected = "need at least one worker thread")]
    fn zero_threads_panics() {
        let g = grid_graph(2, 2, 5, 0);
        let _ = parallel_sssp(&g, 0, &multiqueue(1.0), 0);
    }

    #[test]
    fn stats_fractions_are_sane() {
        let mut stats = ParallelSsspStats::default();
        assert_eq!(stats.stale_fraction(), 0.0);
        stats.useful_pops = 3;
        stats.stale_pops = 1;
        assert!((stats.stale_fraction() - 0.25).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn prop_parallel_matches_sequential(nodes in 2usize..60, extra in 0usize..150, seed in 0u64..300) {
            let g = random_graph(nodes, nodes + extra, 12, seed);
            let expected = dijkstra(&g, 0);
            let (got, _) = parallel_sssp(&g, 0, &multiqueue(0.75), 2);
            prop_assert_eq!(got, expected);
        }
    }
}
