//! Graph substrate and single-source shortest paths (SSSP).
//!
//! Figure 3 of the paper runs a parallel version of Dijkstra's algorithm on a
//! road network (the California graph), using the relaxed priority queues as
//! the work queue: priority inversions only cost extra relaxations, never
//! correctness, which is exactly the "offset the cost of priority inversions
//! by performing additional work" observation from the paper's introduction.
//!
//! This crate provides:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) weighted
//!   directed graph;
//! * [`generators`] — synthetic road-network-like graphs (grid and random
//!   geometric graphs) plus Erdős–Rényi graphs, substituting for the paper's
//!   proprietary road data (see `DESIGN.md`);
//! * [`dijkstra`](fn@dijkstra) — a sequential reference Dijkstra (binary heap and bucket
//!   queue variants) and a Bellman–Ford cross-check;
//! * [`parallel`] — parallel SSSP over any [`SharedPq`](choice_pq::SharedPq)
//!   (each worker registers its own session handle), with re-relaxation on
//!   stale pops, the algorithm benchmarked in Figure 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dijkstra;
pub mod generators;
pub mod graph;
pub mod parallel;

pub use dijkstra::{bellman_ford, dijkstra, dijkstra_bucket};
pub use generators::{grid_graph, random_geometric_graph, random_graph};
pub use graph::{Graph, NodeId, Weight};
pub use parallel::{parallel_sssp, ParallelSsspStats};
