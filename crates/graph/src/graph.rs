//! Compressed-sparse-row weighted directed graph.

/// Node identifier (index into the graph's node range).
pub type NodeId = u32;

/// Edge weight. Weights are non-negative integers, as in road networks where
/// they encode travel times or distances.
pub type Weight = u32;

/// A weighted directed graph in CSR form.
///
/// Construction goes through [`GraphBuilder`] (or [`Graph::from_edges`]);
/// the finished graph is immutable and cheap to share across threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets`/`weights` for node `v`.
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<Weight>,
}

impl Graph {
    /// Builds a graph from an edge list over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn from_edges(nodes: usize, edges: &[(NodeId, NodeId, Weight)]) -> Self {
        let mut builder = GraphBuilder::new(nodes);
        for &(u, v, w) in edges {
            builder.add_edge(u, v, w);
        }
        builder.build()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Iterates over the outgoing `(target, weight)` pairs of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let node = node as usize;
        assert!(node < self.nodes(), "node {node} out of range");
        let range = self.offsets[node]..self.offsets[node + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Out-degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        let node = node as usize;
        self.offsets[node + 1] - self.offsets[node]
    }

    /// The largest edge weight in the graph (0 for an edgeless graph).
    /// Needed to size a monotone bucket queue.
    pub fn max_weight(&self) -> Weight {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum()
    }
}

/// Incremental builder for [`Graph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    nodes: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Adds a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: Weight) -> &mut Self {
        assert!(
            (from as usize) < self.nodes && (to as usize) < self.nodes,
            "edge ({from},{to}) out of range for {} nodes",
            self.nodes
        );
        self.edges.push((from, to, weight));
        self
    }

    /// Adds an undirected edge (two directed edges).
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId, weight: Weight) -> &mut Self {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight)
    }

    /// Number of directed edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the CSR representation.
    pub fn build(&self) -> Graph {
        let mut degree = vec![0usize; self.nodes];
        for &(u, _, _) in &self.edges {
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.nodes + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; self.edges.len()];
        let mut weights = vec![0 as Weight; self.edges.len()];
        for &(u, v, w) in &self.edges {
            let slot = cursor[u as usize];
            targets[slot] = v;
            weights[slot] = w;
            cursor[u as usize] += 1;
        }
        Graph {
            offsets,
            targets,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 1 -> 3 (6), 2 -> 3 (3)
        Graph::from_edges(4, &[(0, 1, 1), (0, 2, 4), (1, 2, 2), (1, 3, 6), (2, 3, 3)])
    }

    #[test]
    fn csr_structure() {
        let g = diamond();
        assert_eq!(g.nodes(), 4);
        assert_eq!(g.edges(), 5);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 1), (2, 4)]);
        let n3: Vec<_> = g.neighbors(3).collect();
        assert!(n3.is_empty());
        assert_eq!(g.max_weight(), 6);
        assert_eq!(g.total_weight(), 16);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(3, &[]);
        assert_eq!(g.nodes(), 3);
        assert_eq!(g.edges(), 0);
        assert_eq!(g.max_weight(), 0);
        assert_eq!(g.neighbors(2).count(), 0);
    }

    #[test]
    fn builder_undirected_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 1, 5).add_undirected_edge(1, 2, 7);
        assert_eq!(b.edge_count(), 4);
        let g = b.build();
        assert_eq!(g.degree(1), 2);
        let mut n1: Vec<_> = g.neighbors(1).collect();
        n1.sort_unstable();
        assert_eq!(n1, vec![(0, 5), (2, 7)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_neighbors_panics() {
        let g = diamond();
        let _ = g.neighbors(10).count();
    }

    #[test]
    fn parallel_edges_and_self_loops_are_allowed() {
        let g = Graph::from_edges(2, &[(0, 1, 1), (0, 1, 2), (1, 1, 3)]);
        assert_eq!(g.edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![(1, 3)]);
    }
}
