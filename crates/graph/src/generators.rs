//! Synthetic graph generators.
//!
//! The paper's Figure 3 uses the California road network. Road networks are
//! characterised by low average degree (≈2.5), near-planar structure and large
//! diameter, which is what makes SSSP on them priority-queue-bound. Lacking
//! the original data set (see the substitution table in `DESIGN.md`), we
//! generate graphs with the same characteristics:
//!
//! * [`grid_graph`] — a √N×√N grid with random weights: planar, degree ≤ 4,
//!   diameter Θ(√N); the closest simple analogue of a road network.
//! * [`random_geometric_graph`] — nodes scattered in the unit square and
//!   connected when within a radius: the standard road-network surrogate.
//! * [`random_graph`] — an Erdős–Rényi-style graph used by tests and by the
//!   low-diameter contrast experiments.

use rank_stats::rng::{RandomSource, Xoshiro256};

use crate::graph::{Graph, GraphBuilder, NodeId, Weight};

/// Generates a `width × height` grid graph with undirected edges between
/// horizontal/vertical neighbours and weights uniform in `[1, max_weight]`.
///
/// # Panics
///
/// Panics if `width`, `height` or `max_weight` is zero.
pub fn grid_graph(width: usize, height: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(width > 0 && height > 0, "grid dimensions must be positive");
    assert!(max_weight > 0, "max weight must be positive");
    let mut rng = Xoshiro256::seeded(seed);
    let mut builder = GraphBuilder::new(width * height);
    let id = |x: usize, y: usize| (y * width + x) as NodeId;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                let w = 1 + rng.next_below(max_weight as u64) as Weight;
                builder.add_undirected_edge(id(x, y), id(x + 1, y), w);
            }
            if y + 1 < height {
                let w = 1 + rng.next_below(max_weight as u64) as Weight;
                builder.add_undirected_edge(id(x, y), id(x, y + 1), w);
            }
        }
    }
    builder.build()
}

/// Generates a random geometric graph: `nodes` points uniform in the unit
/// square, connected (undirected) when within Euclidean distance `radius`,
/// with the edge weight equal to the rounded distance scaled to
/// `[1, max_weight]`.
///
/// A radius around `sqrt(3 / nodes)` gives average degree ≈ 9·π/3 ≈ 9 before
/// thinning; road-like sparsity is obtained with `radius ≈ sqrt(1.5/nodes)`.
///
/// # Panics
///
/// Panics if `nodes == 0`, `radius` is not in `(0, 1]`, or `max_weight == 0`.
pub fn random_geometric_graph(nodes: usize, radius: f64, max_weight: Weight, seed: u64) -> Graph {
    assert!(nodes > 0, "need at least one node");
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    assert!(max_weight > 0, "max weight must be positive");
    let mut rng = Xoshiro256::seeded(seed);
    let points: Vec<(f64, f64)> = (0..nodes)
        .map(|_| (rng.next_f64(), rng.next_f64()))
        .collect();
    // Bucket points into a grid of cell size `radius` so neighbour search is
    // near-linear instead of quadratic.
    let cells_per_side = (1.0 / radius).ceil().max(1.0) as usize;
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((p.1 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut buckets = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells_per_side + cx].push(i);
    }
    let mut builder = GraphBuilder::new(nodes);
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        // Scan the 3x3 neighbourhood of the point's cell.
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                let nx = cx as isize + dx;
                let ny = cy as isize + dy;
                if nx < 0
                    || ny < 0
                    || nx >= cells_per_side as isize
                    || ny >= cells_per_side as isize
                {
                    continue;
                }
                for &j in &buckets[ny as usize * cells_per_side + nx as usize] {
                    if j <= i {
                        continue; // add each undirected edge once
                    }
                    let q = points[j];
                    let dist = ((p.0 - q.0).powi(2) + (p.1 - q.1).powi(2)).sqrt();
                    if dist <= radius {
                        let w = 1 + ((dist / radius) * (max_weight - 1) as f64).round() as Weight;
                        builder.add_undirected_edge(i as NodeId, j as NodeId, w);
                    }
                }
            }
        }
    }
    builder.build()
}

/// Generates a directed Erdős–Rényi-style graph with `nodes` nodes and
/// `edges` uniformly random directed edges (self-loops excluded) with weights
/// uniform in `[1, max_weight]`.
///
/// # Panics
///
/// Panics if `nodes < 2` or `max_weight == 0`.
pub fn random_graph(nodes: usize, edges: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(nodes >= 2, "need at least two nodes");
    assert!(max_weight > 0, "max weight must be positive");
    let mut rng = Xoshiro256::seeded(seed);
    let mut builder = GraphBuilder::new(nodes);
    for _ in 0..edges {
        let (u, v) = rng.next_two_distinct(nodes);
        let w = 1 + rng.next_below(max_weight as u64) as Weight;
        builder.add_edge(u as NodeId, v as NodeId, w);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_graph_shape() {
        let g = grid_graph(10, 8, 100, 1);
        assert_eq!(g.nodes(), 80);
        // Undirected edges: horizontal 9*8 + vertical 10*7 = 142, doubled.
        assert_eq!(g.edges(), 2 * (9 * 8 + 10 * 7));
        // Interior nodes have degree 4, corners 2.
        assert_eq!(g.degree(0), 2);
        assert!(g.max_weight() <= 100 && g.max_weight() >= 1);
    }

    #[test]
    fn grid_graph_is_deterministic() {
        assert_eq!(grid_graph(5, 5, 10, 3), grid_graph(5, 5, 10, 3));
        assert_ne!(grid_graph(5, 5, 10, 3), grid_graph(5, 5, 10, 4));
    }

    #[test]
    fn geometric_graph_is_road_like() {
        let nodes = 2_000;
        let g = random_geometric_graph(nodes, (1.5 / nodes as f64).sqrt(), 50, 7);
        assert_eq!(g.nodes(), nodes);
        let avg_degree = g.edges() as f64 / nodes as f64;
        assert!(
            avg_degree > 0.5 && avg_degree < 12.0,
            "average degree {avg_degree} should be sparse/road-like"
        );
        assert!(g.max_weight() <= 50);
    }

    #[test]
    fn geometric_graph_edges_are_symmetric() {
        let g = random_geometric_graph(300, 0.1, 10, 11);
        for u in 0..g.nodes() as NodeId {
            for (v, w) in g.neighbors(u) {
                assert!(
                    g.neighbors(v).any(|(back, bw)| back == u && bw == w),
                    "edge {u}->{v} missing its reverse"
                );
            }
        }
    }

    #[test]
    fn random_graph_counts() {
        let g = random_graph(50, 400, 20, 9);
        assert_eq!(g.nodes(), 50);
        assert_eq!(g.edges(), 400);
        // No self loops.
        for u in 0..50u32 {
            assert!(g.neighbors(u).all(|(v, _)| v != u));
        }
    }

    #[test]
    #[should_panic(expected = "radius must be in (0, 1]")]
    fn bad_radius_panics() {
        let _ = random_geometric_graph(10, 0.0, 5, 0);
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be positive")]
    fn zero_grid_panics() {
        let _ = grid_graph(0, 5, 5, 0);
    }

    #[test]
    #[should_panic(expected = "need at least two nodes")]
    fn tiny_random_graph_panics() {
        let _ = random_graph(1, 5, 5, 0);
    }
}
