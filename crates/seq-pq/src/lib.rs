//! Sequential priority queue substrates.
//!
//! The MultiQueue of the paper is built from `n` *sequential* priority queues,
//! each protected by its own lock (the original implementation uses boost
//! d-ary heaps). This crate provides several interchangeable sequential
//! implementations behind the [`SequentialPriorityQueue`] trait:
//!
//! * [`BinaryHeap`] — an array-backed binary min-heap;
//!   the default lane used by the concurrent MultiQueue.
//! * [`PairingHeap`] — a pointer-based pairing heap
//!   with `O(1)` insert and amortised `O(log n)` pop; useful when the workload
//!   is insert-heavy.
//! * [`SkipListPq`] — a randomized skiplist keeping all
//!   elements in sorted order, mirroring the structure used by skiplist-based
//!   concurrent priority queues such as Linden–Jonsson.
//! * [`BucketQueue`] — a monotone bucket queue for
//!   bounded integer priorities, the classic structure for Dijkstra with small
//!   edge weights.
//!
//! All queues are **min**-queues over `(key, value)` pairs: `pop` returns the
//! entry with the smallest key, matching the paper's convention that a smaller
//! label means a higher priority.
//!
//! # Example
//!
//! ```
//! use seq_pq::{BinaryHeap, SequentialPriorityQueue};
//!
//! let mut pq = BinaryHeap::new();
//! pq.push(30, "c");
//! pq.push(10, "a");
//! pq.push(20, "b");
//! assert_eq!(pq.peek(), Some((10, &"a")));
//! assert_eq!(pq.pop(), Some((10, "a")));
//! assert_eq!(pq.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary_heap;
pub mod bucket_queue;
pub mod pairing_heap;
pub mod skiplist;

pub use binary_heap::BinaryHeap;
pub use bucket_queue::BucketQueue;
pub use pairing_heap::PairingHeap;
pub use skiplist::SkipListPq;

/// The priority key type used throughout the workspace.
///
/// Smaller keys are higher priority. `u64` covers timestamps, path distances
/// and the strictly increasing labels of the sequential process.
pub type Key = u64;

/// A sequential min-priority queue over `(Key, V)` entries.
///
/// Implementations are not thread-safe by themselves; the concurrent
/// MultiQueue wraps each instance in its own lock.
pub trait SequentialPriorityQueue<V> {
    /// Inserts an entry.
    fn push(&mut self, key: Key, value: V);

    /// Returns the minimum-key entry without removing it.
    fn peek(&self) -> Option<(Key, &V)>;

    /// Returns the minimum key without removing it (cheaper than [`Self::peek`]
    /// for implementations that cache it).
    fn peek_key(&self) -> Option<Key> {
        self.peek().map(|(k, _)| k)
    }

    /// Removes and returns the minimum-key entry.
    fn pop(&mut self) -> Option<(Key, V)>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Returns `true` if the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all entries.
    fn clear(&mut self);
}

/// Which sequential queue implementation to use for a MultiQueue lane.
///
/// This is a plain configuration enum so benchmarks can sweep backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Array-backed binary min-heap (default).
    #[default]
    BinaryHeap,
    /// Pairing heap.
    PairingHeap,
    /// Skiplist-based priority queue.
    SkipList,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::BinaryHeap => write!(f, "binary-heap"),
            Backend::PairingHeap => write!(f, "pairing-heap"),
            Backend::SkipList => write!(f, "skiplist"),
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<Q: SequentialPriorityQueue<u64> + Default>() {
        let mut q = Q::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
        q.push(5, 50);
        q.push(3, 30);
        q.push(8, 80);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_key(), Some(3));
        assert_eq!(q.pop(), Some((3, 30)));
        assert_eq!(q.pop(), Some((5, 50)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn all_backends_satisfy_the_trait_contract() {
        exercise::<BinaryHeap<u64>>();
        exercise::<PairingHeap<u64>>();
        exercise::<SkipListPq<u64>>();
    }

    #[test]
    fn backend_display_names() {
        assert_eq!(Backend::BinaryHeap.to_string(), "binary-heap");
        assert_eq!(Backend::PairingHeap.to_string(), "pairing-heap");
        assert_eq!(Backend::SkipList.to_string(), "skiplist");
        assert_eq!(Backend::default(), Backend::BinaryHeap);
    }
}
