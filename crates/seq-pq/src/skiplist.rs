//! Sequential skiplist-based priority queue.
//!
//! A skiplist keeps all entries in fully sorted order, so `pop` is simply
//! "unlink the head" and `peek` is `O(1)`. This mirrors the data layout used
//! by skiplist-based concurrent priority queues (Lotan–Shavit, Linden–Jonsson)
//! and is provided both as a MultiQueue lane backend and as the substrate of
//! the centralized skiplist baseline in `pq-baselines`.
//!
//! The implementation is an arena-indexed singly linked skiplist (no `unsafe`),
//! with tower heights drawn from a geometric distribution via a SplitMix64
//! generator seeded per instance, so structure layout is deterministic given
//! the seed and insertion sequence.

use rank_stats::rng::{RandomSource, SplitMix64};

use crate::{Key, SequentialPriorityQueue};

const MAX_HEIGHT: usize = 24;
const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node<V> {
    key: Key,
    value: Option<V>,
    /// next[level] = arena index of the successor at that level.
    next: Vec<usize>,
}

/// A sequential skiplist priority queue (min-queue).
#[derive(Clone, Debug)]
pub struct SkipListPq<V> {
    /// `heads[level]` is the first node at that level.
    heads: [usize; MAX_HEIGHT],
    nodes: Vec<Node<V>>,
    free: Vec<usize>,
    len: usize,
    height: usize,
    rng: SplitMix64,
}

impl<V> Default for SkipListPq<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> SkipListPq<V> {
    /// Creates an empty skiplist with the default tower-height seed.
    pub fn new() -> Self {
        Self::with_seed(0xD1CE_5EED)
    }

    /// Creates an empty skiplist whose tower heights are drawn from the given
    /// seed; two lists with the same seed and insertion sequence have
    /// identical shapes.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            heads: [NIL; MAX_HEIGHT],
            nodes: Vec::new(),
            free: Vec::new(),
            len: 0,
            height: 1,
            rng: SplitMix64::seeded(seed),
        }
    }

    fn random_height(&mut self) -> usize {
        // Geometric with p = 1/2, capped at MAX_HEIGHT.
        let bits = self.rng.next_u64();
        let h = (bits.trailing_ones() as usize) + 1;
        h.min(MAX_HEIGHT)
    }

    fn alloc(&mut self, key: Key, value: V, height: usize) -> usize {
        let node = Node {
            key,
            value: Some(value),
            next: vec![NIL; height],
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Verifies sorted order and length accounting (test helper, `O(len)`).
    pub fn is_sorted(&self) -> bool {
        let mut count = 0usize;
        let mut cur = self.heads[0];
        let mut last_key: Option<Key> = None;
        while cur != NIL {
            let node = &self.nodes[cur];
            if node.value.is_none() {
                return false;
            }
            if let Some(prev) = last_key {
                if node.key < prev {
                    return false;
                }
            }
            last_key = Some(node.key);
            count += 1;
            cur = node.next[0];
        }
        count == self.len
    }

    /// Iterates keys in ascending order.
    pub fn iter_keys(&self) -> impl Iterator<Item = Key> + '_ {
        let mut cur = self.heads[0];
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let node = &self.nodes[cur];
                cur = node.next[0];
                Some(node.key)
            }
        })
    }
}

impl<V> SequentialPriorityQueue<V> for SkipListPq<V> {
    fn push(&mut self, key: Key, value: V) {
        let height = self.random_height();
        let idx = self.alloc(key, value, height);
        if height > self.height {
            self.height = height;
        }
        // Find the predecessor at each level, starting from the top.
        // `preds[level]` is NIL when the new node becomes the head there.
        let mut preds = [NIL; MAX_HEIGHT];
        let mut cur = NIL; // current predecessor (NIL = before head)
        for level in (0..self.height).rev() {
            let mut next = if cur == NIL {
                self.heads[level]
            } else if level < self.nodes[cur].next.len() {
                self.nodes[cur].next[level]
            } else {
                // The predecessor from the level above is shorter than this
                // level, which cannot happen when walking top-down from a
                // node that exists at the higher level.
                unreachable!("predecessor must span the current level")
            };
            while next != NIL && self.nodes[next].key < key {
                cur = next;
                next = self.nodes[cur].next[level];
            }
            preds[level] = cur;
        }
        // Splice the new node in at each of its levels.
        for (level, &pred) in preds.iter().enumerate().take(height) {
            if pred == NIL {
                let old_head = self.heads[level];
                self.nodes[idx].next[level] = old_head;
                self.heads[level] = idx;
            } else {
                let old_next = self.nodes[pred].next[level];
                self.nodes[idx].next[level] = old_next;
                self.nodes[pred].next[level] = idx;
            }
        }
        self.len += 1;
    }

    fn peek(&self) -> Option<(Key, &V)> {
        if self.heads[0] == NIL {
            None
        } else {
            let node = &self.nodes[self.heads[0]];
            node.value.as_ref().map(|v| (node.key, v))
        }
    }

    fn peek_key(&self) -> Option<Key> {
        if self.heads[0] == NIL {
            None
        } else {
            Some(self.nodes[self.heads[0]].key)
        }
    }

    fn pop(&mut self) -> Option<(Key, V)> {
        let head = self.heads[0];
        if head == NIL {
            return None;
        }
        // Unlink the head node from every level it participates in.
        let node_height = self.nodes[head].next.len();
        for level in 0..node_height {
            if self.heads[level] == head {
                self.heads[level] = self.nodes[head].next[level];
            }
        }
        let key = self.nodes[head].key;
        let value = self.nodes[head]
            .value
            .take()
            .expect("live node has a value");
        self.free.push(head);
        self.len -= 1;
        // Shrink the effective height when top levels become empty.
        while self.height > 1 && self.heads[self.height - 1] == NIL {
            self.height -= 1;
        }
        Some((key, value))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.heads = [NIL; MAX_HEIGHT];
        self.nodes.clear();
        self.free.clear();
        self.len = 0;
        self.height = 1;
    }
}

impl<V> FromIterator<(Key, V)> for SkipListPq<V> {
    fn from_iter<I: IntoIterator<Item = (Key, V)>>(iter: I) -> Self {
        let mut list = Self::new();
        for (k, v) in iter {
            list.push(k, v);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_list() {
        let mut l: SkipListPq<()> = SkipListPq::new();
        assert!(l.is_empty());
        assert_eq!(l.peek(), None);
        assert_eq!(l.pop(), None);
        assert!(l.is_sorted());
    }

    #[test]
    fn push_pop_sorted_order() {
        let mut l = SkipListPq::new();
        for k in [42u64, 17, 99, 3, 56, 23, 88, 11, 64, 7] {
            l.push(k, k + 1);
            assert!(l.is_sorted());
        }
        let mut out = Vec::new();
        while let Some((k, v)) = l.pop() {
            assert_eq!(v, k + 1);
            out.push(k);
        }
        let mut expected = vec![42u64, 17, 99, 3, 56, 23, 88, 11, 64, 7];
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn duplicate_keys_all_retained() {
        let mut l = SkipListPq::new();
        for i in 0..5u64 {
            l.push(7, i);
        }
        l.push(3, 100);
        assert_eq!(l.len(), 6);
        assert_eq!(l.pop().map(|(k, _)| k), Some(3));
        let mut dup_values: Vec<u64> = std::iter::from_fn(|| l.pop().map(|(_, v)| v)).collect();
        dup_values.sort_unstable();
        assert_eq!(dup_values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn iter_keys_is_ascending() {
        let l: SkipListPq<()> = [5u64, 1, 4, 2, 3].iter().map(|&k| (k, ())).collect();
        let keys: Vec<Key> = l.iter_keys().collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn same_seed_same_shape_behaviour() {
        let mut a = SkipListPq::with_seed(7);
        let mut b = SkipListPq::with_seed(7);
        for k in 0..200u64 {
            a.push(k, ());
            b.push(k, ());
        }
        assert_eq!(
            a.iter_keys().collect::<Vec<_>>(),
            b.iter_keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_resets() {
        let mut l: SkipListPq<u64> = (0..64u64).map(|k| (k, k)).collect();
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.pop(), None);
        l.push(9, 9);
        assert_eq!(l.peek_key(), Some(9));
        assert!(l.is_sorted());
    }

    #[test]
    fn large_insertion_stays_sorted() {
        let mut l = SkipListPq::new();
        // Insert a pseudo-random permutation of 0..2000.
        let mut k = 1u64;
        for _ in 0..2000 {
            k = (k * 48271) % 2001;
            l.push(k, ());
        }
        assert!(l.is_sorted());
        assert_eq!(l.len(), 2000);
        let keys: Vec<Key> = l.iter_keys().collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    proptest! {
        #[test]
        fn prop_pop_order_matches_sorted_input(mut keys in proptest::collection::vec(0u64..10_000, 0..200)) {
            let mut list = SkipListPq::new();
            for &k in &keys {
                list.push(k, ());
            }
            prop_assert!(list.is_sorted());
            let mut popped = Vec::new();
            while let Some((k, ())) = list.pop() {
                popped.push(k);
            }
            keys.sort_unstable();
            prop_assert_eq!(popped, keys);
        }

        #[test]
        fn prop_interleaved_matches_std_reference(ops in proptest::collection::vec(proptest::option::of(0u64..500), 0..200)) {
            let mut list = SkipListPq::new();
            let mut reference = std::collections::BinaryHeap::new();
            for op in ops {
                match op {
                    Some(k) => {
                        list.push(k, ());
                        reference.push(std::cmp::Reverse(k));
                    }
                    None => {
                        let expected = reference.pop().map(|std::cmp::Reverse(k)| k);
                        prop_assert_eq!(list.pop().map(|(k, ())| k), expected);
                    }
                }
            }
            prop_assert!(list.is_sorted());
            prop_assert_eq!(list.len(), reference.len());
        }
    }
}
