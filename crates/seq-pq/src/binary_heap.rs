//! Array-backed binary min-heap.
//!
//! This is the default lane of the concurrent MultiQueue. It is written from
//! scratch (rather than wrapping `std::collections::BinaryHeap`) so that we
//! control tie-breaking, expose `peek_key` without constructing a `Reverse`
//! wrapper, and keep insertion-order stability for equal keys — useful when
//! the sequential process inserts strictly increasing labels and we want
//! deterministic behaviour for duplicate priorities in applications.

use crate::{Key, SequentialPriorityQueue};

/// An array-backed binary min-heap of `(Key, V)` entries.
///
/// Ties on `Key` are broken by insertion order (earlier insertions pop first),
/// which makes the structure stable and keeps runs reproducible.
#[derive(Clone, Debug)]
pub struct BinaryHeap<V> {
    // Each slot stores (key, sequence, value); `sequence` implements stability.
    entries: Vec<(Key, u64, V)>,
    next_sequence: u64,
}

impl<V> Default for BinaryHeap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BinaryHeap<V> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            next_sequence: 0,
        }
    }

    /// Creates an empty heap with space reserved for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            next_sequence: 0,
        }
    }

    /// Current capacity of the backing storage.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    fn less(&self, a: usize, b: usize) -> bool {
        let (ka, sa, _) = &self.entries[a];
        let (kb, sb, _) = &self.entries[b];
        (ka, sa) < (kb, sb)
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.less(idx, parent) {
                self.entries.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        let len = self.entries.len();
        loop {
            let left = 2 * idx + 1;
            let right = left + 1;
            let mut smallest = idx;
            if left < len && self.less(left, smallest) {
                smallest = left;
            }
            if right < len && self.less(right, smallest) {
                smallest = right;
            }
            if smallest == idx {
                break;
            }
            self.entries.swap(idx, smallest);
            idx = smallest;
        }
    }

    /// Checks the heap invariant; used by tests and `debug_assert!`s.
    pub fn is_valid_heap(&self) -> bool {
        (1..self.entries.len()).all(|i| !self.less(i, (i - 1) / 2))
    }

    /// Iterates over all entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &V)> {
        self.entries.iter().map(|(k, _, v)| (*k, v))
    }
}

impl<V> SequentialPriorityQueue<V> for BinaryHeap<V> {
    fn push(&mut self, key: Key, value: V) {
        let seq = self.next_sequence;
        self.next_sequence += 1;
        self.entries.push((key, seq, value));
        self.sift_up(self.entries.len() - 1);
    }

    fn peek(&self) -> Option<(Key, &V)> {
        self.entries.first().map(|(k, _, v)| (*k, v))
    }

    fn peek_key(&self) -> Option<Key> {
        self.entries.first().map(|(k, _, _)| *k)
    }

    fn pop(&mut self) -> Option<(Key, V)> {
        if self.entries.is_empty() {
            return None;
        }
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let (key, _, value) = self.entries.pop().expect("checked non-empty");
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        Some((key, value))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.next_sequence = 0;
    }
}

impl<V> FromIterator<(Key, V)> for BinaryHeap<V> {
    fn from_iter<I: IntoIterator<Item = (Key, V)>>(iter: I) -> Self {
        let mut heap = Self::new();
        for (k, v) in iter {
            heap.push(k, v);
        }
        heap
    }
}

impl<V> Extend<(Key, V)> for BinaryHeap<V> {
    fn extend<I: IntoIterator<Item = (Key, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.push(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_heap() {
        let mut h: BinaryHeap<()> = BinaryHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.peek(), None);
        assert_eq!(h.peek_key(), None);
        assert_eq!(h.pop(), None);
        assert!(h.is_valid_heap());
    }

    #[test]
    fn push_pop_sorted_order() {
        let mut h = BinaryHeap::new();
        for k in [9u64, 4, 7, 1, 8, 2, 6, 3, 5, 0] {
            h.push(k, k * 10);
        }
        assert!(h.is_valid_heap());
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop() {
            assert_eq!(v, k * 10);
            out.push(k);
        }
        assert_eq!(out, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut h = BinaryHeap::new();
        h.push(5, "first");
        h.push(5, "second");
        h.push(5, "third");
        assert_eq!(h.pop(), Some((5, "first")));
        assert_eq!(h.pop(), Some((5, "second")));
        assert_eq!(h.pop(), Some((5, "third")));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = BinaryHeap::new();
        h.push(2, 'b');
        h.push(1, 'a');
        assert_eq!(h.peek(), Some((1, &'a')));
        assert_eq!(h.peek_key(), Some(1));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn clear_resets_state() {
        let mut h: BinaryHeap<u32> = (0..10u64).map(|k| (k, k as u32)).collect();
        assert_eq!(h.len(), 10);
        h.clear();
        assert!(h.is_empty());
        h.push(3, 3);
        assert_eq!(h.pop(), Some((3, 3)));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut h: BinaryHeap<&str> = vec![(3, "c"), (1, "a")].into_iter().collect();
        h.extend(vec![(2, "b")]);
        assert_eq!(h.pop(), Some((1, "a")));
        assert_eq!(h.pop(), Some((2, "b")));
        assert_eq!(h.pop(), Some((3, "c")));
    }

    #[test]
    fn interleaved_push_pop_maintains_invariant() {
        let mut h = BinaryHeap::new();
        for round in 0..50u64 {
            for k in 0..20u64 {
                h.push((k * 7919 + round * 104729) % 1000, ());
            }
            for _ in 0..10 {
                h.pop();
            }
            assert!(h.is_valid_heap());
        }
    }

    #[test]
    fn iter_visits_every_entry() {
        let h: BinaryHeap<u64> = (0..25u64).map(|k| (k, k)).collect();
        let mut keys: Vec<Key> = h.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..25).collect::<Vec<u64>>());
    }

    proptest! {
        #[test]
        fn prop_pop_order_matches_sorted_input(mut keys in proptest::collection::vec(0u64..10_000, 0..300)) {
            let mut heap = BinaryHeap::new();
            for &k in &keys {
                heap.push(k, ());
                prop_assert!(heap.is_valid_heap());
            }
            let mut popped = Vec::new();
            while let Some((k, ())) = heap.pop() {
                popped.push(k);
            }
            keys.sort_unstable();
            prop_assert_eq!(popped, keys);
        }

        #[test]
        fn prop_len_tracks_operations(ops in proptest::collection::vec(proptest::option::of(0u64..100), 0..200)) {
            // Some(k) = push k, None = pop.
            let mut heap = BinaryHeap::new();
            let mut expected_len = 0usize;
            for op in ops {
                match op {
                    Some(k) => {
                        heap.push(k, k);
                        expected_len += 1;
                    }
                    None => {
                        let had = heap.pop().is_some();
                        if had {
                            expected_len -= 1;
                        }
                    }
                }
                prop_assert_eq!(heap.len(), expected_len);
                prop_assert!(heap.is_valid_heap());
            }
        }

        #[test]
        fn prop_peek_is_minimum(keys in proptest::collection::vec(0u64..1_000, 1..100)) {
            let heap: BinaryHeap<()> = keys.iter().map(|&k| (k, ())).collect();
            let min = *keys.iter().min().unwrap();
            prop_assert_eq!(heap.peek_key(), Some(min));
        }
    }
}
