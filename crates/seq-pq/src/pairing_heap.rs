//! Pairing heap.
//!
//! A pointer-based (here: arena-indexed) heap with `O(1)` insert and meld and
//! amortised `O(log n)` delete-min. Insert-heavy workloads — exactly what the
//! MultiQueue's insertion path produces on each lane — benefit from the cheap
//! insert. The implementation uses an index arena with a free list instead of
//! `Box`-based nodes so it stays `unsafe`-free and allocation-friendly; values
//! are stored as `Option<V>` so a popped slot can give up its value without
//! needing `V: Default` or `unsafe`.

use crate::{Key, SequentialPriorityQueue};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node<V> {
    key: Key,
    value: Option<V>,
    /// First child (NIL if none).
    child: usize,
    /// Next sibling in the child list (NIL if none).
    sibling: usize,
}

/// A pairing heap of `(Key, V)` entries (min-heap).
#[derive(Clone, Debug)]
pub struct PairingHeap<V> {
    nodes: Vec<Node<V>>,
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl<V> Default for PairingHeap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PairingHeap<V> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Creates an empty heap with reserved arena capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of arena slots currently allocated (diagnostic helper).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    fn alloc(&mut self, key: Key, value: V) -> usize {
        let node = Node {
            key,
            value: Some(value),
            child: NIL,
            sibling: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Melds two heap roots, returning the root of the combined heap.
    fn meld(&mut self, a: usize, b: usize) -> usize {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        // The node with the smaller key becomes the parent; ties keep `a` on
        // top so melds are deterministic.
        let (parent, child) = if self.nodes[a].key <= self.nodes[b].key {
            (a, b)
        } else {
            (b, a)
        };
        self.nodes[child].sibling = self.nodes[parent].child;
        self.nodes[parent].child = child;
        parent
    }

    /// Two-pass pairing of a child list, returning the new root.
    fn merge_pairs(&mut self, first: usize) -> usize {
        if first == NIL || self.nodes[first].sibling == NIL {
            return first;
        }
        // Pass 1: meld children pairwise, collecting the pair roots.
        let mut pairs = Vec::new();
        let mut cur = first;
        while cur != NIL {
            let a = cur;
            let b = self.nodes[a].sibling;
            let next = if b == NIL { NIL } else { self.nodes[b].sibling };
            self.nodes[a].sibling = NIL;
            if b != NIL {
                self.nodes[b].sibling = NIL;
            }
            pairs.push(self.meld(a, b));
            cur = next;
        }
        // Pass 2: meld the pair roots right-to-left.
        let mut root = pairs.pop().expect("at least one pair");
        while let Some(p) = pairs.pop() {
            root = self.meld(p, root);
        }
        root
    }

    /// Verifies heap order and node accounting over the whole arena
    /// (test/diagnostic helper; runs in `O(len)`).
    pub fn is_valid_heap(&self) -> bool {
        if self.root == NIL {
            return self.len == 0;
        }
        let mut stack = vec![self.root];
        let mut visited = 0usize;
        while let Some(idx) = stack.pop() {
            visited += 1;
            if self.nodes[idx].value.is_none() {
                return false;
            }
            let parent_key = self.nodes[idx].key;
            let mut child = self.nodes[idx].child;
            while child != NIL {
                if self.nodes[child].key < parent_key {
                    return false;
                }
                stack.push(child);
                child = self.nodes[child].sibling;
            }
        }
        visited == self.len
    }
}

impl<V> SequentialPriorityQueue<V> for PairingHeap<V> {
    fn push(&mut self, key: Key, value: V) {
        let idx = self.alloc(key, value);
        self.root = self.meld(self.root, idx);
        self.len += 1;
    }

    fn peek(&self) -> Option<(Key, &V)> {
        if self.root == NIL {
            None
        } else {
            let node = &self.nodes[self.root];
            node.value.as_ref().map(|v| (node.key, v))
        }
    }

    fn peek_key(&self) -> Option<Key> {
        if self.root == NIL {
            None
        } else {
            Some(self.nodes[self.root].key)
        }
    }

    fn pop(&mut self) -> Option<(Key, V)> {
        if self.root == NIL {
            return None;
        }
        let old_root = self.root;
        let first_child = self.nodes[old_root].child;
        self.root = self.merge_pairs(first_child);
        self.len -= 1;
        let key = self.nodes[old_root].key;
        let value = self.nodes[old_root]
            .value
            .take()
            .expect("live node has a value");
        self.free.push(old_root);
        Some((key, value))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }
}

impl<V> FromIterator<(Key, V)> for PairingHeap<V> {
    fn from_iter<I: IntoIterator<Item = (Key, V)>>(iter: I) -> Self {
        let mut heap = Self::new();
        for (k, v) in iter {
            heap.push(k, v);
        }
        heap
    }
}

impl<V> Extend<(Key, V)> for PairingHeap<V> {
    fn extend<I: IntoIterator<Item = (Key, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.push(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_heap() {
        let mut h: PairingHeap<()> = PairingHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.peek(), None);
        assert_eq!(h.peek_key(), None);
        assert_eq!(h.pop(), None);
        assert!(h.is_valid_heap());
    }

    #[test]
    fn push_pop_sorted_order() {
        let mut h = PairingHeap::new();
        for k in [5u64, 3, 9, 1, 7, 0, 8, 2, 6, 4] {
            h.push(k, k * 2);
        }
        assert!(h.is_valid_heap());
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop() {
            assert_eq!(v, k * 2);
            out.push(k);
        }
        assert_eq!(out, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut h = PairingHeap::new();
        for k in 0..100u64 {
            h.push(k, ());
        }
        while h.pop().is_some() {}
        let arena_after_drain = h.arena_len();
        for k in 0..100u64 {
            h.push(k, ());
        }
        // Re-inserting the same number of elements should not grow the arena.
        assert_eq!(h.arena_len(), arena_after_drain);
        assert_eq!(h.len(), 100);
        assert!(h.is_valid_heap());
    }

    #[test]
    fn interleaved_operations() {
        let mut h = PairingHeap::new();
        h.push(10, 'a');
        h.push(5, 'b');
        assert_eq!(h.pop(), Some((5, 'b')));
        h.push(1, 'c');
        h.push(7, 'd');
        assert_eq!(h.peek_key(), Some(1));
        assert_eq!(h.pop(), Some((1, 'c')));
        assert_eq!(h.pop(), Some((7, 'd')));
        assert_eq!(h.pop(), Some((10, 'a')));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn clear_resets() {
        let mut h: PairingHeap<u64> = (0..10u64).map(|k| (k, k)).collect();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        h.push(1, 1);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut h: PairingHeap<&str> = vec![(3, "c"), (1, "a")].into_iter().collect();
        h.extend(vec![(2, "b")]);
        assert_eq!(h.pop(), Some((1, "a")));
        assert_eq!(h.pop(), Some((2, "b")));
        assert_eq!(h.pop(), Some((3, "c")));
    }

    proptest! {
        #[test]
        fn prop_pop_order_matches_sorted_input(mut keys in proptest::collection::vec(0u64..10_000, 0..300)) {
            let mut heap = PairingHeap::new();
            for &k in &keys {
                heap.push(k, ());
            }
            prop_assert!(heap.is_valid_heap());
            let mut popped = Vec::new();
            while let Some((k, ())) = heap.pop() {
                popped.push(k);
            }
            keys.sort_unstable();
            prop_assert_eq!(popped, keys);
        }

        #[test]
        fn prop_interleaved_matches_std_reference(ops in proptest::collection::vec(proptest::option::of(0u64..1_000), 0..300)) {
            // Some(k) = push k, None = pop; compare against std's BinaryHeap.
            let mut heap = PairingHeap::new();
            let mut reference = std::collections::BinaryHeap::new();
            for op in ops {
                match op {
                    Some(k) => {
                        heap.push(k, ());
                        reference.push(std::cmp::Reverse(k));
                    }
                    None => {
                        let expected = reference.pop().map(|std::cmp::Reverse(k)| k);
                        prop_assert_eq!(heap.pop().map(|(k, ())| k), expected);
                    }
                }
                prop_assert!(heap.is_valid_heap());
            }
            prop_assert_eq!(heap.len(), reference.len());
        }
    }
}
