//! Monotone bucket queue.
//!
//! Dijkstra's algorithm on graphs with bounded integer edge weights — the
//! single-source shortest-paths application in the paper's Figure 3 — can use
//! a *monotone* bucket queue: keys never decrease below the last popped key,
//! so a circular array of buckets indexed by key gives `O(1)` push and
//! amortised `O(C)` pop where `C` is the maximum edge weight. This serves both
//! as a fast sequential Dijkstra baseline and as a stress-test companion for
//! the other queues (they must agree on every workload where monotonicity
//! holds).

use std::collections::VecDeque;

use crate::{Key, SequentialPriorityQueue};

/// A monotone bucket queue over integer keys.
///
/// `push` accepts any key at least as large as the last popped key
/// ("monotone" workloads); `pop` returns keys in non-decreasing order.
#[derive(Clone, Debug)]
pub struct BucketQueue<V> {
    /// buckets[i] holds entries with key == base + i (conceptually; the vector
    /// is indexed modulo its length).
    buckets: Vec<VecDeque<(Key, V)>>,
    /// Smallest key that may still be stored.
    current: Key,
    /// Span of representable keys above `current` (the bucket count).
    span: usize,
    len: usize,
}

impl<V> BucketQueue<V> {
    /// Creates a bucket queue able to hold keys in `[popped, popped + span]`
    /// at any point in time, where `popped` is the largest key removed so far.
    ///
    /// For Dijkstra, `span` must be at least the maximum edge weight.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn new(span: usize) -> Self {
        assert!(span > 0, "span must be positive");
        Self {
            buckets: (0..=span).map(|_| VecDeque::new()).collect(),
            current: 0,
            span,
            len: 0,
        }
    }

    /// The key span this queue was configured with.
    pub fn span(&self) -> usize {
        self.span
    }

    /// The smallest key this queue can currently accept.
    pub fn current_floor(&self) -> Key {
        self.current
    }

    fn bucket_index(&self, key: Key) -> usize {
        (key % self.buckets.len() as u64) as usize
    }

    fn advance_to_nonempty(&mut self) {
        if self.len == 0 {
            return;
        }
        while self.buckets[self.bucket_index(self.current)].is_empty() {
            self.current += 1;
        }
    }
}

impl<V> SequentialPriorityQueue<V> for BucketQueue<V> {
    /// Inserts an entry.
    ///
    /// # Panics
    ///
    /// Panics if `key` is below the current floor (the queue is monotone) or
    /// more than `span` above it (would alias an earlier bucket).
    fn push(&mut self, key: Key, value: V) {
        assert!(
            key >= self.current,
            "monotone bucket queue: key {key} below current floor {}",
            self.current
        );
        assert!(
            key - self.current <= self.span as u64,
            "key {key} exceeds span {} above floor {}",
            self.span,
            self.current
        );
        let idx = self.bucket_index(key);
        self.buckets[idx].push_back((key, value));
        self.len += 1;
    }

    fn peek(&self) -> Option<(Key, &V)> {
        if self.len == 0 {
            return None;
        }
        // Scan forward from `current` without mutating (peek must be &self).
        let mut probe = self.current;
        loop {
            let idx = (probe % self.buckets.len() as u64) as usize;
            if let Some((k, v)) = self.buckets[idx].front() {
                return Some((*k, v));
            }
            probe += 1;
        }
    }

    fn pop(&mut self) -> Option<(Key, V)> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_nonempty();
        let idx = self.bucket_index(self.current);
        let entry = self.buckets[idx].pop_front().expect("bucket non-empty");
        self.len -= 1;
        Some(entry)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.current = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_queue() {
        let mut q: BucketQueue<()> = BucketQueue::new(10);
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
        assert_eq!(q.pop(), None);
        assert_eq!(q.span(), 10);
        assert_eq!(q.current_floor(), 0);
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn zero_span_panics() {
        let _: BucketQueue<()> = BucketQueue::new(0);
    }

    #[test]
    fn pops_in_nondecreasing_order() {
        let mut q = BucketQueue::new(16);
        for k in [5u64, 2, 9, 2, 0, 16, 7] {
            q.push(k, k);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = q.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![0, 2, 2, 5, 7, 9, 16]);
    }

    #[test]
    fn monotone_reuse_of_buckets() {
        let mut q = BucketQueue::new(4);
        q.push(0, 'a');
        assert_eq!(q.pop(), Some((0, 'a')));
        // Floor is now 0 (after popping key 0); push keys that wrap around the
        // circular bucket array.
        q.push(3, 'b');
        q.push(4, 'c');
        assert_eq!(q.pop(), Some((3, 'b')));
        q.push(7, 'd');
        assert_eq!(q.pop(), Some((4, 'c')));
        assert_eq!(q.pop(), Some((7, 'd')));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "below current floor")]
    fn non_monotone_push_panics() {
        let mut q = BucketQueue::new(8);
        q.push(5, ());
        q.pop();
        q.push(4, ());
    }

    #[test]
    #[should_panic(expected = "exceeds span")]
    fn out_of_span_push_panics() {
        let mut q = BucketQueue::new(8);
        q.push(9, ());
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q = BucketQueue::new(32);
        for k in [12u64, 30, 4, 19] {
            q.push(k, k * 3);
        }
        while !q.is_empty() {
            let peeked = q.peek().map(|(k, &v)| (k, v));
            let popped = q.pop();
            assert_eq!(peeked, popped);
        }
    }

    #[test]
    fn fifo_within_equal_keys() {
        let mut q = BucketQueue::new(4);
        q.push(2, "first");
        q.push(2, "second");
        assert_eq!(q.pop(), Some((2, "first")));
        assert_eq!(q.pop(), Some((2, "second")));
    }

    #[test]
    fn clear_resets_floor() {
        let mut q = BucketQueue::new(4);
        q.push(3, ());
        q.pop();
        q.clear();
        assert_eq!(q.current_floor(), 0);
        q.push(1, ());
        assert_eq!(q.pop(), Some((1, ())));
    }

    proptest! {
        #[test]
        fn prop_monotone_workload_pops_sorted(increments in proptest::collection::vec(0u64..8, 1..200)) {
            // Build a monotone push sequence: each pushed key is the last
            // popped key plus a bounded increment, interleaved with pops.
            let mut q = BucketQueue::new(8);
            let mut pushed = Vec::new();
            let mut floor = 0u64;
            for (i, inc) in increments.iter().enumerate() {
                let key = floor + inc;
                q.push(key, ());
                pushed.push(key);
                if i % 3 == 2 {
                    if let Some((k, ())) = q.pop() {
                        floor = k;
                    }
                }
            }
            let mut popped: Vec<u64> = Vec::new();
            while let Some((k, ())) = q.pop() {
                popped.push(k);
            }
            prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
