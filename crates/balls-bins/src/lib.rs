//! Balls-into-bins allocation processes.
//!
//! The paper's analysis repeatedly leans on the balls-into-bins literature:
//!
//! * the classic *two-choice* ("power of two choices") process \[5, 26\],
//! * its heavily-loaded, long-lived extension \[7, 30\],
//! * the *(1 + β)-choice* process of Peres, Talwar and Wieder \[30\],
//! * *weighted* processes where ball weights are exponential \[8, 37\], and
//! * *graphical* processes where the two choices are the endpoints of a random
//!   edge (Section 6, future work).
//!
//! Appendix A of the paper shows that under **round-robin insertion** the
//! labelled removal process reduces exactly to a two-choice process on
//! "virtual bins"; Appendix B uses the known Θ(√(t/n·log n)) gap of the
//! single-choice process to prove the divergence lower bound. This crate
//! implements all of those processes so the reductions and gap claims can be
//! checked empirically (experiment T7), and so the exponential-process
//! potential argument has an independent substrate to validate against.
//!
//! # Example
//!
//! ```
//! use balls_bins::{AllocationProcess, ChoiceRule};
//!
//! // 1024 balls into 64 bins with the two-choice rule: the gap between the
//! // most loaded bin and the average is O(log log n), far below single-choice.
//! let mut p = AllocationProcess::new(64, ChoiceRule::TwoChoice, 42);
//! p.insert_many(1024);
//! assert_eq!(p.total_balls(), 1024);
//! assert!(p.load_stats().gap_above_mean <= 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graphical;
pub mod longlived;
pub mod process;
pub mod weighted;

pub use graphical::GraphicalAllocation;
pub use longlived::LongLivedProcess;
pub use process::{AllocationProcess, ChoiceRule, LoadStats};
pub use weighted::WeightedAllocation;
