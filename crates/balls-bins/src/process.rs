//! Core balls-into-bins allocation process with pluggable choice rules.

use rank_stats::rng::{RandomSource, Xoshiro256};
use rank_stats::summary::StreamingSummary;

pub use rank_stats::choice::ChoiceRule;

/// Summary statistics of a load vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadStats {
    /// Mean load over bins.
    pub mean: f64,
    /// Maximum load.
    pub max: u64,
    /// Minimum load.
    pub min: u64,
    /// Maximum load minus the mean (the "gap" studied by \[30\]).
    pub gap_above_mean: f64,
    /// Mean minus the minimum load.
    pub gap_below_mean: f64,
    /// Population standard deviation of the loads.
    pub std_dev: f64,
}

/// A (possibly biased) balls-into-bins insertion process.
#[derive(Clone, Debug)]
pub struct AllocationProcess {
    loads: Vec<u64>,
    rule: ChoiceRule,
    rng: Xoshiro256,
    /// Cumulative insertion probabilities for biased bin selection; empty when
    /// insertion is uniform.
    cumulative_bias: Vec<f64>,
    total: u64,
}

impl AllocationProcess {
    /// Creates a process over `bins` bins with the given choice rule and seed.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if a `DChoice(d)` rule has `d == 0`, or if a
    /// `OnePlusBeta(beta)` rule has `beta` outside `[0, 1]`.
    pub fn new(bins: usize, rule: ChoiceRule, seed: u64) -> Self {
        assert!(bins > 0, "need at least one bin");
        rule.validate();
        Self {
            loads: vec![0; bins],
            rule,
            rng: Xoshiro256::seeded(seed),
            cumulative_bias: Vec::new(),
            total: 0,
        }
    }

    /// Replaces the uniform bin-selection distribution with an explicit one.
    ///
    /// `weights[i]` is proportional to the probability of bin `i` being
    /// *sampled* as a candidate. This models the paper's insertion bias γ.
    ///
    /// # Panics
    ///
    /// Panics if the weight vector length differs from the bin count, if any
    /// weight is negative or non-finite, or if all weights are zero.
    pub fn set_bias(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.loads.len(), "one weight per bin");
        let mut acc = 0.0;
        let mut cumulative = Vec::with_capacity(weights.len());
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        for c in &mut cumulative {
            *c /= acc;
        }
        self.cumulative_bias = cumulative;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.loads.len()
    }

    /// Total number of balls inserted so far.
    pub fn total_balls(&self) -> u64 {
        self.total
    }

    /// Current load vector.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    fn sample_bin(&mut self) -> usize {
        if self.cumulative_bias.is_empty() {
            self.rng.next_index(self.loads.len())
        } else {
            let u = self.rng.next_f64();
            self.cumulative_bias
                .partition_point(|&c| c < u)
                .min(self.loads.len() - 1)
        }
    }

    /// Chooses the destination bin for the next ball according to the rule,
    /// without inserting. Exposed so higher-level processes (the labelled
    /// process's round-robin reduction) can reuse the choice logic.
    pub fn choose_destination(&mut self) -> usize {
        match self.rule {
            ChoiceRule::SingleChoice => self.sample_bin(),
            ChoiceRule::DChoice(d) => {
                let mut best = self.sample_bin();
                for _ in 1..d {
                    let candidate = self.sample_bin();
                    if self.loads[candidate] < self.loads[best] {
                        best = candidate;
                    }
                }
                best
            }
            ChoiceRule::OnePlusBeta(beta) => {
                let first = self.sample_bin();
                if self.rng.next_bool(beta) {
                    let second = self.sample_bin();
                    if self.loads[second] < self.loads[first] {
                        second
                    } else {
                        first
                    }
                } else {
                    first
                }
            }
        }
    }

    /// Inserts one ball and returns the bin it landed in.
    pub fn insert(&mut self) -> usize {
        let bin = self.choose_destination();
        self.loads[bin] += 1;
        self.total += 1;
        bin
    }

    /// Inserts `count` balls.
    pub fn insert_many(&mut self, count: u64) {
        for _ in 0..count {
            self.insert();
        }
    }

    /// Computes summary statistics of the current load vector.
    pub fn load_stats(&self) -> LoadStats {
        load_stats(&self.loads)
    }
}

/// Computes [`LoadStats`] for an arbitrary load vector.
pub fn load_stats(loads: &[u64]) -> LoadStats {
    if loads.is_empty() {
        return LoadStats::default();
    }
    let mut summary = StreamingSummary::new();
    for &l in loads {
        summary.record_u64(l);
    }
    let mean = summary.mean();
    let max = loads.iter().copied().max().unwrap_or(0);
    let min = loads.iter().copied().min().unwrap_or(0);
    LoadStats {
        mean,
        max,
        min,
        gap_above_mean: max as f64 - mean,
        gap_below_mean: mean - min as f64,
        std_dev: summary.std_dev(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conservation_of_balls() {
        let mut p = AllocationProcess::new(10, ChoiceRule::TwoChoice, 1);
        p.insert_many(500);
        assert_eq!(p.total_balls(), 500);
        assert_eq!(p.loads().iter().sum::<u64>(), 500);
        assert_eq!(p.bins(), 10);
    }

    #[test]
    fn two_choice_has_smaller_gap_than_single_choice() {
        let bins = 64;
        let balls = 64 * 200;
        let mut single = AllocationProcess::new(bins, ChoiceRule::SingleChoice, 7);
        let mut double = AllocationProcess::new(bins, ChoiceRule::TwoChoice, 7);
        single.insert_many(balls);
        double.insert_many(balls);
        let gap_single = single.load_stats().gap_above_mean;
        let gap_double = double.load_stats().gap_above_mean;
        // Classic result: single-choice gap ~ sqrt(m/n * log n) (here ~ tens),
        // two-choice gap ~ log log n (a handful). Allow generous slack.
        assert!(
            gap_double * 2.0 < gap_single,
            "two-choice gap {gap_double} should be well below single-choice gap {gap_single}"
        );
        assert!(gap_double <= 6.0, "two-choice gap {gap_double} too large");
    }

    #[test]
    fn one_plus_beta_interpolates_between_rules() {
        let bins = 64;
        let balls = 64 * 200;
        let gap = |beta: f64| {
            let mut p = AllocationProcess::new(bins, ChoiceRule::OnePlusBeta(beta), 11);
            p.insert_many(balls);
            p.load_stats().gap_above_mean
        };
        let g0 = gap(0.0);
        let g_half = gap(0.5);
        let g1 = gap(1.0);
        assert!(
            g1 < g_half,
            "beta=1 gap {g1} should beat beta=0.5 gap {g_half}"
        );
        assert!(
            g_half < g0,
            "beta=0.5 gap {g_half} should beat beta=0 gap {g0}"
        );
    }

    #[test]
    fn beta_zero_equals_single_choice_distributionally() {
        // Not the same random stream, but both should have sizeable gaps.
        let mut a = AllocationProcess::new(32, ChoiceRule::OnePlusBeta(0.0), 3);
        let mut b = AllocationProcess::new(32, ChoiceRule::SingleChoice, 3);
        a.insert_many(3200);
        b.insert_many(3200);
        let ga = a.load_stats().gap_above_mean;
        let gb = b.load_stats().gap_above_mean;
        assert!((ga - gb).abs() < 15.0);
    }

    #[test]
    fn biased_insertion_respects_weights() {
        let mut p = AllocationProcess::new(4, ChoiceRule::SingleChoice, 5);
        p.set_bias(&[8.0, 1.0, 1.0, 0.0]);
        p.insert_many(10_000);
        let loads = p.loads();
        assert_eq!(loads[3], 0, "zero-weight bin must stay empty");
        assert!(
            loads[0] > loads[1] * 5,
            "bin 0 (weight 8) should dominate bin 1 (weight 1): {loads:?}"
        );
    }

    #[test]
    #[should_panic(expected = "one weight per bin")]
    fn bias_length_mismatch_panics() {
        let mut p = AllocationProcess::new(4, ChoiceRule::SingleChoice, 5);
        p.set_bias(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "total weight must be positive")]
    fn all_zero_bias_panics() {
        let mut p = AllocationProcess::new(2, ChoiceRule::SingleChoice, 5);
        p.set_bias(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn invalid_beta_panics() {
        let _ = AllocationProcess::new(2, ChoiceRule::OnePlusBeta(1.5), 0);
    }

    #[test]
    #[should_panic(expected = "need at least one bin")]
    fn zero_bins_panics() {
        let _ = AllocationProcess::new(0, ChoiceRule::SingleChoice, 0);
    }

    #[test]
    fn load_stats_of_known_vector() {
        let stats = load_stats(&[2, 4, 6]);
        assert_eq!(stats.mean, 4.0);
        assert_eq!(stats.max, 6);
        assert_eq!(stats.min, 2);
        assert_eq!(stats.gap_above_mean, 2.0);
        assert_eq!(stats.gap_below_mean, 2.0);
        assert!((stats.std_dev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(load_stats(&[]), LoadStats::default());
    }

    #[test]
    fn choice_rule_names() {
        assert_eq!(ChoiceRule::SingleChoice.name(), "single-choice");
        assert_eq!(ChoiceRule::TwoChoice.name(), "2-choice");
        assert_eq!(ChoiceRule::DChoice(4).name(), "4-choice");
        assert_eq!(ChoiceRule::OnePlusBeta(0.5).name(), "(1+0.5)-choice");
    }

    #[test]
    fn determinism_from_seed() {
        let run = |seed| {
            let mut p = AllocationProcess::new(16, ChoiceRule::TwoChoice, seed);
            p.insert_many(1000);
            p.loads().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    proptest! {
        #[test]
        fn prop_total_equals_sum_of_loads(bins in 1usize..40, balls in 0u64..2000, seed in 0u64..100) {
            let mut p = AllocationProcess::new(bins, ChoiceRule::TwoChoice, seed);
            p.insert_many(balls);
            prop_assert_eq!(p.loads().iter().sum::<u64>(), balls);
            prop_assert_eq!(p.total_balls(), balls);
        }

        #[test]
        fn prop_insert_returns_incremented_bin(bins in 1usize..20, seed in 0u64..100) {
            let mut p = AllocationProcess::new(bins, ChoiceRule::OnePlusBeta(0.7), seed);
            let before = p.loads().to_vec();
            let bin = p.insert();
            prop_assert!(bin < bins);
            prop_assert_eq!(p.loads()[bin], before[bin] + 1);
        }
    }
}
