//! Heavily-loaded / long-lived balls-into-bins process.
//!
//! Appendix A of the paper reduces the round-robin labelled process to a
//! *long-lived* two-choice process on "virtual bins": every removal from queue
//! `i` is a ball insertion into virtual bin `i`, and the two-choice removal
//! rule picks the less-loaded virtual bin. Appendix B then uses the known
//! Θ(t/n + √(t/n · log n)) maximum load of the *single-choice* long-lived
//! process to prove divergence. [`LongLivedProcess`] runs the insertion side
//! of this reduction for an arbitrary number of steps so both gap behaviours
//! can be measured directly (experiment T7).

use rank_stats::rng::{RandomSource, Xoshiro256};

use crate::process::{load_stats, ChoiceRule, LoadStats};

/// A long-lived allocation process tracking the evolution of the load gap.
#[derive(Clone, Debug)]
pub struct LongLivedProcess {
    loads: Vec<u64>,
    rule: ChoiceRule,
    rng: Xoshiro256,
    steps: u64,
}

impl LongLivedProcess {
    /// Creates a process over `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: usize, rule: ChoiceRule, seed: u64) -> Self {
        assert!(bins > 0, "need at least one bin");
        Self {
            loads: vec![0; bins],
            rule,
            rng: Xoshiro256::seeded(seed),
            steps: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.loads.len()
    }

    /// Number of insertion steps performed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current load vector.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Performs one insertion step; returns the chosen bin.
    pub fn step(&mut self) -> usize {
        let n = self.loads.len();
        let bin = match self.rule {
            ChoiceRule::SingleChoice => self.rng.next_index(n),
            ChoiceRule::DChoice(d) => {
                let mut best = self.rng.next_index(n);
                for _ in 1..d {
                    let c = self.rng.next_index(n);
                    if self.loads[c] < self.loads[best] {
                        best = c;
                    }
                }
                best
            }
            ChoiceRule::OnePlusBeta(beta) => {
                let first = self.rng.next_index(n);
                if self.rng.next_bool(beta) {
                    let second = self.rng.next_index(n);
                    if self.loads[second] < self.loads[first] {
                        second
                    } else {
                        first
                    }
                } else {
                    first
                }
            }
        };
        self.loads[bin] += 1;
        self.steps += 1;
        bin
    }

    /// Runs `count` steps.
    pub fn run(&mut self, count: u64) {
        for _ in 0..count {
            self.step();
        }
    }

    /// Runs until `total` steps have been performed, sampling the gap above
    /// the mean every `sample_every` steps. Returns `(step, gap)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn run_sampling_gap(&mut self, total: u64, sample_every: u64) -> Vec<(u64, f64)> {
        assert!(sample_every > 0, "sample interval must be positive");
        let mut samples = Vec::new();
        while self.steps < total {
            self.step();
            if self.steps.is_multiple_of(sample_every) {
                samples.push((self.steps, self.stats().gap_above_mean));
            }
        }
        samples
    }

    /// Current load statistics.
    pub fn stats(&self) -> LoadStats {
        load_stats(&self.loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_accounting() {
        let mut p = LongLivedProcess::new(8, ChoiceRule::TwoChoice, 1);
        p.run(100);
        assert_eq!(p.steps(), 100);
        assert_eq!(p.loads().iter().sum::<u64>(), 100);
        assert_eq!(p.bins(), 8);
    }

    #[test]
    fn two_choice_gap_stays_bounded_as_time_grows() {
        // The heavily-loaded result [7, 30]: the two-choice gap is independent
        // of t (Θ(log n) w.h.p.). Run a long process and check the gap at the
        // end is not much larger than midway through.
        let bins = 32;
        let mut p = LongLivedProcess::new(bins, ChoiceRule::TwoChoice, 77);
        p.run(bins as u64 * 500);
        let mid_gap = p.stats().gap_above_mean;
        p.run(bins as u64 * 4500);
        let end_gap = p.stats().gap_above_mean;
        assert!(
            end_gap <= mid_gap + 3.0 * (bins as f64).ln(),
            "two-choice gap should not grow with time: mid {mid_gap}, end {end_gap}"
        );
        assert!(end_gap < 3.0 * (bins as f64).ln());
    }

    #[test]
    fn single_choice_gap_grows_with_time() {
        let bins = 32;
        let mut p = LongLivedProcess::new(bins, ChoiceRule::SingleChoice, 78);
        p.run(bins as u64 * 500);
        let early_gap = p.stats().gap_above_mean;
        p.run(bins as u64 * 19_500);
        let late_gap = p.stats().gap_above_mean;
        // Expect roughly sqrt(t) growth: from 500 to 20000 per-bin steps the
        // gap should grow by a factor noticeably above 2.
        assert!(
            late_gap > early_gap * 2.0,
            "single-choice gap should diverge: early {early_gap}, late {late_gap}"
        );
    }

    #[test]
    fn sampling_records_requested_points() {
        let mut p = LongLivedProcess::new(4, ChoiceRule::TwoChoice, 5);
        let samples = p.run_sampling_gap(100, 25);
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].0, 25);
        assert_eq!(samples[3].0, 100);
        assert!(samples.iter().all(|&(_, gap)| gap >= 0.0));
    }

    #[test]
    #[should_panic(expected = "sample interval must be positive")]
    fn zero_sample_interval_panics() {
        let mut p = LongLivedProcess::new(4, ChoiceRule::TwoChoice, 5);
        let _ = p.run_sampling_gap(10, 0);
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut p = LongLivedProcess::new(16, ChoiceRule::OnePlusBeta(0.3), seed);
            p.run(2000);
            p.loads().to_vec()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }
}
