//! Weighted balls-into-bins with exponential weights.
//!
//! The proof of Theorem 3 in the paper adapts the Peres–Talwar–Wieder
//! potential argument for *weighted* allocation processes: each ball carries
//! an `Exp(mean)` weight, and the quantity of interest is the gap between a
//! bin's total weight and the average. The tightness discussion (Section 6)
//! cites \[30, Example 2\]: with exponential weights of mean 1 the expected
//! gap of the two-choice process is Θ(log n). [`WeightedAllocation`]
//! implements the weighted process so both facts can be checked empirically.

use rank_stats::rng::{RandomSource, Xoshiro256};
use rank_stats::summary::StreamingSummary;

use crate::process::ChoiceRule;

/// Summary of a weighted load vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WeightedLoadStats {
    /// Mean total weight per bin.
    pub mean: f64,
    /// Maximum total weight.
    pub max: f64,
    /// Minimum total weight.
    pub min: f64,
    /// Max minus mean.
    pub gap_above_mean: f64,
    /// Mean minus min.
    pub gap_below_mean: f64,
}

/// A balls-into-bins process in which each ball has an exponentially
/// distributed weight and the choice rule compares *total bin weights*.
#[derive(Clone, Debug)]
pub struct WeightedAllocation {
    weights: Vec<f64>,
    rule: ChoiceRule,
    ball_mean: f64,
    rng: Xoshiro256,
    balls: u64,
}

impl WeightedAllocation {
    /// Creates a weighted process over `bins` bins where each ball's weight is
    /// `Exp(ball_mean)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `ball_mean <= 0`.
    pub fn new(bins: usize, rule: ChoiceRule, ball_mean: f64, seed: u64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(ball_mean > 0.0, "ball mean must be positive");
        Self {
            weights: vec![0.0; bins],
            rule,
            ball_mean,
            rng: Xoshiro256::seeded(seed),
            balls: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.weights.len()
    }

    /// Number of balls inserted so far.
    pub fn balls(&self) -> u64 {
        self.balls
    }

    /// Per-bin total weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn choose_destination(&mut self) -> usize {
        let n = self.weights.len();
        match self.rule {
            ChoiceRule::SingleChoice => self.rng.next_index(n),
            ChoiceRule::DChoice(d) => {
                let mut best = self.rng.next_index(n);
                for _ in 1..d {
                    let c = self.rng.next_index(n);
                    if self.weights[c] < self.weights[best] {
                        best = c;
                    }
                }
                best
            }
            ChoiceRule::OnePlusBeta(beta) => {
                let first = self.rng.next_index(n);
                if self.rng.next_bool(beta) {
                    let second = self.rng.next_index(n);
                    if self.weights[second] < self.weights[first] {
                        second
                    } else {
                        first
                    }
                } else {
                    first
                }
            }
        }
    }

    /// Inserts one weighted ball, returning `(bin, weight)`.
    pub fn insert(&mut self) -> (usize, f64) {
        let weight = self.rng.next_exponential(self.ball_mean);
        let bin = self.choose_destination();
        self.weights[bin] += weight;
        self.balls += 1;
        (bin, weight)
    }

    /// Inserts `count` balls.
    pub fn insert_many(&mut self, count: u64) {
        for _ in 0..count {
            self.insert();
        }
    }

    /// Summary statistics of the per-bin weights.
    pub fn stats(&self) -> WeightedLoadStats {
        if self.weights.is_empty() {
            return WeightedLoadStats::default();
        }
        let mut s = StreamingSummary::new();
        for &w in &self.weights {
            s.record(w);
        }
        let max = self
            .weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.weights.iter().cloned().fold(f64::INFINITY, f64::min);
        WeightedLoadStats {
            mean: s.mean(),
            max,
            min,
            gap_above_mean: max - s.mean(),
            gap_below_mean: s.mean() - min,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_conservation() {
        let mut p = WeightedAllocation::new(8, ChoiceRule::TwoChoice, 1.0, 3);
        let mut total = 0.0;
        for _ in 0..1000 {
            let (_, w) = p.insert();
            assert!(w >= 0.0);
            total += w;
        }
        let sum: f64 = p.weights().iter().sum();
        assert!((sum - total).abs() < 1e-9);
        assert_eq!(p.balls(), 1000);
    }

    #[test]
    fn mean_weight_per_bin_matches_expectation() {
        let bins = 16;
        let per_bin = 500u64;
        let mut p = WeightedAllocation::new(bins, ChoiceRule::TwoChoice, 2.0, 9);
        p.insert_many(per_bin * bins as u64);
        let stats = p.stats();
        // Each bin holds ~500 balls of mean weight 2 -> ~1000.
        assert!(
            (stats.mean - 1000.0).abs() / 1000.0 < 0.05,
            "mean {} should be near 1000",
            stats.mean
        );
    }

    #[test]
    fn two_choice_weighted_gap_is_modest() {
        // [30, Example 2]: with exponential weights of mean 1, the two-choice
        // gap is Θ(log n) — for n=64 that is a handful of units, while
        // single-choice grows with sqrt(t).
        let bins = 64;
        let balls = 64 * 500;
        let mut two = WeightedAllocation::new(bins, ChoiceRule::TwoChoice, 1.0, 5);
        let mut one = WeightedAllocation::new(bins, ChoiceRule::SingleChoice, 1.0, 5);
        two.insert_many(balls);
        one.insert_many(balls);
        let g2 = two.stats().gap_above_mean;
        let g1 = one.stats().gap_above_mean;
        assert!(
            g2 < g1,
            "two-choice gap {g2} should beat single-choice {g1}"
        );
        assert!(
            g2 < 4.0 * (bins as f64).ln(),
            "two-choice gap {g2} too large"
        );
    }

    #[test]
    #[should_panic(expected = "ball mean must be positive")]
    fn invalid_mean_panics() {
        let _ = WeightedAllocation::new(4, ChoiceRule::TwoChoice, 0.0, 0);
    }

    #[test]
    fn empty_and_default_stats() {
        let p = WeightedAllocation::new(4, ChoiceRule::TwoChoice, 1.0, 0);
        let s = p.stats();
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.gap_above_mean, 0.0);
    }

    #[test]
    fn determinism_from_seed() {
        let run = |seed| {
            let mut p = WeightedAllocation::new(8, ChoiceRule::OnePlusBeta(0.5), 1.0, seed);
            p.insert_many(200);
            p.weights().to_vec()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
