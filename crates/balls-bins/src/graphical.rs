//! Graphical balls-into-bins allocation.
//!
//! Section 6 of the paper sketches an extension where the two choices are not
//! independent uniform bins but the two *endpoints of a random edge* of a
//! fixed graph, and conjectures that for graphs with good expansion the same
//! rank bounds hold. This module implements the graphical allocation process
//! of Peres–Talwar–Wieder so that conjecture can be probed experimentally:
//! the gap on a complete graph matches classic two-choice, degrades gracefully
//! on sparser well-connected graphs, and blows up on poorly connected graphs
//! (e.g. a cycle).

use rank_stats::rng::{RandomSource, Xoshiro256};

use crate::process::{load_stats, LoadStats};

/// A balls-into-bins process whose two choices are the endpoints of a
/// uniformly random edge of a fixed undirected graph.
#[derive(Clone, Debug)]
pub struct GraphicalAllocation {
    loads: Vec<u64>,
    edges: Vec<(usize, usize)>,
    rng: Xoshiro256,
    balls: u64,
}

impl GraphicalAllocation {
    /// Creates a process on a graph with `bins` vertices and the given edges.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, the edge list is empty, or an edge endpoint is
    /// out of range.
    pub fn new(bins: usize, edges: Vec<(usize, usize)>, seed: u64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(!edges.is_empty(), "need at least one edge");
        for &(u, v) in &edges {
            assert!(u < bins && v < bins, "edge ({u},{v}) out of range");
        }
        Self {
            loads: vec![0; bins],
            edges,
            rng: Xoshiro256::seeded(seed),
            balls: 0,
        }
    }

    /// The complete graph on `bins` vertices: equivalent to classic two-choice
    /// (up to the negligible difference of sampling without replacement).
    pub fn complete(bins: usize, seed: u64) -> Self {
        let mut edges = Vec::new();
        for u in 0..bins {
            for v in (u + 1)..bins {
                edges.push((u, v));
            }
        }
        Self::new(bins, edges, seed)
    }

    /// The cycle graph on `bins` vertices: the canonical poorly-mixing case.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 3`.
    pub fn cycle(bins: usize, seed: u64) -> Self {
        assert!(bins >= 3, "a cycle needs at least three vertices");
        let edges = (0..bins).map(|u| (u, (u + 1) % bins)).collect();
        Self::new(bins, edges, seed)
    }

    /// A random d-regular-ish multigraph built from `d` random perfect
    /// matchings-by-shift: vertex `u` is connected to `(u + s_k) mod bins` for
    /// `d` random shifts `s_k`. Good expansion with overwhelming probability.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` or `degree == 0`.
    pub fn random_regular(bins: usize, degree: usize, seed: u64) -> Self {
        assert!(bins >= 2, "need at least two vertices");
        assert!(degree > 0, "degree must be positive");
        let mut seeder = Xoshiro256::seeded(seed ^ 0xABCD_EF01);
        let mut edges = Vec::new();
        for _ in 0..degree {
            let shift = 1 + seeder.next_index(bins - 1);
            for u in 0..bins {
                edges.push((u, (u + shift) % bins));
            }
        }
        Self::new(bins, edges, seed)
    }

    /// Number of vertices (bins).
    pub fn bins(&self) -> usize {
        self.loads.len()
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of balls inserted so far.
    pub fn balls(&self) -> u64 {
        self.balls
    }

    /// Current per-vertex loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Inserts one ball into the less-loaded endpoint of a random edge.
    /// Returns the chosen vertex.
    pub fn insert(&mut self) -> usize {
        let (u, v) = self.edges[self.rng.next_index(self.edges.len())];
        let chosen = if self.loads[u] <= self.loads[v] { u } else { v };
        self.loads[chosen] += 1;
        self.balls += 1;
        chosen
    }

    /// Inserts `count` balls.
    pub fn insert_many(&mut self, count: u64) {
        for _ in 0..count {
            self.insert();
        }
    }

    /// Load statistics over the vertices.
    pub fn stats(&self) -> LoadStats {
        load_stats(&self.loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_conservation() {
        let mut g = GraphicalAllocation::complete(16, 1);
        g.insert_many(1000);
        assert_eq!(g.balls(), 1000);
        assert_eq!(g.loads().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn complete_graph_matches_two_choice_quality() {
        let bins = 32;
        let mut g = GraphicalAllocation::complete(bins, 7);
        g.insert_many(bins as u64 * 300);
        let gap = g.stats().gap_above_mean;
        assert!(
            gap < 2.0 * (bins as f64).ln(),
            "complete-graph gap {gap} too large"
        );
    }

    #[test]
    fn cycle_is_worse_than_complete() {
        let bins = 64;
        let balls = bins as u64 * 300;
        let mut complete = GraphicalAllocation::complete(bins, 3);
        let mut cycle = GraphicalAllocation::cycle(bins, 3);
        complete.insert_many(balls);
        cycle.insert_many(balls);
        let gc = complete.stats().gap_above_mean;
        let gy = cycle.stats().gap_above_mean;
        assert!(
            gy > gc,
            "cycle gap {gy} should exceed complete-graph gap {gc}"
        );
    }

    #[test]
    fn random_regular_is_close_to_complete() {
        let bins = 64;
        let balls = bins as u64 * 300;
        let mut complete = GraphicalAllocation::complete(bins, 11);
        let mut regular = GraphicalAllocation::random_regular(bins, 8, 11);
        complete.insert_many(balls);
        regular.insert_many(balls);
        let gc = complete.stats().gap_above_mean;
        let gr = regular.stats().gap_above_mean;
        // An 8-regular expander should be within a small constant factor.
        assert!(
            gr <= 4.0 * gc.max(1.0),
            "regular-graph gap {gr} should be comparable to complete-graph gap {gc}"
        );
    }

    #[test]
    fn constructors_validate_input() {
        assert_eq!(GraphicalAllocation::cycle(5, 0).edges(), 5);
        assert_eq!(GraphicalAllocation::complete(5, 0).edges(), 10);
        assert_eq!(GraphicalAllocation::random_regular(10, 3, 0).edges(), 30);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = GraphicalAllocation::new(3, vec![(0, 5)], 0);
    }

    #[test]
    #[should_panic(expected = "need at least one edge")]
    fn empty_edges_panics() {
        let _ = GraphicalAllocation::new(3, vec![], 0);
    }

    #[test]
    #[should_panic(expected = "at least three vertices")]
    fn tiny_cycle_panics() {
        let _ = GraphicalAllocation::cycle(2, 0);
    }
}
