//! Histograms for summarising rank-cost distributions.
//!
//! Two flavours are provided:
//!
//! * [`ExactHistogram`] — one bucket per integer value up to a cap; used when
//!   the domain is small (e.g. ranks up to a few thousand) and exact quantiles
//!   are wanted.
//! * [`LogHistogram`] — power-of-two buckets; used for long-tailed rank
//!   distributions where only the order of magnitude matters (e.g. Figure 2's
//!   log-scale mean-rank plot).

/// A histogram with one bucket per integer value in `[0, cap)` plus an
/// overflow bucket.
#[derive(Clone, Debug)]
pub struct ExactHistogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl ExactHistogram {
    /// Creates a histogram covering values `0..cap` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "cap must be positive");
        Self {
            buckets: vec![0; cap],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        if (value as usize) < self.buckets.len() {
            self.buckets[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations that exceeded the exact range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded observations (including overflowed ones).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) computed over the exact buckets.
    ///
    /// Observations in the overflow bucket are treated as equal to the cap,
    /// which biases high quantiles downwards only if the cap was too small —
    /// callers should size the cap generously.
    ///
    /// Returns `None` if nothing has been recorded.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (value, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(value as u64);
            }
        }
        Some(self.buckets.len() as u64)
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
    }
}

/// A histogram with power-of-two buckets: bucket `i` covers `[2^(i-1), 2^i)`,
/// bucket 0 covers the single value 0.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Creates an empty log-bucketed histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile: returns the upper bound of the bucket where
    /// the quantile falls (a factor-of-two overestimate at worst).
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(u64::MAX)
    }

    /// Iterates over `(bucket_upper_bound, count)` pairs with non-zero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_histogram_basic_stats() {
        let mut h = ExactHistogram::new(16);
        for v in [1u64, 2, 2, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 3.6).abs() < 1e-9);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(1.0), Some(10));
    }

    #[test]
    fn exact_histogram_overflow_counted() {
        let mut h = ExactHistogram::new(4);
        h.record(3);
        h.record(100);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 100);
        // Mean still uses the true values.
        assert!((h.mean() - 51.5).abs() < 1e-9);
    }

    #[test]
    fn exact_histogram_empty_quantile() {
        let h = ExactHistogram::new(4);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn exact_histogram_zero_cap_panics() {
        let _ = ExactHistogram::new(0);
    }

    #[test]
    fn exact_histogram_iter_nonzero() {
        let mut h = ExactHistogram::new(8);
        h.record(1);
        h.record(1);
        h.record(5);
        let pairs: Vec<_> = h.iter_nonzero().collect();
        assert_eq!(pairs, vec![(1, 2), (5, 1)]);
    }

    #[test]
    fn log_histogram_bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn log_histogram_stats_and_quantile() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 3, 7, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.2).abs() < 1e-9);
        assert_eq!(h.quantile_upper_bound(0.0), Some(0));
        // 100 lives in bucket [64,128) whose upper bound is 128.
        assert_eq!(h.quantile_upper_bound(1.0), Some(128));
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(5);
        b.record(9);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 9);
        let total: u64 = a.iter_nonzero().map(|(_, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn log_histogram_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile_upper_bound(0.9), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }
}
