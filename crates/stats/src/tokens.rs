//! A deterministic token bucket for rate-based admission control.
//!
//! The service layer meters each named queue's operation rate with one of
//! these: a bucket holds up to `burst` tokens, refills continuously at
//! `rate_per_sec`, and every admitted operation takes one (or more) tokens.
//! When the bucket cannot cover an operation's cost, the operation is
//! *refused* — shed, not queued — which is what keeps an over-budget tenant
//! from degrading its neighbours.
//!
//! Time is **explicit**: every call takes `now_ns`, a monotonic timestamp in
//! nanoseconds supplied by the caller. That keeps the bucket a pure state
//! machine — trivially unit-testable, reproducible in simulation, and free
//! of hidden clock reads on the admission hot path (the server reads its
//! monotonic clock once per request and threads the value through).
//!
//! # Class priority via reserves
//!
//! [`try_take`](TokenBucket::try_take) accepts a `reserve`: the number of
//! tokens that must *remain* after the take. Admitting background-class
//! operations with a positive reserve while urgent-class operations run with
//! reserve `0` gives strict-priority shedding — when a tenant's budget runs
//! low, its background traffic is refused first and the reserved headroom
//! keeps serving urgent traffic — without maintaining separate buckets.

/// A continuously-refilling token bucket with explicit time.
///
/// Token amounts are `f64` so fractional refill (e.g. 1500 ops/sec observed
/// every few hundred microseconds) accumulates without rounding loss.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_ns: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate_per_sec` tokens per second with a
    /// ceiling of `burst` tokens. The bucket starts full (a fresh tenant can
    /// immediately use its whole burst).
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are finite and positive.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "refill rate must be finite and positive"
        );
        assert!(
            burst.is_finite() && burst > 0.0,
            "burst capacity must be finite and positive"
        );
        Self {
            capacity: burst,
            refill_per_ns: rate_per_sec / 1e9,
            tokens: burst,
            last_ns: 0,
        }
    }

    /// The burst ceiling the bucket was built with.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Advances the refill clock to `now_ns`, crediting elapsed time.
    /// Time moving backwards (or standing still) credits nothing — the
    /// bucket never debits for clock skew.
    pub fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_ns {
            let elapsed = (now_ns - self.last_ns) as f64;
            self.tokens = (self.tokens + elapsed * self.refill_per_ns).min(self.capacity);
            self.last_ns = now_ns;
        }
    }

    /// Attempts to take `cost` tokens at time `now_ns`, refusing unless at
    /// least `reserve` tokens would remain afterwards. Returns whether the
    /// take was admitted; a refused take debits nothing.
    pub fn try_take(&mut self, now_ns: u64, cost: f64, reserve: f64) -> bool {
        self.refill(now_ns);
        if self.tokens >= cost + reserve {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// The tokens that would be available at `now_ns` (non-mutating).
    pub fn available(&self, now_ns: u64) -> f64 {
        let credit = if now_ns > self.last_ns {
            (now_ns - self.last_ns) as f64 * self.refill_per_ns
        } else {
            0.0
        };
        (self.tokens + credit).min(self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn starts_full_and_spends_down_to_refusal() {
        let mut b = TokenBucket::new(10.0, 4.0);
        assert_eq!(b.capacity(), 4.0);
        for _ in 0..4 {
            assert!(b.try_take(0, 1.0, 0.0));
        }
        assert!(!b.try_take(0, 1.0, 0.0), "burst exhausted at t=0");
        // A refused take debits nothing: the balance is still ~0, not < 0.
        assert!(b.available(0) < 1e-9);
    }

    #[test]
    fn refills_at_the_configured_rate_and_saturates_at_burst() {
        let mut b = TokenBucket::new(2.0, 4.0);
        for _ in 0..4 {
            assert!(b.try_take(0, 1.0, 0.0));
        }
        // Half a second at 2 tokens/sec refills one token.
        assert!(!b.try_take(SEC / 4, 1.0, 0.0));
        assert!(b.try_take(SEC / 2, 1.0, 0.0));
        // A long idle period cannot overfill past the burst ceiling.
        assert!((b.available(100 * SEC) - 4.0).abs() < 1e-9);
        b.refill(100 * SEC);
        for _ in 0..4 {
            assert!(b.try_take(100 * SEC, 1.0, 0.0));
        }
        assert!(!b.try_take(100 * SEC, 1.0, 0.0));
    }

    #[test]
    fn reserve_gives_urgent_traffic_strict_priority() {
        let mut b = TokenBucket::new(1.0, 4.0);
        // Background ops must leave 2 tokens behind; urgent ops none.
        assert!(b.try_take(0, 1.0, 2.0)); // 4 → 3
        assert!(b.try_take(0, 1.0, 2.0)); // 3 → 2
        assert!(!b.try_take(0, 1.0, 2.0), "background shed at the reserve");
        // The reserved headroom still serves urgent traffic.
        assert!(b.try_take(0, 1.0, 0.0)); // 2 → 1
        assert!(b.try_take(0, 1.0, 0.0)); // 1 → 0
        assert!(!b.try_take(0, 1.0, 0.0), "then urgent is shed too");
    }

    #[test]
    fn urgent_reserve_exactly_exhausted_boundary() {
        let mut b = TokenBucket::new(1.0, 4.0);
        // Background ops reserve 2. Spend down to exactly the reserve…
        assert!(b.try_take(0, 1.0, 2.0)); // 4 → 3
        assert!(b.try_take(0, 1.0, 2.0)); // 3 → 2: tokens == cost + reserve admits
                                          // …the boundary: 2 tokens left, cost 1 + reserve 2 > 2 refuses, and
                                          // a cost that would land exactly *on* the reserve is still admitted.
        assert!(!b.try_take(0, 1.0, 2.0));
        assert!(
            b.try_take(0, 2.0, 0.0),
            "urgent can spend the whole reserve"
        ); // 2 → 0
           // Reserve exactly exhausted: even a zero-reserve (urgent) take of the
           // smallest cost is refused, but a zero-cost probe still "succeeds".
        assert!(!b.try_take(0, 1.0, 0.0));
        assert!(b.try_take(0, 0.0, 0.0), "zero cost against zero tokens");
        assert!(b.available(0) < 1e-9);
    }

    #[test]
    fn refill_across_a_zero_elapsed_tick_credits_nothing() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.try_take(5 * SEC, 2.0, 0.0), "drain at t");
        // Same-timestamp refills (now == last) are zero-elapsed ticks: no
        // credit, no matter how many times the tick repeats.
        for _ in 0..3 {
            b.refill(5 * SEC);
            assert!(b.available(5 * SEC) < 1e-9);
        }
        assert!(!b.try_take(5 * SEC, 1.0, 0.0), "still empty at the same t");
        // The first *positive* elapsed tick credits exactly that sliver —
        // 1ms at 1000/s is one token, not one per zero-tick retried above.
        assert!(b.try_take(5 * SEC + 1_000_000, 1.0, 0.0));
        assert!(!b.try_take(5 * SEC + 1_000_000, 1.0, 0.0));
    }

    #[test]
    fn monotonic_time_regression_never_debits_or_credits() {
        let mut b = TokenBucket::new(1.0, 4.0);
        assert!(b.try_take(10 * SEC, 1.0, 0.0)); // 4 → 3 at t=10s
        let balance = b.available(10 * SEC);
        // A sequence of strictly-regressing timestamps: every observation
        // at the original time must see the balance unchanged, and the
        // regressed clock must not move `last_ns` backwards (which would
        // double-credit the same elapsed span on recovery).
        for t in [9 * SEC, 5 * SEC, 0] {
            b.refill(t);
            assert_eq!(b.available(10 * SEC), balance);
        }
        // Recovery: advancing 0.5s past the *high-water* mark credits half
        // a token (rate 1/s) — a backdated `last_ns` would instead credit
        // the whole regressed span and slam into the burst ceiling.
        b.refill(10 * SEC + SEC / 2);
        assert!((b.available(10 * SEC + SEC / 2) - (balance + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn clock_going_backwards_is_benign() {
        let mut b = TokenBucket::new(1.0, 2.0);
        assert!(b.try_take(10 * SEC, 1.0, 0.0));
        // An earlier timestamp neither credits nor debits.
        let before = b.available(10 * SEC);
        b.refill(5 * SEC);
        assert_eq!(b.available(10 * SEC), before);
        assert!(
            b.try_take(5 * SEC, 1.0, 0.0),
            "remaining token still usable"
        );
    }

    #[test]
    fn fractional_costs_accumulate_exactly() {
        let mut b = TokenBucket::new(1000.0, 1.0);
        // 1 token burst, 0.25 cost: four takes drain it.
        for _ in 0..4 {
            assert!(b.try_take(0, 0.25, 0.0));
        }
        assert!(!b.try_take(0, 0.25, 0.0));
        // 1 ms at 1000/sec refills one full token.
        assert!(b.try_take(1_000_000, 1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "refill rate must be finite and positive")]
    fn zero_rate_panics() {
        let _ = TokenBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "burst capacity must be finite and positive")]
    fn nan_burst_panics() {
        let _ = TokenBucket::new(1.0, f64::NAN);
    }
}
