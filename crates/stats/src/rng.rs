//! Deterministic, allocation-free pseudo-random number generators.
//!
//! The MultiQueue's hot path performs two random queue choices per `delete_min`
//! and one per `insert`; the simulated processes draw millions of random
//! numbers per experiment. We therefore use small, fast, well-understood
//! generators implemented locally so that every run of every experiment is
//! exactly reproducible from a single `u64` seed and does not depend on an
//! external crate's evolution.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator, mainly used to expand a
//!   user seed into the larger state of other generators and for cheap
//!   per-thread seeding.
//! * [`Xoshiro256`] — xoshiro256\*\*, a high-quality general-purpose generator
//!   with 256 bits of state, used everywhere randomness matters statistically.
//!
//! Both implement the [`RandomSource`] trait, which is what the rest of the
//! workspace programs against.

/// A source of uniformly distributed random `u64` values plus convenience
/// derived distributions.
///
/// The provided methods (`next_below`, `next_f64`, `next_bool`,
/// `next_exponential`) are implemented in terms of [`RandomSource::next_u64`],
/// so implementors only supply the core generator.
pub trait RandomSource {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's method: multiply the 64-bit random value by the bound and
        // take the high 64 bits; reject the small biased region.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn next_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Samples an exponentially distributed value with the given `mean`.
    ///
    /// Used by the exponential process of Section 4 of the paper, where each
    /// bin's successive labels differ by `Exp(1/pi_i)` increments.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    fn next_exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive and finite"
        );
        // Inverse transform sampling; 1 - U avoids ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Samples two *distinct* indices uniformly from `[0, bound)`.
    ///
    /// This is the "two random choices" primitive of the MultiQueue removal
    /// rule. When `bound == 1` both returned indices are `0`.
    fn next_two_distinct(&mut self, bound: usize) -> (usize, usize) {
        assert!(bound > 0, "bound must be positive");
        if bound == 1 {
            return (0, 0);
        }
        let a = self.next_index(bound);
        // Sample from the remaining bound-1 slots and skip over `a`.
        let mut b = self.next_index(bound - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    }

    /// Fisher–Yates shuffles the slice in place.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_index(i + 1);
            items.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, fast 64-bit generator.
///
/// Mainly used to expand seeds and to derive independent per-thread seeds.
/// Passes BigCrush when used as a standalone generator, but its 64-bit state
/// makes it unsuitable for experiments requiring very long streams; prefer
/// [`Xoshiro256`] for those.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from the given seed. Any seed (including 0) is fine.
    pub fn seeded(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives a fresh, statistically independent seed. Handy for seeding one
    /// generator per thread from a single experiment seed.
    pub fn derive_seed(&mut self) -> u64 {
        self.next_u64()
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::seeded(0x9E37_79B9_7F4A_7C15)
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workhorse generator of the workspace.
///
/// 256 bits of state, excellent statistical quality, and a few nanoseconds per
/// draw. Seeded via SplitMix64 per the authors' recommendation so that a zero
/// or otherwise poor seed still produces a good state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed, expanding it via SplitMix64.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::seeded(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a generator from an explicit 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the only invalid xoshiro state).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "xoshiro256 state must not be all zeros"
        );
        Self { s: state }
    }

    /// Equivalent to 2^128 calls to `next_u64`; used to give threads
    /// non-overlapping subsequences of a single logical stream.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for jump in JUMP {
            for b in 0..64 {
                if (jump & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Returns a clone of this generator advanced by one jump, leaving `self`
    /// also advanced. Convenient for handing out per-thread streams.
    pub fn split_stream(&mut self) -> Self {
        let child = self.clone();
        self.jump();
        child
    }
}

impl Default for Xoshiro256 {
    fn default() -> Self {
        Self::seeded(0x5EED_5EED_5EED_5EED)
    }
}

impl RandomSource for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference values for seed 1234567 taken from the public-domain
        // reference implementation.
        let mut rng = SplitMix64::seeded(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same sequence.
        let mut rng2 = SplitMix64::seeded(0);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn xoshiro_determinism_and_difference() {
        let mut a = Xoshiro256::seeded(7);
        let mut b = Xoshiro256::seeded(7);
        let mut c = Xoshiro256::seeded(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn next_below_is_in_range_and_covers_values() {
        let mut rng = Xoshiro256::seeded(99);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should be hit");
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Xoshiro256::seeded(123);
        let bound = 8u64;
        let trials = 80_000;
        let mut counts = vec![0u64; bound as usize];
        for _ in 0..trials {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expected = trials as f64 / bound as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates by {dev}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = SplitMix64::seeded(1);
        let _ = rng.next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seeded(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bool_extremes() {
        let mut rng = Xoshiro256::seeded(5);
        for _ in 0..100 {
            assert!(!rng.next_bool(0.0));
            assert!(rng.next_bool(1.0));
            assert!(!rng.next_bool(-0.5));
            assert!(rng.next_bool(1.5));
        }
    }

    #[test]
    fn next_bool_probability_is_respected() {
        let mut rng = Xoshiro256::seeded(17);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.next_bool(0.3)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Xoshiro256::seeded(31);
        let mean = 40.0;
        let n = 200_000;
        let total: f64 = (0..n).map(|_| rng.next_exponential(mean)).sum();
        let observed = total / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.02,
            "observed mean {observed}"
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = Xoshiro256::seeded(3);
        for _ in 0..10_000 {
            assert!(rng.next_exponential(1.0) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "exponential mean must be positive")]
    fn exponential_rejects_bad_mean() {
        let mut rng = Xoshiro256::seeded(3);
        let _ = rng.next_exponential(0.0);
    }

    #[test]
    fn two_distinct_are_distinct_and_in_range() {
        let mut rng = Xoshiro256::seeded(8);
        for _ in 0..10_000 {
            let (a, b) = rng.next_two_distinct(16);
            assert!(a < 16 && b < 16);
            assert_ne!(a, b);
        }
        // Degenerate single-bin case.
        assert_eq!(rng.next_two_distinct(1), (0, 0));
    }

    #[test]
    fn two_distinct_is_uniform_over_pairs() {
        let mut rng = Xoshiro256::seeded(77);
        let n = 5usize;
        let trials = 100_000;
        let mut counts = vec![vec![0u64; n]; n];
        for _ in 0..trials {
            let (a, b) = rng.next_two_distinct(n);
            counts[a][b] += 1;
        }
        let expected = trials as f64 / (n * (n - 1)) as f64;
        for (i, row) in counts.iter().enumerate() {
            for (j, &count) in row.iter().enumerate() {
                if i == j {
                    assert_eq!(count, 0);
                } else {
                    let dev = (count as f64 - expected).abs() / expected;
                    assert!(dev < 0.1, "pair ({i},{j}) deviates by {dev}");
                }
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seeded(4);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn jump_produces_disjoint_looking_streams() {
        let mut base = Xoshiro256::seeded(2024);
        let mut a = base.split_stream();
        let mut b = base.split_stream();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "must not be all zeros")]
    fn zero_state_rejected() {
        let _ = Xoshiro256::from_state([0, 0, 0, 0]);
    }
}
