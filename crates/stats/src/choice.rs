//! The shared sampling rule behind every "power of choice" component.
//!
//! The paper's analysis, the balls-into-bins substrates, and the concurrent
//! MultiQueue all revolve around the same primitive: *sample a few lanes
//! uniformly at random and act on the best one*. [`ChoiceRule`] is the single
//! description of that primitive, shared by
//!
//! * the concurrent queue (`choice_pq::MultiQueueConfig::choice`),
//! * the theory processes (`choice_process::ProcessConfig::choice`), and
//! * the balls-into-bins allocators (`balls_bins::AllocationProcess`),
//!
//! so a scenario can be simulated, analysed, and executed against the real
//! structure with *one* rule value — theory predictions and measurements are
//! guaranteed to describe the same sampling distribution.
//!
//! Two entry points matter to consumers:
//!
//! * [`ChoiceRule::sample_into`] fills a reusable scratch vector with the
//!   sampled lane indices (distinct, uniform), and
//! * [`ChoiceRule::choose_by_key`] additionally resolves the sample to the
//!   lane with the smallest key, which is the whole deleteMin victim-selection
//!   step of the MultiQueue and of the sequential processes.
//!
//! # Determinism
//!
//! For a fixed rule the RNG consumption pattern is fixed: `SingleChoice` and
//! `DChoice(1)` draw one index, `DChoice(2)` draws via
//! [`RandomSource::next_two_distinct`], and `OnePlusBeta(β)` with `β ∈ (0, 1)`
//! draws one Bernoulli then one or two indices. For `n > 1` lanes these are
//! exactly the draws the pre-`ChoiceRule` implementations made, so
//! replay-deterministic traces are preserved (asserted by
//! `tests/choice_semantics.rs` in the workspace root). The degenerate
//! single-lane case is the one divergence: multi-sample rules short-circuit
//! to "every lane" without consuming randomness where the old code drew (and
//! discarded) an index, so `n == 1` traces captured before the refactor do
//! not replay — with one lane every rule picks lane 0 regardless, only the
//! downstream stream position differs.
//!
//! # Example
//!
//! ```
//! use rank_stats::choice::ChoiceRule;
//! use rank_stats::rng::Xoshiro256;
//!
//! let rule = ChoiceRule::DChoice(4);
//! let mut rng = Xoshiro256::seeded(7);
//! let mut scratch = Vec::new();
//! // Keys of 8 lanes; lane 6 holds the smallest key among most samples.
//! let keys = [9u64, 8, 7, 6, 5, 4, 1, 2];
//! let victim = rule
//!     .choose_by_key(&mut rng, keys.len(), &mut scratch, |lane| Some(keys[lane]))
//!     .expect("every lane has a key");
//! assert!(victim < keys.len());
//! // The winner is the best of the 4 sampled lanes, so it beats at least
//! // half of the field on average; with this seed it finds the global best.
//! assert_eq!(victim, 6);
//! ```

use crate::rng::RandomSource;

/// How a removal (or allocation) step samples its candidate lanes.
///
/// `SingleChoice`, `DChoice(2)` and `OnePlusBeta(β)` are the rules the paper
/// analyses; `DChoice(d)` for `d > 2` generalises the two-choice rule to any
/// number of samples (the classic `d`-choice of the balls-into-bins
/// literature). See the crate-level docs of `choice_process` for which rank
/// guarantees each rule carries.
///
/// # Example
///
/// ```
/// use rank_stats::choice::ChoiceRule;
///
/// // The three families, and the β view that unifies them.
/// assert_eq!(ChoiceRule::from_beta(1.0), ChoiceRule::TwoChoice);
/// assert_eq!(ChoiceRule::SingleChoice.beta(), 0.0);
/// assert_eq!(ChoiceRule::DChoice(8).max_samples(), 8);
/// assert_eq!(ChoiceRule::OnePlusBeta(0.75).label(), "beta=0.75");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChoiceRule {
    /// One uniformly random lane (the divergent single-choice process; the
    /// degenerate `d = 1`).
    SingleChoice,
    /// The best of `d` distinct uniformly random lanes (classic `d`-choice;
    /// `d = 2` is the plain MultiQueue rule).
    DChoice(usize),
    /// With probability `β` the best of two random lanes, a single random
    /// lane otherwise — the (1 + β) rule of the paper.
    OnePlusBeta(f64),
}

/// Shorthand so `ChoiceRule::TwoChoice` reads like the literature.
#[allow(non_upper_case_globals)]
impl ChoiceRule {
    /// The two-choice rule (`DChoice(2)`).
    pub const TwoChoice: ChoiceRule = ChoiceRule::DChoice(2);
}

impl ChoiceRule {
    /// The classic two-choice rule (`DChoice(2)`).
    pub const fn two_choice() -> Self {
        ChoiceRule::DChoice(2)
    }

    /// The `d`-choice rule.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn uniform(d: usize) -> Self {
        assert!(d > 0, "d must be positive");
        ChoiceRule::DChoice(d)
    }

    /// Builds the rule corresponding to a two-choice probability `beta`,
    /// normalising the endpoints (`0` → [`ChoiceRule::SingleChoice`], `1` →
    /// [`ChoiceRule::TwoChoice`]); the endpoint representations draw the same
    /// RNG stream as their `OnePlusBeta` spellings, so the normalisation is
    /// observationally invisible.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn from_beta(beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        if beta == 0.0 {
            ChoiceRule::SingleChoice
        } else if beta == 1.0 {
            ChoiceRule::TwoChoice
        } else {
            ChoiceRule::OnePlusBeta(beta)
        }
    }

    /// The effective two-choice probability `β` of this rule: the probability
    /// that a step compares at least two lanes. (`DChoice(d)` with `d ≥ 2`
    /// always does, so its β is 1.)
    pub fn beta(&self) -> f64 {
        match self {
            ChoiceRule::SingleChoice | ChoiceRule::DChoice(1) => 0.0,
            ChoiceRule::DChoice(_) => 1.0,
            ChoiceRule::OnePlusBeta(beta) => *beta,
        }
    }

    /// The largest number of lanes one step may sample.
    pub fn max_samples(&self) -> usize {
        match self {
            ChoiceRule::SingleChoice => 1,
            ChoiceRule::DChoice(d) => *d,
            ChoiceRule::OnePlusBeta(_) => 2,
        }
    }

    /// Checks the rule's parameters, panicking on invalid ones.
    ///
    /// # Panics
    ///
    /// Panics if a `DChoice(d)` rule has `d == 0` or an `OnePlusBeta(beta)`
    /// rule has `beta` outside `[0, 1]`.
    pub fn validate(&self) {
        match self {
            ChoiceRule::SingleChoice => {}
            ChoiceRule::DChoice(d) => assert!(*d > 0, "d must be positive"),
            ChoiceRule::OnePlusBeta(beta) => assert!(
                (0.0..=1.0).contains(beta),
                "beta must be in [0, 1], got {beta}"
            ),
        }
    }

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> String {
        match self {
            ChoiceRule::SingleChoice => "single-choice".to_string(),
            ChoiceRule::DChoice(d) => format!("{d}-choice"),
            ChoiceRule::OnePlusBeta(beta) => format!("(1+{beta})-choice"),
        }
    }

    /// Compact label used in configuration strings and table rows, e.g.
    /// `"d=4"` or `"beta=0.75"`.
    pub fn label(&self) -> String {
        match self {
            ChoiceRule::SingleChoice => "d=1".to_string(),
            ChoiceRule::DChoice(d) => format!("d={d}"),
            ChoiceRule::OnePlusBeta(beta) => format!("beta={beta}"),
        }
    }

    /// Samples this step's candidate lanes out of `0..n` into `out`
    /// (cleared first). The sampled indices are distinct and uniform; when the
    /// rule asks for more samples than there are lanes, every lane is
    /// returned (without consuming randomness).
    ///
    /// `out` is caller-owned so hot paths can reuse one allocation across
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or if the rule itself is invalid (see
    /// [`ChoiceRule::validate`]).
    pub fn sample_into<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        out: &mut Vec<usize>,
    ) {
        assert!(n > 0, "need at least one lane");
        out.clear();
        let d = match self {
            ChoiceRule::SingleChoice => 1,
            ChoiceRule::DChoice(d) => {
                assert!(*d > 0, "d must be positive");
                *d
            }
            ChoiceRule::OnePlusBeta(beta) => {
                assert!(
                    (0.0..=1.0).contains(beta),
                    "beta must be in [0, 1], got {beta}"
                );
                if rng.next_bool(*beta) {
                    2
                } else {
                    1
                }
            }
        };
        match d {
            1 => out.push(rng.next_index(n)),
            2 if n > 1 => {
                let (a, b) = rng.next_two_distinct(n);
                out.push(a);
                out.push(b);
            }
            _ if d >= n => out.extend(0..n),
            _ => {
                // Rejection sampling keeps the scratch as the only storage;
                // the containment scan is O(d) and d ≥ 3 here is small. The
                // d ≥ n case above bounds the rejection rate.
                while out.len() < d {
                    let candidate = rng.next_index(n);
                    if !out.contains(&candidate) {
                        out.push(candidate);
                    }
                }
            }
        }
    }

    /// Runs one full choice step: samples the candidate lanes and returns the
    /// one whose key is smallest. Lanes for which `key_of` returns `None`
    /// (empty lanes) are skipped; returns `None` when every sampled lane is
    /// empty. Ties keep the earlier sample, matching the two-choice
    /// implementations this generalises.
    ///
    /// `scratch` is the reusable sample buffer of [`ChoiceRule::sample_into`].
    pub fn choose_by_key<R, K, F>(
        &self,
        rng: &mut R,
        n: usize,
        scratch: &mut Vec<usize>,
        mut key_of: F,
    ) -> Option<usize>
    where
        R: RandomSource + ?Sized,
        K: PartialOrd,
        F: FnMut(usize) -> Option<K>,
    {
        self.sample_into(rng, n, scratch);
        let mut best: Option<(K, usize)> = None;
        for &lane in scratch.iter() {
            if let Some(key) = key_of(lane) {
                match &best {
                    Some((best_key, _)) if *best_key <= key => {}
                    _ => best = Some((key, lane)),
                }
            }
        }
        best.map(|(_, lane)| lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn beta_roundtrip_and_normalisation() {
        assert_eq!(ChoiceRule::from_beta(0.0), ChoiceRule::SingleChoice);
        assert_eq!(ChoiceRule::from_beta(1.0), ChoiceRule::DChoice(2));
        assert_eq!(ChoiceRule::from_beta(0.5), ChoiceRule::OnePlusBeta(0.5));
        assert_eq!(ChoiceRule::SingleChoice.beta(), 0.0);
        assert_eq!(ChoiceRule::DChoice(1).beta(), 0.0);
        assert_eq!(ChoiceRule::DChoice(8).beta(), 1.0);
        assert_eq!(ChoiceRule::OnePlusBeta(0.25).beta(), 0.25);
        assert_eq!(ChoiceRule::TwoChoice, ChoiceRule::two_choice());
        assert_eq!(ChoiceRule::uniform(3), ChoiceRule::DChoice(3));
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn invalid_beta_panics() {
        let _ = ChoiceRule::from_beta(1.2);
    }

    #[test]
    #[should_panic(expected = "d must be positive")]
    fn zero_d_panics() {
        let _ = ChoiceRule::uniform(0);
    }

    #[test]
    fn max_samples_per_rule() {
        assert_eq!(ChoiceRule::SingleChoice.max_samples(), 1);
        assert_eq!(ChoiceRule::DChoice(5).max_samples(), 5);
        assert_eq!(ChoiceRule::OnePlusBeta(0.3).max_samples(), 2);
    }

    #[test]
    fn names_and_labels() {
        assert_eq!(ChoiceRule::SingleChoice.name(), "single-choice");
        assert_eq!(ChoiceRule::DChoice(4).name(), "4-choice");
        assert_eq!(ChoiceRule::OnePlusBeta(0.5).name(), "(1+0.5)-choice");
        assert_eq!(ChoiceRule::SingleChoice.label(), "d=1");
        assert_eq!(ChoiceRule::DChoice(4).label(), "d=4");
        assert_eq!(ChoiceRule::OnePlusBeta(0.5).label(), "beta=0.5");
    }

    #[test]
    fn samples_are_distinct_and_in_range() {
        let mut rng = Xoshiro256::seeded(3);
        let mut out = Vec::new();
        for d in 1..=10usize {
            for n in 1..=12usize {
                ChoiceRule::DChoice(d).sample_into(&mut rng, n, &mut out);
                assert_eq!(out.len(), d.min(n), "d={d} n={n}");
                assert!(out.iter().all(|&i| i < n));
                let mut sorted = out.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), out.len(), "duplicates for d={d} n={n}");
            }
        }
    }

    #[test]
    fn one_plus_beta_samples_one_or_two() {
        let mut rng = Xoshiro256::seeded(5);
        let mut out = Vec::new();
        let mut singles = 0u32;
        let mut doubles = 0u32;
        for _ in 0..4_000 {
            ChoiceRule::OnePlusBeta(0.5).sample_into(&mut rng, 8, &mut out);
            match out.len() {
                1 => singles += 1,
                2 => doubles += 1,
                other => panic!("unexpected sample count {other}"),
            }
        }
        // β = 0.5: both outcomes around 2000, far from the 4000 extremes.
        assert!(singles > 1_500 && doubles > 1_500, "{singles}/{doubles}");
    }

    #[test]
    fn d_of_one_matches_single_choice_stream() {
        let mut a = Xoshiro256::seeded(11);
        let mut b = Xoshiro256::seeded(11);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for _ in 0..500 {
            ChoiceRule::SingleChoice.sample_into(&mut a, 16, &mut out_a);
            ChoiceRule::DChoice(1).sample_into(&mut b, 16, &mut out_b);
            assert_eq!(out_a, out_b);
        }
    }

    #[test]
    fn beta_one_matches_two_choice_stream() {
        let mut a = Xoshiro256::seeded(13);
        let mut b = Xoshiro256::seeded(13);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for _ in 0..500 {
            ChoiceRule::OnePlusBeta(1.0).sample_into(&mut a, 16, &mut out_a);
            ChoiceRule::TwoChoice.sample_into(&mut b, 16, &mut out_b);
            assert_eq!(out_a, out_b);
        }
    }

    #[test]
    fn choose_by_key_picks_the_smallest_sampled_key() {
        let mut rng = Xoshiro256::seeded(17);
        let mut scratch = Vec::new();
        let keys = [50u64, 40, 30, 20, 10, 60, 70, 80];
        // d = n: every lane is examined, so the global minimum must win.
        let victim = ChoiceRule::DChoice(8)
            .choose_by_key(&mut rng, 8, &mut scratch, |i| Some(keys[i]))
            .unwrap();
        assert_eq!(victim, 4);
    }

    #[test]
    fn choose_by_key_skips_empty_lanes() {
        let mut rng = Xoshiro256::seeded(19);
        let mut scratch = Vec::new();
        // Only lane 2 is non-empty; d = n guarantees it is sampled.
        let victim = ChoiceRule::DChoice(4)
            .choose_by_key(&mut rng, 4, &mut scratch, |i| (i == 2).then_some(5u64));
        assert_eq!(victim, Some(2));
        // All lanes empty → None.
        let victim =
            ChoiceRule::DChoice(4).choose_by_key(&mut rng, 4, &mut scratch, |_| None::<u64>);
        assert_eq!(victim, None);
    }

    #[test]
    fn choose_by_key_breaks_ties_towards_the_first_sample() {
        // All keys equal: the first sampled lane must win, matching the
        // `ka <= kb` tie-break of the historical two-choice implementations.
        let mut scratch = Vec::new();
        for seed in 0..50 {
            let mut paired = Xoshiro256::seeded(seed);
            let mut chooser = Xoshiro256::seeded(seed);
            let (a, _) = paired.next_two_distinct(8);
            let victim = ChoiceRule::TwoChoice
                .choose_by_key(&mut chooser, 8, &mut scratch, |_| Some(1u64))
                .unwrap();
            assert_eq!(victim, a);
        }
    }

    #[test]
    fn d_larger_than_n_examines_every_lane_without_randomness() {
        let mut rng = Xoshiro256::seeded(23);
        let before = rng.clone();
        let mut out = Vec::new();
        ChoiceRule::DChoice(64).sample_into(&mut rng, 4, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        // No randomness was consumed.
        let mut a = rng;
        let mut b = before;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "need at least one lane")]
    fn zero_lanes_panics() {
        let mut rng = Xoshiro256::seeded(1);
        let mut out = Vec::new();
        ChoiceRule::TwoChoice.sample_into(&mut rng, 0, &mut out);
    }
}
