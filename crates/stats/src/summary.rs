//! Streaming summaries and percentile reports.
//!
//! Experiments report the mean, maximum and a few percentiles of rank costs
//! and latencies. [`StreamingSummary`] accumulates count/mean/variance/min/max
//! in constant space (Welford's algorithm); [`Percentiles`] holds a sorted
//! sample and answers arbitrary quantile queries exactly.

/// Constant-space running summary: count, mean, variance, min, max.
#[derive(Clone, Debug, Default)]
pub struct StreamingSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records an integer observation.
    pub fn record_u64(&mut self, value: u64) {
        self.record(value as f64);
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest recorded observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

/// An exact quantile estimator holding all samples.
///
/// Intended for experiment-sized sample counts (millions at most); sorting is
/// deferred and cached until the next mutation.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty estimator with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Records an integer observation.
    pub fn record_u64(&mut self, value: u64) {
        self.record(value as f64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample recorded"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) using the nearest-rank method.
    ///
    /// Returns `None` if no samples have been recorded.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// Median (0.5 quantile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample.
    pub fn max(&mut self) -> Option<f64> {
        self.quantile(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_summary_basics() {
        let mut s = StreamingSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn streaming_summary_merge_matches_single_pass() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = StreamingSummary::new();
        for &v in &values {
            whole.record(v);
        }
        let mut left = StreamingSummary::new();
        let mut right = StreamingSummary::new();
        for &v in &values[..37] {
            left.record(v);
        }
        for &v in &values[37..] {
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingSummary::new();
        a.record(1.0);
        a.record(3.0);
        let b = StreamingSummary::new();
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&b);
        assert_eq!((a.count(), a.mean(), a.variance()), before);
        let mut c = StreamingSummary::new();
        c.merge(&a);
        assert_eq!(c.count(), 2);
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for v in 1..=100u64 {
            p.record_u64(v);
        }
        assert_eq!(p.count(), 100);
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.median(), Some(50.0));
        assert_eq!(p.quantile(0.99), Some(99.0));
        assert_eq!(p.max(), Some(100.0));
        assert!((p.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_empty() {
        let mut p = Percentiles::with_capacity(8);
        assert_eq!(p.quantile(0.5), None);
        assert_eq!(p.mean(), 0.0);
    }

    #[test]
    fn percentiles_interleaved_records_and_queries() {
        let mut p = Percentiles::new();
        p.record(5.0);
        assert_eq!(p.median(), Some(5.0));
        p.record(1.0);
        p.record(9.0);
        assert_eq!(p.median(), Some(5.0));
        p.record(0.5);
        assert_eq!(p.quantile(0.0), Some(0.5));
    }

    #[test]
    fn streaming_single_sample_variance_is_zero() {
        let mut s = StreamingSummary::new();
        s.record(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }
}
