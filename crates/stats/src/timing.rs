//! Throughput measurement helpers.
//!
//! The paper's Figure 1 reports operations per second over a fixed wall-clock
//! window with alternating insert/deleteMin operations. [`OpsTimer`] measures
//! a counted batch of operations, and [`ThroughputReport`] aggregates per-run
//! results (the paper averages 10 trials).

use std::time::{Duration, Instant};

use crate::summary::StreamingSummary;

/// Measures how long a counted batch of operations takes and converts it to
/// a throughput figure.
#[derive(Clone, Copy, Debug)]
pub struct OpsTimer {
    start: Instant,
}

impl Default for OpsTimer {
    fn default() -> Self {
        Self::start()
    }
}

impl OpsTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed wall-clock time since the timer started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the timer (conceptually) and returns operations per second for
    /// `ops` operations completed since `start`.
    pub fn ops_per_second(&self, ops: u64) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            ops as f64 / secs
        }
    }

    /// Returns mean nanoseconds per operation for `ops` operations.
    pub fn nanos_per_op(&self, ops: u64) -> f64 {
        if ops == 0 {
            return 0.0;
        }
        self.elapsed().as_nanos() as f64 / ops as f64
    }
}

/// Aggregates the throughput of repeated trials of the same configuration.
#[derive(Clone, Debug, Default)]
pub struct ThroughputReport {
    label: String,
    trials: StreamingSummary,
}

impl ThroughputReport {
    /// Creates an empty report with a human-readable configuration label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            trials: StreamingSummary::new(),
        }
    }

    /// Records the throughput (operations/second) of one trial.
    pub fn record_trial(&mut self, ops_per_second: f64) {
        self.trials.record(ops_per_second);
    }

    /// Configuration label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials.count()
    }

    /// Mean throughput over all trials (ops/second).
    pub fn mean_throughput(&self) -> f64 {
        self.trials.mean()
    }

    /// Standard deviation of the per-trial throughput.
    pub fn std_dev(&self) -> f64 {
        self.trials.std_dev()
    }

    /// Best (maximum) per-trial throughput.
    pub fn best(&self) -> f64 {
        self.trials.max().unwrap_or(0.0)
    }

    /// Formats a one-line report: label, mean Mops/s, stddev, trial count.
    pub fn to_row(&self) -> String {
        format!(
            "{:<32} {:>10.3} Mops/s  (+/- {:>7.3}, {} trials)",
            self.label,
            self.mean_throughput() / 1e6,
            self.std_dev() / 1e6,
            self.trials()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn ops_timer_measures_positive_throughput() {
        let timer = OpsTimer::start();
        sleep(Duration::from_millis(5));
        let tput = timer.ops_per_second(1_000);
        assert!(tput.is_finite());
        assert!(tput > 0.0);
        // 1000 ops over >= 5 ms is at most 200k ops/s.
        assert!(tput <= 300_000.0, "throughput {tput} is implausibly high");
        assert!(timer.nanos_per_op(1_000) >= 5_000.0 * 0.9);
    }

    #[test]
    fn nanos_per_op_zero_ops() {
        let timer = OpsTimer::start();
        assert_eq!(timer.nanos_per_op(0), 0.0);
    }

    #[test]
    fn throughput_report_aggregates_trials() {
        let mut report = ThroughputReport::new("multiqueue beta=0.5 t=4");
        report.record_trial(1.0e6);
        report.record_trial(3.0e6);
        assert_eq!(report.trials(), 2);
        assert!((report.mean_throughput() - 2.0e6).abs() < 1.0);
        assert_eq!(report.best(), 3.0e6);
        assert_eq!(report.label(), "multiqueue beta=0.5 t=4");
        let row = report.to_row();
        assert!(row.contains("multiqueue"));
        assert!(row.contains("2 trials"));
    }

    #[test]
    fn empty_report_is_zeroed() {
        let report = ThroughputReport::new("empty");
        assert_eq!(report.trials(), 0);
        assert_eq!(report.mean_throughput(), 0.0);
        assert_eq!(report.best(), 0.0);
    }
}
