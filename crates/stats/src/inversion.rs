//! Timestamp-based rank-inversion accounting.
//!
//! Section 5 of the paper measures the "mean rank returned" of the concurrent
//! MultiQueue by recording, for every `deleteMin`, a coherent timestamp and
//! the removed key, then post-processing the merged log: a removal's rank
//! error is the number of keys that were removed *later* (by any thread) but
//! have a *smaller* key — i.e. elements that were still present and better
//! when the removal happened.
//!
//! [`InversionCounter`] implements exactly that post-processing step. For a
//! log of `R` removals it runs in `O(R log R)` using a Fenwick tree over the
//! key ranks.

use crate::fenwick::FenwickTree;

/// One `deleteMin` observation: when it happened and which key it returned.
///
/// Timestamps only need to be totally ordered and consistent across threads;
/// the concurrent queue implementations use a global atomic counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimestampedRemoval {
    /// Monotonic timestamp at which the removal took effect.
    pub timestamp: u64,
    /// The key (priority label) that was removed; smaller is higher priority.
    pub key: u64,
}

impl TimestampedRemoval {
    /// Convenience constructor.
    pub fn new(timestamp: u64, key: u64) -> Self {
        Self { timestamp, key }
    }
}

/// Summary of the rank errors of a removal log.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct InversionSummary {
    /// Number of removals analysed.
    pub removals: u64,
    /// Mean rank of a removal (1 = perfect, i.e. the global minimum was taken).
    pub mean_rank: f64,
    /// Maximum rank over all removals.
    pub max_rank: u64,
    /// Total number of pairwise inversions (later-removed smaller keys summed
    /// over all removals).
    pub total_inversions: u64,
}

/// Post-processor computing per-removal ranks from a merged removal log.
#[derive(Clone, Debug, Default)]
pub struct InversionCounter {
    log: Vec<TimestampedRemoval>,
}

impl InversionCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one observation (in any order; the log is sorted on analysis).
    pub fn record(&mut self, timestamp: u64, key: u64) {
        self.log.push(TimestampedRemoval::new(timestamp, key));
    }

    /// Appends a batch of observations, e.g. one thread's private log.
    pub fn record_all<I: IntoIterator<Item = TimestampedRemoval>>(&mut self, items: I) {
        self.log.extend(items);
    }

    /// Number of recorded removals.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Returns `true` if no removals have been recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Computes the rank of each removal in timestamp order.
    ///
    /// The rank of a removal is 1 plus the number of keys removed strictly
    /// later that are strictly smaller — those keys must have been present
    /// (and preferable) at the time of this removal, so this is a lower bound
    /// on the true instantaneous rank, and equals it when every inserted key
    /// is eventually removed (the benchmark drains the queue).
    pub fn per_removal_ranks(&self) -> Vec<u64> {
        let mut log = self.log.clone();
        log.sort_unstable();
        let n = log.len();
        if n == 0 {
            return Vec::new();
        }
        // Coordinate-compress keys so the Fenwick tree is dense.
        let mut keys: Vec<u64> = log.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        keys.dedup();
        let key_index = |k: u64| keys.partition_point(|&x| x < k);

        // Sweep from the latest removal backwards, maintaining the multiset of
        // keys removed after the current one.
        let mut later = FenwickTree::new(keys.len());
        let mut ranks = vec![0u64; n];
        for i in (0..n).rev() {
            let idx = key_index(log[i].key);
            // Keys removed later that are strictly smaller than this key.
            let smaller_later = if idx == 0 {
                0
            } else {
                later.prefix_sum(idx - 1)
            };
            ranks[i] = smaller_later + 1;
            later.add(idx, 1);
        }
        ranks
    }

    /// Computes the aggregate summary of the recorded log.
    pub fn summarize(&self) -> InversionSummary {
        let ranks = self.per_removal_ranks();
        if ranks.is_empty() {
            return InversionSummary::default();
        }
        let removals = ranks.len() as u64;
        let total: u128 = ranks.iter().map(|&r| r as u128).sum();
        let max_rank = ranks.iter().copied().max().unwrap_or(0);
        let total_inversions: u64 = ranks.iter().map(|&r| r - 1).sum();
        InversionSummary {
            removals,
            mean_rank: total as f64 / removals as f64,
            max_rank,
            total_inversions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RandomSource, Xoshiro256};

    fn brute_force_ranks(log: &[TimestampedRemoval]) -> Vec<u64> {
        let mut sorted = log.to_vec();
        sorted.sort_unstable();
        sorted
            .iter()
            .enumerate()
            .map(|(i, r)| {
                1 + sorted[i + 1..]
                    .iter()
                    .filter(|later| later.key < r.key)
                    .count() as u64
            })
            .collect()
    }

    #[test]
    fn perfectly_ordered_log_has_rank_one() {
        let mut c = InversionCounter::new();
        for t in 0..100u64 {
            c.record(t, t); // removed in exactly increasing key order
        }
        let summary = c.summarize();
        assert_eq!(summary.removals, 100);
        assert_eq!(summary.mean_rank, 1.0);
        assert_eq!(summary.max_rank, 1);
        assert_eq!(summary.total_inversions, 0);
    }

    #[test]
    fn reversed_log_has_maximal_inversions() {
        let mut c = InversionCounter::new();
        let n = 50u64;
        for t in 0..n {
            c.record(t, n - t); // strictly decreasing keys: worst case
        }
        let summary = c.summarize();
        assert_eq!(summary.removals, n);
        // The first removal sees all n-1 later smaller keys, the last sees 0.
        assert_eq!(summary.max_rank, n);
        assert_eq!(summary.total_inversions, n * (n - 1) / 2);
    }

    #[test]
    fn empty_log_summary_is_default() {
        let c = InversionCounter::new();
        assert!(c.is_empty());
        assert_eq!(c.summarize(), InversionSummary::default());
        assert!(c.per_removal_ranks().is_empty());
    }

    #[test]
    fn single_swap_costs_one_inversion() {
        let mut c = InversionCounter::new();
        c.record(0, 2);
        c.record(1, 1);
        c.record(2, 3);
        let ranks = c.per_removal_ranks();
        assert_eq!(ranks, vec![2, 1, 1]);
        let s = c.summarize();
        assert_eq!(s.total_inversions, 1);
        assert_eq!(s.max_rank, 2);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut c = InversionCounter::new();
        // Same events as `single_swap_costs_one_inversion` but recorded out of
        // timestamp order (threads merge their logs arbitrarily).
        c.record(2, 3);
        c.record(0, 2);
        c.record(1, 1);
        assert_eq!(c.per_removal_ranks(), vec![2, 1, 1]);
    }

    #[test]
    fn duplicate_keys_do_not_count_as_inversions() {
        let mut c = InversionCounter::new();
        c.record(0, 5);
        c.record(1, 5);
        c.record(2, 5);
        let s = c.summarize();
        assert_eq!(s.total_inversions, 0);
        assert_eq!(s.mean_rank, 1.0);
    }

    #[test]
    fn randomized_against_brute_force() {
        let mut rng = Xoshiro256::seeded(909);
        for _ in 0..20 {
            let n = 1 + rng.next_index(200);
            let mut c = InversionCounter::new();
            let mut log = Vec::new();
            for t in 0..n as u64 {
                let key = rng.next_below(50);
                c.record(t, key);
                log.push(TimestampedRemoval::new(t, key));
            }
            assert_eq!(c.per_removal_ranks(), brute_force_ranks(&log));
        }
    }

    #[test]
    fn record_all_merges_thread_logs() {
        let mut c = InversionCounter::new();
        let thread_a = vec![
            TimestampedRemoval::new(0, 10),
            TimestampedRemoval::new(2, 30),
        ];
        let thread_b = vec![
            TimestampedRemoval::new(1, 20),
            TimestampedRemoval::new(3, 5),
        ];
        c.record_all(thread_a);
        c.record_all(thread_b);
        assert_eq!(c.len(), 4);
        let ranks = c.per_removal_ranks();
        // Order by timestamp: keys 10, 20, 30, 5 -> ranks 2, 2, 2, 1.
        assert_eq!(ranks, vec![2, 2, 2, 1]);
    }
}
