//! Statistics and utility substrate for the power-of-choice reproduction.
//!
//! This crate contains the small, dependency-free building blocks that every
//! other crate in the workspace relies on:
//!
//! * [`choice`] — the shared [`ChoiceRule`] sampling rule
//!   (single-choice, `d`-choice, (1 + β)) used identically by the concurrent
//!   MultiQueue, the theory processes and the balls-into-bins allocators.
//! * [`rng`] — deterministic, fast pseudo-random number generators
//!   ([`SplitMix64`] and [`Xoshiro256`]) used on
//!   the hot paths of the MultiQueue and of the simulated processes. Using our
//!   own PRNGs keeps every experiment exactly reproducible from a seed.
//! * [`fenwick`] — a Fenwick (binary indexed) tree used for *exact* rank
//!   accounting: given the set of labels still present in the system, the rank
//!   of a removed label is a prefix-sum query.
//! * [`order`] — an order-statistics multiset built on the Fenwick tree, with
//!   `rank`, `select` and removal, the workhorse of the sequential-process cost
//!   accounting.
//! * [`histogram`] — log-bucketed histograms and exact small-domain histograms
//!   used to summarise rank distributions.
//! * [`summary`] — streaming mean/min/max/variance and percentile summaries.
//! * [`inversion`] — the timestamp-based rank-inversion counter replicating the
//!   measurement methodology of Section 5 of the paper.
//! * [`timing`] — throughput measurement helpers (operations per second over a
//!   wall-clock window).
//! * [`tokens`] — a deterministic, explicit-time token bucket used by the
//!   service layer for per-tenant rate admission.
//!
//! # Example
//!
//! ```
//! use rank_stats::rng::{RandomSource, Xoshiro256};
//! use rank_stats::order::OrderStatisticsSet;
//!
//! let mut rng = Xoshiro256::seeded(42);
//! let mut set = OrderStatisticsSet::with_capacity(1024);
//! for _ in 0..100 {
//!     set.insert(rng.next_below(1024));
//! }
//! let smallest = set.select(0).unwrap();
//! assert_eq!(set.rank(smallest), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod choice;
pub mod fenwick;
pub mod histogram;
pub mod inversion;
pub mod order;
pub mod rng;
pub mod summary;
pub mod timing;
pub mod tokens;

pub use choice::ChoiceRule;
pub use fenwick::FenwickTree;
pub use histogram::{ExactHistogram, LogHistogram};
pub use inversion::{InversionCounter, TimestampedRemoval};
pub use order::OrderStatisticsSet;
pub use rng::{RandomSource, SplitMix64, Xoshiro256};
pub use summary::{Percentiles, StreamingSummary};
pub use timing::{OpsTimer, ThroughputReport};
pub use tokens::TokenBucket;
