//! Fenwick (binary indexed) tree over `u64` counts.
//!
//! The sequential process of the paper charges each removal the *rank* of the
//! removed label among all labels still present. With up to tens of millions
//! of labels, recomputing ranks naively is quadratic; a Fenwick tree gives
//! `O(log M)` point updates and prefix-sum queries, which is what
//! [`crate::order::OrderStatisticsSet`] builds on.

/// A Fenwick tree (binary indexed tree) storing non-negative counts per index.
///
/// Indices are `0..len()`. Internally the classic 1-based layout is used.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FenwickTree {
    // tree[0] unused; tree[i] covers a range ending at i (1-based).
    tree: Vec<u64>,
}

impl FenwickTree {
    /// Creates a tree with `len` zero-initialised slots.
    pub fn new(len: usize) -> Self {
        Self {
            tree: vec![0; len + 1],
        }
    }

    /// Builds a tree from per-index counts in `O(len)`.
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut tree = vec![0u64; counts.len() + 1];
        for (i, &c) in counts.iter().enumerate() {
            let idx = i + 1;
            tree[idx] += c;
            let parent = idx + (idx & idx.wrapping_neg());
            if parent < tree.len() {
                let carried = tree[idx];
                tree[parent] += carried;
            }
        }
        Self { tree }
    }

    /// Number of addressable slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Returns `true` if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to the count at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn add(&mut self, index: usize, delta: u64) {
        assert!(index < self.len(), "index {index} out of bounds");
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Subtracts `delta` from the count at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()` or if the stored counts would underflow
    /// (detected in debug assertions via the prefix sums staying consistent).
    pub fn sub(&mut self, index: usize, delta: u64) {
        assert!(index < self.len(), "index {index} out of bounds");
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i]
                .checked_sub(delta)
                .expect("fenwick count underflow");
            i += i & i.wrapping_neg();
        }
    }

    /// Returns the sum of counts over `0..=index`.
    ///
    /// Querying an index `>= len()` returns the total.
    pub fn prefix_sum(&self, index: usize) -> u64 {
        let mut i = (index + 1).min(self.len());
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Returns the total of all counts.
    pub fn total(&self) -> u64 {
        self.prefix_sum(self.len().saturating_sub(1))
    }

    /// Returns the sum of counts over the inclusive range `[lo, hi]`.
    ///
    /// Returns 0 if `lo > hi`.
    pub fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        if lo > hi {
            return 0;
        }
        let upper = self.prefix_sum(hi);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix_sum(lo - 1)
        }
    }

    /// Finds the smallest index `i` such that `prefix_sum(i) >= target`,
    /// or `None` if the total is smaller than `target` or `target == 0`.
    ///
    /// This is the `select` operation: with unit counts it returns the index
    /// of the `target`-th smallest present element (1-based).
    pub fn find_by_prefix(&self, target: u64) -> Option<usize> {
        if target == 0 || target > self.total() {
            return None;
        }
        let mut remaining = target;
        let mut pos = 0usize; // 1-based position accumulated so far
        let mut mask = self.len().next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        Some(pos) // pos is 0-based index of the answer because pos+1 is 1-based
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RandomSource, Xoshiro256};

    /// Brute-force reference used to cross-check the tree.
    #[derive(Clone)]
    struct Naive {
        counts: Vec<u64>,
    }

    impl Naive {
        fn new(len: usize) -> Self {
            Self {
                counts: vec![0; len],
            }
        }
        fn prefix_sum(&self, idx: usize) -> u64 {
            self.counts.iter().take(idx + 1).sum()
        }
        fn find_by_prefix(&self, target: u64) -> Option<usize> {
            if target == 0 {
                return None;
            }
            let mut acc = 0;
            for (i, &c) in self.counts.iter().enumerate() {
                acc += c;
                if acc >= target {
                    return Some(i);
                }
            }
            None
        }
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = FenwickTree::new(0);
        assert!(t.is_empty());
        assert_eq!(t.total(), 0);
        assert_eq!(t.find_by_prefix(1), None);
    }

    #[test]
    fn basic_add_and_prefix() {
        let mut t = FenwickTree::new(10);
        t.add(0, 5);
        t.add(3, 2);
        t.add(9, 1);
        assert_eq!(t.prefix_sum(0), 5);
        assert_eq!(t.prefix_sum(2), 5);
        assert_eq!(t.prefix_sum(3), 7);
        assert_eq!(t.prefix_sum(9), 8);
        assert_eq!(t.total(), 8);
        assert_eq!(t.range_sum(1, 3), 2);
        assert_eq!(t.range_sum(4, 8), 0);
        assert_eq!(t.range_sum(5, 2), 0);
    }

    #[test]
    fn sub_reverses_add() {
        let mut t = FenwickTree::new(8);
        t.add(4, 10);
        t.sub(4, 4);
        assert_eq!(t.prefix_sum(7), 6);
        t.sub(4, 6);
        assert_eq!(t.total(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut t = FenwickTree::new(4);
        t.add(1, 1);
        t.sub(1, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics() {
        let mut t = FenwickTree::new(4);
        t.add(4, 1);
    }

    #[test]
    fn from_counts_matches_incremental() {
        let counts = [3u64, 0, 7, 1, 0, 0, 2, 9, 4];
        let built = FenwickTree::from_counts(&counts);
        let mut incremental = FenwickTree::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                incremental.add(i, c);
            }
        }
        for i in 0..counts.len() {
            assert_eq!(built.prefix_sum(i), incremental.prefix_sum(i));
        }
    }

    #[test]
    fn find_by_prefix_simple() {
        let t = FenwickTree::from_counts(&[0, 2, 0, 3, 1]);
        assert_eq!(t.find_by_prefix(1), Some(1));
        assert_eq!(t.find_by_prefix(2), Some(1));
        assert_eq!(t.find_by_prefix(3), Some(3));
        assert_eq!(t.find_by_prefix(5), Some(3));
        assert_eq!(t.find_by_prefix(6), Some(4));
        assert_eq!(t.find_by_prefix(7), None);
        assert_eq!(t.find_by_prefix(0), None);
    }

    #[test]
    fn randomized_against_naive() {
        let mut rng = Xoshiro256::seeded(555);
        for _round in 0..20 {
            let len = 1 + rng.next_index(60);
            let mut tree = FenwickTree::new(len);
            let mut naive = Naive::new(len);
            for _op in 0..200 {
                let idx = rng.next_index(len);
                let delta = rng.next_below(5);
                tree.add(idx, delta);
                naive.counts[idx] += delta;
                let q = rng.next_index(len);
                assert_eq!(tree.prefix_sum(q), naive.prefix_sum(q));
                let target = rng.next_below(naive.prefix_sum(len - 1) + 2);
                assert_eq!(tree.find_by_prefix(target), naive.find_by_prefix(target));
            }
        }
    }

    #[test]
    fn prefix_beyond_len_is_total() {
        let t = FenwickTree::from_counts(&[1, 2, 3]);
        assert_eq!(t.prefix_sum(100), 6);
    }
}
