//! Order-statistics multiset over a bounded integer universe.
//!
//! The sequential process inserts labels `0..M` and repeatedly asks: "what is
//! the rank of label `x` among the labels still present?" and "which label is
//! currently the `k`-th smallest?". [`OrderStatisticsSet`] answers both in
//! `O(log M)` using a [`FenwickTree`], and grows
//! its universe on demand so callers never need to pre-declare `M`.

use crate::fenwick::FenwickTree;

/// A multiset of `u64` keys from a bounded universe supporting rank and select.
///
/// Ranks are 1-based, matching the paper's convention that the best possible
/// removal has rank 1.
#[derive(Clone, Debug, Default)]
pub struct OrderStatisticsSet {
    tree: FenwickTree,
    len: u64,
}

impl OrderStatisticsSet {
    /// Creates an empty set with capacity for keys in `[0, capacity)`.
    ///
    /// The capacity grows automatically when larger keys are inserted.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            tree: FenwickTree::new(capacity),
            len: 0,
        }
    }

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Number of elements currently stored (counting multiplicity).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn ensure_capacity(&mut self, key: u64) {
        let needed = key as usize + 1;
        if needed > self.tree.len() {
            // Geometric growth, rebuilding the tree from the old prefix sums.
            let new_len = needed.next_power_of_two().max(64);
            let mut counts = vec![0u64; new_len];
            for (i, count) in counts.iter_mut().enumerate().take(self.tree.len()) {
                *count = self.tree.range_sum(i, i);
            }
            self.tree = FenwickTree::from_counts(&counts);
        }
    }

    /// Inserts one occurrence of `key`.
    pub fn insert(&mut self, key: u64) {
        self.ensure_capacity(key);
        self.tree.add(key as usize, 1);
        self.len += 1;
    }

    /// Removes one occurrence of `key`. Returns `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        if (key as usize) >= self.tree.len() || self.count(key) == 0 {
            return false;
        }
        self.tree.sub(key as usize, 1);
        self.len -= 1;
        true
    }

    /// Number of stored occurrences of `key`.
    pub fn count(&self, key: u64) -> u64 {
        if (key as usize) >= self.tree.len() {
            0
        } else {
            self.tree.range_sum(key as usize, key as usize)
        }
    }

    /// Returns `true` if at least one occurrence of `key` is stored.
    pub fn contains(&self, key: u64) -> bool {
        self.count(key) > 0
    }

    /// The 1-based rank of `key`: the number of stored elements with value
    /// `<= key` (including `key` itself if present). This matches the paper's
    /// definition "the number of elements currently in the system which have
    /// lower label than it (including itself)".
    pub fn rank(&self, key: u64) -> u64 {
        if self.tree.is_empty() {
            return 0;
        }
        let idx = (key as usize).min(self.tree.len() - 1);
        self.tree.prefix_sum(idx)
    }

    /// The number of stored elements strictly smaller than `key`.
    pub fn rank_strict(&self, key: u64) -> u64 {
        if key == 0 || self.tree.is_empty() {
            return 0;
        }
        let idx = ((key - 1) as usize).min(self.tree.len() - 1);
        self.tree.prefix_sum(idx)
    }

    /// Returns the `k`-th smallest stored key (0-based), or `None` if `k >= len()`.
    pub fn select(&self, k: u64) -> Option<u64> {
        if k >= self.len {
            return None;
        }
        self.tree.find_by_prefix(k + 1).map(|i| i as u64)
    }

    /// The smallest stored key, if any.
    pub fn min(&self) -> Option<u64> {
        self.select(0)
    }

    /// The largest stored key, if any.
    pub fn max(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            self.select(self.len - 1)
        }
    }

    /// Removes and returns the rank of `key` in a single operation: the common
    /// pattern when charging a removal its rank cost.
    ///
    /// Returns `None` (and does not modify the set) if `key` is not present.
    pub fn remove_and_rank(&mut self, key: u64) -> Option<u64> {
        if !self.contains(key) {
            return None;
        }
        let r = self.rank(key);
        self.remove(key);
        Some(r)
    }
}

impl FromIterator<u64> for OrderStatisticsSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut set = Self::new();
        for k in iter {
            set.insert(k);
        }
        set
    }
}

impl Extend<u64> for OrderStatisticsSet {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for k in iter {
            self.insert(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RandomSource, Xoshiro256};
    use std::collections::BTreeMap;

    #[test]
    fn empty_set_queries() {
        let s = OrderStatisticsSet::new();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.rank(10), 0);
        assert_eq!(s.select(0), None);
        assert_eq!(s.count(3), 0);
    }

    #[test]
    fn insert_rank_select_roundtrip() {
        let mut s = OrderStatisticsSet::with_capacity(16);
        for k in [5u64, 1, 9, 3, 7] {
            s.insert(k);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert_eq!(s.rank(1), 1);
        assert_eq!(s.rank(5), 3);
        assert_eq!(s.rank(9), 5);
        assert_eq!(s.rank(6), 3); // 1,3,5 are <= 6
        assert_eq!(s.rank_strict(5), 2);
        assert_eq!(s.select(0), Some(1));
        assert_eq!(s.select(2), Some(5));
        assert_eq!(s.select(4), Some(9));
        assert_eq!(s.select(5), None);
    }

    #[test]
    fn duplicates_are_counted() {
        let mut s = OrderStatisticsSet::new();
        s.insert(4);
        s.insert(4);
        s.insert(4);
        assert_eq!(s.count(4), 3);
        assert_eq!(s.rank(4), 3);
        assert!(s.remove(4));
        assert_eq!(s.count(4), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut s = OrderStatisticsSet::new();
        s.insert(2);
        assert!(!s.remove(3));
        assert!(!s.remove(100_000));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_and_rank_charges_correct_cost() {
        let mut s: OrderStatisticsSet = (0..10u64).collect();
        // Removing the minimum costs rank 1.
        assert_eq!(s.remove_and_rank(0), Some(1));
        // Now removing key 5 costs rank 5 (1,2,3,4,5 remain below or equal).
        assert_eq!(s.remove_and_rank(5), Some(5));
        assert_eq!(s.remove_and_rank(5), None);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn capacity_grows_on_demand() {
        let mut s = OrderStatisticsSet::with_capacity(4);
        s.insert(2);
        s.insert(1_000);
        s.insert(70_000);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), Some(70_000));
        assert_eq!(s.rank(1_000), 2);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: OrderStatisticsSet = vec![3u64, 1, 2].into_iter().collect();
        s.extend([10u64, 0]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.select(0), Some(0));
        assert_eq!(s.select(4), Some(10));
    }

    #[test]
    fn randomized_against_btreemap_reference() {
        let mut rng = Xoshiro256::seeded(2718);
        let mut set = OrderStatisticsSet::with_capacity(64);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        let universe = 200u64;
        for _ in 0..3_000 {
            let key = rng.next_below(universe);
            if rng.next_bool(0.6) {
                set.insert(key);
                *reference.entry(key).or_insert(0) += 1;
            } else {
                let expected = reference.get(&key).copied().unwrap_or(0) > 0;
                assert_eq!(set.remove(key), expected);
                if expected {
                    let c = reference.get_mut(&key).unwrap();
                    *c -= 1;
                    if *c == 0 {
                        reference.remove(&key);
                    }
                }
            }
            // Spot-check rank and select against the reference.
            let probe = rng.next_below(universe);
            let expected_rank: u64 = reference
                .iter()
                .filter(|(k, _)| **k <= probe)
                .map(|(_, c)| *c)
                .sum();
            assert_eq!(set.rank(probe), expected_rank);
            let total: u64 = reference.values().sum();
            assert_eq!(set.len(), total);
            if total > 0 {
                let k = rng.next_below(total);
                let mut acc = 0;
                let mut expected_select = None;
                for (key, c) in &reference {
                    acc += c;
                    if acc > k {
                        expected_select = Some(*key);
                        break;
                    }
                }
                assert_eq!(set.select(k), expected_select);
            }
        }
    }
}
