//! The virtual-thread execution engine.
//!
//! One *execution* is a single run of a model closure under one concrete
//! schedule. Model code runs on real OS threads, but at most one of them is
//! ever unparked: every shared-memory effect (an atomic access, a mutex
//! acquisition, an explicit [`crate::spin`]) first parks the calling thread
//! and hands control back to the controller, which picks the next thread to
//! run. Scheduling is therefore the *only* source of nondeterminism — a
//! recorded sequence of choices replays an execution exactly.
//!
//! The controller token is [`State::active`]: a thread runs only while
//! `active == Some(its id)`, and parking clears the token. A single
//! `Condvar` broadcast wakes whichever thread the token now names.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

/// What a parked virtual thread is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wait {
    /// Runnable whenever the scheduler picks it (an ordinary yield point).
    Ready,
    /// Runnable once the virtual mutex with this id is free.
    Lock(usize),
    /// Runnable once the virtual thread with this id has finished.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Parked at a yield point (or not yet started).
    Parked(Wait),
    /// Currently holds the run token.
    Running,
    Finished,
}

/// Shared controller state, guarded by [`Execution::state`].
pub(crate) struct State {
    pub status: Vec<Status>,
    /// The run token: `Some(tid)` while `tid` owns the right to run.
    pub active: Option<usize>,
    /// Virtual mutex table: which thread (if any) holds each registered lock.
    pub lock_holders: Vec<Option<usize>>,
    pub steps: u64,
    /// Chosen thread id per scheduling decision — the replayable schedule.
    pub schedule: Vec<usize>,
    /// Recent shared-memory events (lock acquisition/release order).
    pub trace: Vec<String>,
    pub failure: Option<String>,
    /// Once set, every parked thread unwinds via an [`Abort`] panic.
    pub aborting: bool,
}

pub(crate) struct Execution {
    pub state: StdMutex<State>,
    pub cv: Condvar,
    pub max_steps: u64,
    pub max_threads: usize,
    /// Distinguishes lock ids registered by different executions (a
    /// [`crate::sync::Mutex`] may outlive the execution that registered it).
    pub generation: u64,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind virtual threads when the execution aborts.
/// Not a failure by itself — the wrapper swallows it.
pub(crate) struct Abort;

const TRACE_CAP: usize = 256;

static GENERATION: StdAtomicU64 = StdAtomicU64::new(1);

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution and virtual-thread id of the calling OS thread, if it is a
/// virtual thread of a live execution.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs (once, process-wide) a panic hook that silences panics raised on
/// virtual threads: the engine reports them itself as model failures, and the
/// deliberate [`Abort`] unwinds would otherwise spam stderr. Panics on
/// ordinary threads still reach the previously-installed hook.
fn install_panic_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if current().is_none() {
                previous(info);
            }
        }));
    });
}

impl Execution {
    pub(crate) fn new(max_steps: u64, max_threads: usize) -> Arc<Self> {
        Arc::new(Self {
            state: StdMutex::new(State {
                status: Vec::new(),
                active: None,
                lock_holders: Vec::new(),
                steps: 0,
                schedule: Vec::new(),
                trace: Vec::new(),
                failure: None,
                aborting: false,
            }),
            cv: Condvar::new(),
            max_steps,
            max_threads,
            generation: GENERATION.fetch_add(1, StdOrdering::Relaxed),
            os_handles: StdMutex::new(Vec::new()),
        })
    }

    /// Locks the controller state, recovering from poisoning (a virtual
    /// thread may legitimately panic while briefly holding this lock).
    pub(crate) fn st(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new virtual thread and starts its (parked) OS thread.
    /// Returns the new thread's id.
    pub(crate) fn spawn_thread(self: &Arc<Self>, f: Box<dyn FnOnce() + Send>) -> usize {
        let tid = {
            let mut s = self.st();
            assert!(
                s.status.len() < self.max_threads,
                "model spawned more than {} virtual threads",
                self.max_threads
            );
            s.status.push(Status::Parked(Wait::Ready));
            s.status.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("check-t{tid}"))
            .spawn(move || thread_main(exec, tid, f))
            .expect("spawn virtual thread");
        self.os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
        tid
    }

    /// Parks the calling virtual thread as `wait` and blocks until the
    /// scheduler hands it the token again. Every park is one schedule step.
    pub(crate) fn park(&self, tid: usize, wait: Wait) {
        {
            let mut s = self.st();
            s.steps += 1;
            if s.steps > self.max_steps && !s.aborting {
                s.failure = Some(format!(
                    "step bound of {} exceeded (livelock or unbounded loop in model)",
                    self.max_steps
                ));
                s.aborting = true;
            }
            s.status[tid] = Status::Parked(wait);
            s.active = None;
            self.cv.notify_all();
        }
        self.wait_for_token(tid);
    }

    /// Blocks until this thread owns the run token. Unwinds via [`Abort`]
    /// if the execution is aborting.
    pub(crate) fn wait_for_token(&self, tid: usize) {
        let mut s = self.st();
        loop {
            if s.aborting {
                drop(s);
                panic::panic_any(Abort);
            }
            if s.active == Some(tid) {
                s.status[tid] = Status::Running;
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records a shared-memory event (bounded; old executions stay small).
    pub(crate) fn push_trace(s: &mut State, event: String) {
        if s.trace.len() < TRACE_CAP {
            s.trace.push(event);
        }
    }

    /// Registers a virtual mutex, returning its lock id.
    pub(crate) fn alloc_lock(&self) -> usize {
        let mut s = self.st();
        s.lock_holders.push(None);
        s.lock_holders.len() - 1
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Body of every virtual thread's OS thread: wait to be scheduled, run the
/// closure, report how it ended.
fn thread_main(exec: Arc<Execution>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    install_panic_filter();
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        exec.wait_for_token(tid);
        f();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut s = exec.st();
    s.status[tid] = Status::Finished;
    if s.active == Some(tid) {
        s.active = None;
    }
    if let Err(payload) = result {
        if !payload.is::<Abort>() {
            if s.failure.is_none() {
                s.failure = Some(format!(
                    "virtual thread t{tid} panicked: {}",
                    panic_message(payload.as_ref())
                ));
            }
            s.aborting = true;
        }
    }
    exec.cv.notify_all();
}

/// Everything the strategies need from one finished execution.
pub(crate) struct RunOutcome {
    pub failure: Option<String>,
    /// Chosen thread id per decision — the replayable schedule.
    pub schedule: Vec<usize>,
    pub trace: Vec<String>,
}

/// A scheduling decision: sees the sorted runnable set and the previously
/// chosen thread; returning `None` aborts the run as a schedule divergence
/// (used by replay when the recorded schedule no longer fits the model).
pub(crate) type Chooser<'a> = &'a mut dyn FnMut(&[usize], Option<usize>) -> Option<usize>;

/// Runs `f` once to completion under `chooser`.
pub(crate) fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    max_steps: u64,
    max_threads: usize,
    chooser: Chooser<'_>,
) -> RunOutcome {
    assert!(
        current().is_none(),
        "check::explore/model/replay cannot be nested inside a model"
    );
    let exec = Execution::new(max_steps, max_threads);
    let body = Arc::clone(f);
    exec.spawn_thread(Box::new(move || body()));

    loop {
        let mut s = exec.st();
        // Wait for the previous runner to park, finish, or abort.
        while s.active.is_some() && !s.aborting {
            s = exec.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        if s.aborting {
            break;
        }
        let runnable: Vec<usize> = (0..s.status.len())
            .filter(|&t| match s.status[t] {
                Status::Parked(Wait::Ready) => true,
                Status::Parked(Wait::Lock(l)) => s.lock_holders[l].is_none(),
                Status::Parked(Wait::Join(j)) => s.status[j] == Status::Finished,
                Status::Running | Status::Finished => false,
            })
            .collect();
        if runnable.is_empty() {
            if s.status.iter().all(|st| *st == Status::Finished) {
                break; // clean completion
            }
            let blocked: Vec<String> = (0..s.status.len())
                .filter_map(|t| match s.status[t] {
                    Status::Parked(Wait::Lock(l)) => Some(format!(
                        "t{t} waits on m{l} held by t{:?}",
                        s.lock_holders[l]
                    )),
                    Status::Parked(Wait::Join(j)) => Some(format!("t{t} joins t{j}")),
                    _ => None,
                })
                .collect();
            s.failure = Some(format!(
                "deadlock: no runnable thread ({})",
                blocked.join("; ")
            ));
            s.aborting = true;
            break;
        }
        let chosen = match chooser(&runnable, s.schedule.last().copied()) {
            Some(t) => t,
            None => {
                s.failure = Some(
                    "schedule diverged: the recorded schedule no longer fits this model"
                        .to_string(),
                );
                s.aborting = true;
                break;
            }
        };
        debug_assert!(
            runnable.contains(&chosen),
            "chooser picked a non-runnable thread"
        );
        s.schedule.push(chosen);
        s.active = Some(chosen);
        exec.cv.notify_all();
    }

    // Release every still-parked thread (they unwind via Abort) and join
    // all OS threads so nothing outlives the execution.
    exec.cv.notify_all();
    let handles = std::mem::take(
        &mut *exec
            .os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner),
    );
    for h in handles {
        let _ = h.join();
    }
    let s = exec.st();
    RunOutcome {
        failure: s.failure.clone(),
        schedule: s.schedule.clone(),
        trace: s.trace.clone(),
    }
}
