//! choice-check: a deterministic-interleaving explorer (loom-lite).
//!
//! Concurrency arguments in this workspace — the epoch-stamped lane-table
//! resize, count-based quiescence termination, mirrored credit windows —
//! were hand-argued prose. This crate mechanically checks such protocols:
//! a *model* (a closure using [`spawn`], [`sync::Mutex`], and the
//! [`sync`] atomics) is executed under **every** interleaving of its
//! schedule points (bounded DFS), or under a seeded sample of random
//! interleavings, with at most one virtual thread running at a time. A
//! failing exploration reports a comma-separated **schedule string** (and
//! the seed, for random exploration) that [`replay`] reproduces
//! deterministically.
//!
//! # Schedule model
//!
//! A schedule point is inserted *before* every shared-memory effect: each
//! atomic access, each mutex acquisition attempt, each [`spawn`], and each
//! explicit [`spin`]. Between two schedule points a virtual thread runs
//! uninterrupted, so purely thread-local work contributes nothing to the
//! state space. Only sequentially-consistent executions are explored
//! (orderings are strengthened to `SeqCst` under the explorer); weak-memory
//! reorderings are out of scope. See DESIGN.md §9 for what this does and
//! does not prove.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use choice_check as check;
//! use check::sync::{AtomicU64, Ordering};
//!
//! // Exhaustively checked: fetch_add is a single atomic step.
//! check::model(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = Arc::clone(&n);
//!             check::spawn(move || {
//!                 n.fetch_add(1, Ordering::SeqCst);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod sync;

use std::fmt;
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use exec::{current, RunOutcome, Status, Wait};

/// How many trace events a [`Failure`] keeps for display.
const SHOWN_TRACE: usize = 24;

// ---------------------------------------------------------------------------
// Thread API
// ---------------------------------------------------------------------------

/// Handle to a spawned thread; virtual under exploration, real otherwise.
pub struct JoinHandle<T> {
    virt: Option<(Arc<exec::Execution>, usize)>,
    real: Option<std::thread::JoinHandle<T>>,
    slot: Option<Arc<StdMutex<Option<T>>>>,
}

/// Spawns a thread. Inside a model this registers a *virtual* thread whose
/// steps the explorer schedules (and is itself a schedule point); outside,
/// it is a plain `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    if let Some((exec, tid)) = current() {
        let slot = Arc::new(StdMutex::new(None));
        let out = Arc::clone(&slot);
        let child = exec.spawn_thread(Box::new(move || {
            let value = f();
            *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
        }));
        exec.park(tid, Wait::Ready); // spawning is a schedule point
        JoinHandle {
            virt: Some((exec, child)),
            real: None,
            slot: Some(slot),
        }
    } else {
        JoinHandle {
            virt: None,
            real: Some(std::thread::spawn(f)),
            slot: None,
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits (virtually, under exploration) for the thread to finish and
    /// returns its value.
    ///
    /// # Panics
    ///
    /// Panics if the joined thread panicked.
    pub fn join(mut self) -> T {
        if let Some((exec, target)) = self.virt.take() {
            let (_, me) = current().expect("join must be called from a virtual thread");
            loop {
                {
                    let s = exec.st();
                    if s.status[target] == Status::Finished {
                        break;
                    }
                }
                exec.park(me, Wait::Join(target));
            }
            self.slot
                .take()
                .expect("virtual join handle has a result slot")
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("joined virtual thread produced no value")
        } else {
            self.real
                .take()
                .expect("join handle already consumed")
                .join()
                .expect("spawned thread panicked")
        }
    }
}

/// An explicit schedule point: under exploration, parks the calling virtual
/// thread so any other thread may be scheduled; outside, a spin-loop hint.
/// Use inside model polling loops in place of `std::hint::spin_loop`.
pub fn spin() {
    if let Some((exec, tid)) = current() {
        exec.park(tid, Wait::Ready);
    } else {
        std::hint::spin_loop();
    }
}

/// Alias for [`spin`] matching `std::thread::yield_now` call sites.
pub fn yield_now() {
    if let Some((exec, tid)) = current() {
        exec.park(tid, Wait::Ready);
    } else {
        std::thread::yield_now();
    }
}

/// Whether the calling thread is a virtual thread of a live exploration.
pub fn is_active() -> bool {
    current().is_some()
}

// ---------------------------------------------------------------------------
// Exploration API
// ---------------------------------------------------------------------------

/// Schedule-search strategy.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Depth-first enumeration of every interleaving (stateless
    /// backtracking), stopping at the schedule budget if not exhausted.
    Dfs,
    /// Independent uniformly-random schedules derived from `seed`; the
    /// failing schedule's per-execution seed is reported on failure.
    Random {
        /// Base seed; execution `i` uses a value mixed from `(seed, i)`.
        seed: u64,
    },
}

/// Exploration limits and strategy.
#[derive(Clone, Debug)]
pub struct Config {
    /// The search strategy.
    pub strategy: Strategy,
    /// Maximum number of complete executions to run.
    pub max_schedules: u64,
    /// Per-execution schedule-step bound (livelock guard).
    pub max_steps: u64,
    /// Maximum live virtual threads per execution.
    pub max_threads: usize,
    /// If set, bounds the number of *preemptions* (switching away from a
    /// still-runnable thread) per execution, à la CHESS. `None` explores
    /// unrestricted.
    pub preemption_bound: Option<usize>,
}

impl Config {
    /// DFS exploration with the given schedule budget and defaults
    /// (50 000 steps per execution, 8 threads, no preemption bound).
    pub fn dfs(max_schedules: u64) -> Self {
        Self {
            strategy: Strategy::Dfs,
            max_schedules,
            max_steps: 50_000,
            max_threads: 8,
            preemption_bound: None,
        }
    }

    /// Bounded-random exploration: `max_schedules` independent executions
    /// seeded from `seed`.
    pub fn random(max_schedules: u64, seed: u64) -> Self {
        Self {
            strategy: Strategy::Random { seed },
            ..Self::dfs(max_schedules)
        }
    }
}

/// Summary of a completed (failure-free) exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions run.
    pub schedules: u64,
    /// Whether DFS exhausted the interleaving space (always `false` for
    /// random exploration).
    pub exhausted: bool,
    /// Deepest schedule (most decisions) seen in any execution.
    pub max_depth: usize,
}

/// A failing execution: the property violation plus everything needed to
/// reproduce it deterministically.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic message, deadlock description, or bound violation.
    pub message: String,
    /// Comma-separated chosen thread ids — feed to [`replay`].
    pub schedule: String,
    /// The per-execution seed, for [`Strategy::Random`] failures.
    pub seed: Option<u64>,
    /// Executions run up to and including the failing one.
    pub schedules_explored: u64,
    /// Recent shared-memory events (lock acquisition order and the like).
    pub trace: Vec<String>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model check failed after {} schedule(s): {}",
            self.schedules_explored, self.message
        )?;
        writeln!(
            f,
            "  schedule: \"{}\"  (reproduce with check::replay(\"{}\", || ...))",
            self.schedule, self.schedule
        )?;
        if let Some(seed) = self.seed {
            writeln!(f, "  seed: {:#018x} (bounded-random exploration)", seed)?;
        }
        if !self.trace.is_empty() {
            writeln!(f, "  last shared-memory events:")?;
            let skip = self.trace.len().saturating_sub(SHOWN_TRACE);
            for ev in &self.trace[skip..] {
                writeln!(f, "    {ev}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

/// The schedule budget for [`model`]-style entry points: the
/// `CHECK_SCHEDULES` environment variable, or `default`.
pub fn schedule_budget(default: u64) -> u64 {
    std::env::var("CHECK_SCHEDULES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Explores `f` under `config`, returning the failing execution if any
/// interleaving violates a property (panics, deadlocks, or exceeds the step
/// bound).
///
/// `f` is run once per schedule and must build its shared state afresh each
/// call; beyond schedule choice it must be deterministic.
pub fn explore(config: Config, f: impl Fn() + Send + Sync + 'static) -> Result<Report, Failure> {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    match config.strategy {
        Strategy::Dfs => explore_dfs(&config, &f),
        Strategy::Random { seed } => explore_random(&config, &f, seed),
    }
}

/// The model-harness entry point: DFS exploration with a default budget of
/// 4096 schedules (override with `CHECK_SCHEDULES`), panicking with the
/// replayable [`Failure`] on any violation.
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    let budget = schedule_budget(4096);
    if let Err(failure) = explore(Config::dfs(budget), f) {
        panic!("{failure}");
    }
}

/// Like [`model`], but with an explicit [`Config`] (e.g. bounded-random for
/// models whose DFS space is unbounded).
pub fn model_with(config: Config, f: impl Fn() + Send + Sync + 'static) {
    if let Err(failure) = explore(config, f) {
        panic!("{failure}");
    }
}

/// Re-runs `f` under exactly the given schedule (as printed by a
/// [`Failure`]): decision `i` hands the token to the `i`-th listed thread
/// id. Returns the reproduced failure, `Ok(())` if the schedule completes
/// cleanly, or a "schedule diverged" failure if the model no longer matches
/// the recording.
pub fn replay(schedule: &str, f: impl Fn() + Send + Sync + 'static) -> Result<(), Failure> {
    let choices: Vec<usize> = schedule
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .expect("schedule strings are comma-separated thread ids")
        })
        .collect();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut pos = 0usize;
    let outcome = exec::run_once(&f, 1_000_000, 64, &mut |runnable, _| {
        let &chosen = choices.get(pos)?;
        pos += 1;
        runnable.contains(&chosen).then_some(chosen)
    });
    match outcome.failure {
        None => Ok(()),
        Some(message) => Err(Failure {
            message,
            schedule: schedule.to_string(),
            seed: None,
            schedules_explored: 1,
            trace: outcome.trace,
        }),
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// The choices a thread may be handed the token for, under an optional
/// preemption bound: once the bound is spent, the previously-running thread
/// keeps running as long as it stays runnable.
fn allowed_choices(
    runnable: &[usize],
    prev: Option<usize>,
    preemptions: usize,
    bound: Option<usize>,
) -> Vec<usize> {
    if let (Some(b), Some(p)) = (bound, prev) {
        if preemptions >= b && runnable.contains(&p) {
            return vec![p];
        }
    }
    runnable.to_vec()
}

fn is_preemption(chosen: usize, prev: Option<usize>, runnable: &[usize]) -> bool {
    matches!(prev, Some(p) if chosen != p && runnable.contains(&p))
}

fn schedule_string(schedule: &[usize]) -> String {
    let ids: Vec<String> = schedule.iter().map(|t| t.to_string()).collect();
    ids.join(",")
}

fn failure_from(
    message: String,
    outcome: &RunOutcome,
    schedules_explored: u64,
    seed: Option<u64>,
) -> Failure {
    Failure {
        message,
        schedule: schedule_string(&outcome.schedule),
        seed,
        schedules_explored,
        trace: outcome.trace.clone(),
    }
}

fn explore_dfs(cfg: &Config, f: &Arc<dyn Fn() + Send + Sync>) -> Result<Report, Failure> {
    // `prefix[i]` is the index (within the allowed set) to take at decision
    // depth `i`; depths beyond the prefix take index 0. Backtracking bumps
    // the deepest bumpable index and truncates.
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    let mut max_depth = 0usize;
    loop {
        let mut pos = 0usize;
        let mut preemptions = 0usize;
        // (chosen index, allowed-set size) per decision of this execution.
        let mut taken: Vec<(usize, usize)> = Vec::new();
        let mut nondet = false;
        let outcome = exec::run_once(f, cfg.max_steps, cfg.max_threads, &mut |runnable, prev| {
            let allowed = allowed_choices(runnable, prev, preemptions, cfg.preemption_bound);
            let idx = if pos < prefix.len() { prefix[pos] } else { 0 };
            pos += 1;
            let Some(&chosen) = allowed.get(idx) else {
                nondet = true;
                return None;
            };
            taken.push((idx, allowed.len()));
            if is_preemption(chosen, prev, runnable) {
                preemptions += 1;
            }
            Some(chosen)
        });
        schedules += 1;
        max_depth = max_depth.max(outcome.schedule.len());
        if nondet {
            return Err(failure_from(
                "nondeterministic model: an earlier runnable set shrank on re-execution \
                 (models must be deterministic apart from schedule choice)"
                    .to_string(),
                &outcome,
                schedules,
                None,
            ));
        }
        if let Some(message) = outcome.failure.clone() {
            return Err(failure_from(message, &outcome, schedules, None));
        }
        // Backtrack: bump the deepest decision with an unexplored sibling.
        while let Some(&(idx, len)) = taken.last() {
            if idx + 1 < len {
                break;
            }
            taken.pop();
        }
        let Some(last) = taken.last_mut() else {
            return Ok(Report {
                schedules,
                exhausted: true,
                max_depth,
            });
        };
        last.0 += 1;
        prefix = taken.iter().map(|&(idx, _)| idx).collect();
        if schedules >= cfg.max_schedules {
            return Ok(Report {
                schedules,
                exhausted: false,
                max_depth,
            });
        }
    }
}

fn explore_random(
    cfg: &Config,
    f: &Arc<dyn Fn() + Send + Sync>,
    seed: u64,
) -> Result<Report, Failure> {
    let mut max_depth = 0usize;
    for i in 0..cfg.max_schedules {
        let exec_seed = mix(seed, i);
        let mut rng = SplitMix64(exec_seed);
        let mut preemptions = 0usize;
        let outcome = exec::run_once(f, cfg.max_steps, cfg.max_threads, &mut |runnable, prev| {
            let allowed = allowed_choices(runnable, prev, preemptions, cfg.preemption_bound);
            let chosen = allowed[(rng.next() % allowed.len() as u64) as usize];
            if is_preemption(chosen, prev, runnable) {
                preemptions += 1;
            }
            Some(chosen)
        });
        max_depth = max_depth.max(outcome.schedule.len());
        if let Some(message) = outcome.failure.clone() {
            return Err(failure_from(message, &outcome, i + 1, Some(exec_seed)));
        }
    }
    Ok(Report {
        schedules: cfg.max_schedules,
        exhausted: false,
        max_depth,
    })
}

/// SplitMix64 — the workspace's stock tiny deterministic generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn mix(seed: u64, i: u64) -> u64 {
    SplitMix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next()
}

// ---------------------------------------------------------------------------
// Self-tests: the explorer must find classic bugs and miss correct code.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::sync::{AtomicU64, Mutex, Ordering};
    use super::*;

    /// Two threads doing a split load-then-store increment lose an update
    /// under some interleaving.
    fn lost_update_model() {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    }

    #[test]
    fn dfs_finds_the_lost_update_and_replay_reproduces_it() {
        let failure = explore(Config::dfs(10_000), lost_update_model)
            .expect_err("the split increment must lose an update under DFS");
        assert!(
            failure.message.contains("lost update"),
            "got: {}",
            failure.message
        );
        assert!(!failure.schedule.is_empty());
        // The printed schedule reproduces the same failure, twice.
        for _ in 0..2 {
            let replayed = replay(&failure.schedule, lost_update_model)
                .expect_err("replaying the failing schedule must fail again");
            assert_eq!(replayed.message, failure.message);
        }
    }

    #[test]
    fn random_exploration_finds_the_lost_update_with_a_seed() {
        let failure = explore(Config::random(512, 0x5EED), lost_update_model)
            .expect_err("the split increment must lose an update under random search");
        assert!(failure.seed.is_some());
        let replayed =
            replay(&failure.schedule, lost_update_model).expect_err("schedule must replay");
        assert_eq!(replayed.message, failure.message);
    }

    #[test]
    fn atomic_increment_survives_exhaustive_dfs() {
        let report = explore(Config::dfs(100_000), || {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        })
        .expect("fetch_add is atomic; no interleaving can fail");
        assert!(report.exhausted, "tiny model must be fully explored");
        assert!(report.schedules > 1, "there is more than one interleaving");
    }

    #[test]
    fn mutex_protects_the_split_increment() {
        let report = explore(Config::dfs(100_000), || {
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    spawn(move || {
                        let mut g = n.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*n.lock(), 2);
        })
        .expect("the lock serialises the increments");
        assert!(report.exhausted);
    }

    #[test]
    fn ab_ba_lock_order_deadlocks_and_is_reported() {
        let model = || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = spawn(move || {
                let _gb = b3.lock();
                let _ga = a3.lock();
            });
            t1.join();
            t2.join();
        };
        let failure = explore(Config::dfs(10_000), model)
            .expect_err("AB/BA ordering must deadlock under some schedule");
        assert!(
            failure.message.contains("deadlock"),
            "got: {}",
            failure.message
        );
        // The acquisition order that led here was recorded.
        assert!(failure.trace.iter().any(|e| e.contains("acquired")));
        let replayed = replay(&failure.schedule, model).expect_err("deadlock must replay");
        assert!(replayed.message.contains("deadlock"));
    }

    #[test]
    fn try_lock_never_deadlocks_the_ab_ba_order() {
        let report = explore(Config::dfs(50_000), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.try_lock(); // back off instead of blocking
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = spawn(move || {
                let _gb = b3.lock();
                let _ga = a3.try_lock();
            });
            t1.join();
            t2.join();
        })
        .expect("try_lock backs off; no schedule can deadlock");
        assert!(report.exhausted);
    }

    #[test]
    fn step_bound_catches_unbounded_loops() {
        let failure = explore(
            Config {
                max_steps: 200,
                ..Config::dfs(4)
            },
            || loop {
                spin();
            },
        )
        .expect_err("an infinite spin must hit the step bound");
        assert!(
            failure.message.contains("step bound"),
            "got: {}",
            failure.message
        );
    }

    #[test]
    fn replay_reports_divergence_on_a_stale_schedule() {
        // A schedule recorded for some other model: thread 3 never exists.
        let err = replay("0,3,1", lost_update_model).expect_err("divergence");
        assert!(err.message.contains("diverged"), "got: {}", err.message);
    }

    #[test]
    fn wrappers_pass_through_outside_a_model() {
        let n = AtomicU64::new(41);
        assert_eq!(n.fetch_add(1, Ordering::Relaxed), 41);
        assert_eq!(n.load(Ordering::Acquire), 42);
        let m = Mutex::new(7);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "real lock is held");
        }
        assert_eq!(*m.try_lock().unwrap(), 8);
        assert_eq!(m.into_inner(), 8);
        let h = spawn(|| 5u32);
        assert_eq!(h.join(), 5);
    }

    #[test]
    fn preemption_bound_zero_still_runs_to_completion() {
        let report = explore(
            Config {
                preemption_bound: Some(0),
                ..Config::dfs(1_000)
            },
            lost_update_model,
        )
        .expect("with zero preemptions each thread runs to completion: no lost update");
        assert!(report.schedules >= 1);
    }
}
