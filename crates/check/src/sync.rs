//! Drop-in sync primitives that become schedule points under exploration.
//!
//! [`Mutex`] mirrors the `parking_lot` shim's API (`lock` returns a guard,
//! `try_lock` an `Option`, no poisoning) and the `Atomic*` types mirror the
//! `std::sync::atomic` API, so production code can route through these with a
//! one-line `use` swap behind a cargo feature. Outside an exploration every
//! operation is a plain passthrough to the `std` primitive; inside one, every
//! operation first parks the calling virtual thread so the scheduler can
//! interleave another thread before the effect happens, and all atomic
//! orderings are strengthened to `SeqCst` (the explorer checks sequentially
//! consistent executions only — see DESIGN.md §9).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::{Arc, PoisonError, TryLockError};

pub use std::sync::atomic::Ordering;

use crate::exec::{current, Execution, Wait};

/// Parks at a schedule point if called from a virtual thread.
/// Returns whether an exploration is active (→ force `SeqCst`).
fn interleave() -> bool {
    if let Some((exec, tid)) = current() {
        exec.park(tid, Wait::Ready);
        true
    } else {
        false
    }
}

/// A mutex that, under exploration, is acquired *virtually*: availability
/// and the waiter's blocked state live in the execution's state, so the
/// scheduler decides who acquires next and records the acquisition order.
/// The protected data still sits behind a real `std::sync::Mutex`, which is
/// provably uncontended once the virtual acquisition succeeded.
pub struct Mutex<T: ?Sized> {
    /// Packed `generation << 32 | (lock id + 1)`; 0 = not yet registered
    /// with any execution. Only the running virtual thread touches this, so
    /// plain store suffices.
    vid: StdAtomicU64,
    data: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `(execution, lock id, holder tid)` when virtually held.
    virt: Option<(Arc<Execution>, usize, usize)>,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            vid: StdAtomicU64::new(0),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// The lock id of this mutex within `exec`, registering it on first use.
    fn virtual_id(&self, exec: &Execution) -> usize {
        let gen = exec.generation & 0xFFFF_FFFF;
        let v = self.vid.load(Ordering::Relaxed);
        if v >> 32 == gen && (v & 0xFFFF_FFFF) != 0 {
            return (v & 0xFFFF_FFFF) as usize - 1;
        }
        let id = exec.alloc_lock();
        self.vid
            .store((gen << 32) | (id as u64 + 1), Ordering::Relaxed);
        id
    }

    fn real_guard(&self) -> std::sync::MutexGuard<'_, T> {
        // A virtual holder that panicked poisons the std mutex on unwind;
        // recover, matching parking_lot's no-poisoning semantics.
        match self.data.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("virtual mutex exclusion violated: real lock contended")
            }
        }
    }

    /// Acquires the lock, blocking (virtually, under exploration) until it
    /// is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some((exec, tid)) = current() {
            let id = self.virtual_id(&exec);
            exec.park(tid, Wait::Ready); // schedule point before the acquire
            loop {
                {
                    let mut s = exec.st();
                    if s.lock_holders[id].is_none() {
                        s.lock_holders[id] = Some(tid);
                        Execution::push_trace(&mut s, format!("t{tid} acquired m{id}"));
                        break;
                    }
                }
                // Held: park until the scheduler sees the lock free and
                // picks us; re-check (we are then the only runner).
                exec.park(tid, Wait::Lock(id));
            }
            MutexGuard {
                virt: Some((exec, id, tid)),
                inner: self.real_guard(),
            }
        } else {
            MutexGuard {
                virt: None,
                inner: self.data.lock().unwrap_or_else(PoisonError::into_inner),
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if let Some((exec, tid)) = current() {
            let id = self.virtual_id(&exec);
            exec.park(tid, Wait::Ready);
            let acquired = {
                let mut s = exec.st();
                if s.lock_holders[id].is_none() {
                    s.lock_holders[id] = Some(tid);
                    Execution::push_trace(&mut s, format!("t{tid} acquired m{id} (try)"));
                    true
                } else {
                    false
                }
            };
            acquired.then(|| MutexGuard {
                virt: Some((exec, id, tid)),
                inner: self.real_guard(),
            })
        } else {
            match self.data.try_lock() {
                Ok(g) => Some(MutexGuard {
                    virt: None,
                    inner: g,
                }),
                Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                    virt: None,
                    inner: p.into_inner(),
                }),
                Err(TryLockError::WouldBlock) => None,
            }
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the exclusive borrow proves no other thread holds the lock).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Avoid a schedule point inside Debug: peek at the real lock only.
        match self.data.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, id, tid)) = self.virt.take() {
            // The real guard is still held here, but no other thread can run
            // until we next park, so release order is unobservable.
            let mut s = exec.st();
            s.lock_holders[id] = None;
            Execution::push_trace(&mut s, format!("t{tid} released m{id}"));
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic holding `value`.
            pub const fn new(value: $prim) -> Self {
                Self { inner: std::sync::atomic::$std::new(value) }
            }

            /// Loads the value; a schedule point under exploration.
            pub fn load(&self, order: Ordering) -> $prim {
                if interleave() {
                    self.inner.load(Ordering::SeqCst)
                } else {
                    self.inner.load(order)
                }
            }

            /// Stores `value`; a schedule point under exploration.
            pub fn store(&self, value: $prim, order: Ordering) {
                if interleave() {
                    self.inner.store(value, Ordering::SeqCst)
                } else {
                    self.inner.store(value, order)
                }
            }

            /// Swaps in `value`, returning the previous value.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                if interleave() {
                    self.inner.swap(value, Ordering::SeqCst)
                } else {
                    self.inner.swap(value, order)
                }
            }

            /// Adds `value`, returning the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                if interleave() {
                    self.inner.fetch_add(value, Ordering::SeqCst)
                } else {
                    self.inner.fetch_add(value, order)
                }
            }

            /// Subtracts `value`, returning the previous value.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                if interleave() {
                    self.inner.fetch_sub(value, Ordering::SeqCst)
                } else {
                    self.inner.fetch_sub(value, order)
                }
            }

            /// Stores the maximum of the current and given value, returning
            /// the previous value.
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                if interleave() {
                    self.inner.fetch_max(value, Ordering::SeqCst)
                } else {
                    self.inner.fetch_max(value, order)
                }
            }

            /// Bitwise-ORs in `value`, returning the previous value.
            pub fn fetch_or(&self, value: $prim, order: Ordering) -> $prim {
                if interleave() {
                    self.inner.fetch_or(value, Ordering::SeqCst)
                } else {
                    self.inner.fetch_or(value, order)
                }
            }

            /// Bitwise-ANDs in `value`, returning the previous value.
            pub fn fetch_and(&self, value: $prim, order: Ordering) -> $prim {
                if interleave() {
                    self.inner.fetch_and(value, Ordering::SeqCst)
                } else {
                    self.inner.fetch_and(value, order)
                }
            }

            /// Compare-and-exchange; one schedule point covers the whole
            /// read-modify-write (it is a single atomic step).
            pub fn compare_exchange(
                &self,
                cur: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if interleave() {
                    self.inner
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                } else {
                    self.inner.compare_exchange(cur, new, success, failure)
                }
            }

            /// Weak compare-and-exchange (never fails spuriously here, which
            /// the API permits).
            pub fn compare_exchange_weak(
                &self,
                cur: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(cur, new, success, failure)
            }

            /// Returns a mutable reference to the underlying value.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consumes the atomic and returns the contained value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.inner, f)
            }
        }

        impl From<$prim> for $name {
            fn from(value: $prim) -> Self {
                Self::new(value)
            }
        }
    };
}

int_atomic!(
    /// `std::sync::atomic::AtomicU64` mirror whose every access is a
    /// schedule point under exploration.
    AtomicU64,
    AtomicU64,
    u64
);
int_atomic!(
    /// `std::sync::atomic::AtomicUsize` mirror whose every access is a
    /// schedule point under exploration.
    AtomicUsize,
    AtomicUsize,
    usize
);
int_atomic!(
    /// `std::sync::atomic::AtomicU32` mirror whose every access is a
    /// schedule point under exploration.
    AtomicU32,
    AtomicU32,
    u32
);

/// `std::sync::atomic::AtomicBool` mirror whose every access is a schedule
/// point under exploration.
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic holding `value`.
    pub const fn new(value: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Loads the value; a schedule point under exploration.
    pub fn load(&self, order: Ordering) -> bool {
        if interleave() {
            self.inner.load(Ordering::SeqCst)
        } else {
            self.inner.load(order)
        }
    }

    /// Stores `value`; a schedule point under exploration.
    pub fn store(&self, value: bool, order: Ordering) {
        if interleave() {
            self.inner.store(value, Ordering::SeqCst)
        } else {
            self.inner.store(value, order)
        }
    }

    /// Swaps in `value`, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        if interleave() {
            self.inner.swap(value, Ordering::SeqCst)
        } else {
            self.inner.swap(value, order)
        }
    }

    /// Compare-and-exchange; one schedule point covers the whole step.
    pub fn compare_exchange(
        &self,
        cur: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        if interleave() {
            self.inner
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
        } else {
            self.inner.compare_exchange(cur, new, success, failure)
        }
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// `std::sync::atomic::AtomicPtr` mirror whose every access is a schedule
/// point under exploration. Generic, so it lives outside the `int_atomic!`
/// macro (which only covers integer primitives).
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic holding `ptr`.
    pub const fn new(ptr: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(ptr),
        }
    }

    /// Loads the pointer; a schedule point under exploration.
    pub fn load(&self, order: Ordering) -> *mut T {
        if interleave() {
            self.inner.load(Ordering::SeqCst)
        } else {
            self.inner.load(order)
        }
    }

    /// Stores `ptr`; a schedule point under exploration.
    pub fn store(&self, ptr: *mut T, order: Ordering) {
        if interleave() {
            self.inner.store(ptr, Ordering::SeqCst)
        } else {
            self.inner.store(ptr, order)
        }
    }

    /// Swaps in `ptr`, returning the previous pointer.
    pub fn swap(&self, ptr: *mut T, order: Ordering) -> *mut T {
        if interleave() {
            self.inner.swap(ptr, Ordering::SeqCst)
        } else {
            self.inner.swap(ptr, order)
        }
    }

    /// Compare-and-exchange; one schedule point covers the whole step.
    pub fn compare_exchange(
        &self,
        cur: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        if interleave() {
            self.inner
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
        } else {
            self.inner.compare_exchange(cur, new, success, failure)
        }
    }

    /// Returns a mutable reference to the underlying pointer.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}
