//! Windowed rates: a small ring of periodic [`MetricsSnapshot`]s whose
//! deltas turn cumulative counters into *rates* and lifetime histograms
//! into *recent* quantiles.
//!
//! Cumulative counters answer "how many ever"; operators ask "how many per
//! second right now" and "what is the p99 over the last ten seconds". A
//! [`RateWindow`] keeps the last N `(timestamp, snapshot)` pairs pushed
//! into it — the server pushes one on every `MetricsDump`, the scheduler
//! pushes one when a run completes — and derives, between the oldest and
//! newest retained snapshot:
//!
//! * per-counter rates (`window_rate_per_sec{metric=...}`), and
//! * per-histogram windowed p99s (`window_p99{metric=...}`) from
//!   bucket-wise deltas — only samples recorded *inside* the window count.
//!
//! Rendering follows the registry's exposition discipline (gauge-style
//! lines, escaped labels), so the window section of a dump stays
//! scrapeable. The window holds whole snapshots rather than pre-diffed
//! rates so late-registered metrics join cleanly: a counter absent from
//! the oldest snapshot is treated as starting from zero.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::metrics::{HistogramSnapshot, MetricRow, MetricsSnapshot};

/// Default number of snapshots a [`RateWindow`] retains. At the 1 Hz-ish
/// push cadence of a scraped server this spans roughly the "last 10s".
pub const DEFAULT_WINDOW_SLOTS: usize = 12;

/// A ring of timestamped metrics snapshots with delta-derived rates.
#[derive(Debug)]
pub struct RateWindow {
    capacity: usize,
    inner: Mutex<VecDeque<(u64, MetricsSnapshot)>>,
}

/// Rates and windowed quantiles derived from a [`RateWindow`]'s span.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowRates {
    /// Nanoseconds between the oldest and newest retained snapshot.
    pub span_ns: u64,
    /// Snapshots currently retained.
    pub samples: usize,
    /// Per-counter rate over the span, in events per second.
    pub rates_per_sec: Vec<MetricRow<f64>>,
    /// Per-histogram p99 upper bound over samples recorded inside the span.
    pub p99s: Vec<MetricRow<u64>>,
}

impl RateWindow {
    /// A window retaining up to `capacity` snapshots (minimum 2 — one delta
    /// needs two endpoints).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(2),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// The configured snapshot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshots currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no snapshot has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Pushes one timestamped snapshot, evicting the oldest beyond
    /// capacity. Out-of-order timestamps (a manual clock stepping back) are
    /// accepted; the delta span saturates at zero and reports no rates.
    pub fn push(&self, now_ns: u64, snapshot: MetricsSnapshot) {
        let mut inner = self.inner.lock();
        if inner.len() == self.capacity {
            inner.pop_front();
        }
        inner.push_back((now_ns, snapshot));
    }

    /// Derives rates and windowed p99s between the oldest and newest
    /// retained snapshot. `None` until two snapshots with a positive time
    /// span are present.
    pub fn rates(&self) -> Option<WindowRates> {
        let inner = self.inner.lock();
        let (oldest_ts, oldest) = inner.front()?;
        let (newest_ts, newest) = inner.back()?;
        let span_ns = newest_ts.saturating_sub(*oldest_ts);
        if span_ns == 0 {
            return None;
        }
        let span_secs = span_ns as f64 / 1e9;
        let mut rates_per_sec = Vec::new();
        for row in &newest.counters {
            let before = lookup_counter(oldest, row).unwrap_or(0);
            let delta = row.value.saturating_sub(before);
            rates_per_sec.push(MetricRow {
                name: row.name.clone(),
                labels: row.labels.clone(),
                value: delta as f64 / span_secs,
            });
        }
        let mut p99s = Vec::new();
        for row in &newest.histograms {
            let delta = match lookup_histogram(oldest, row) {
                Some(before) => histogram_delta(before, &row.value),
                None => row.value.clone(),
            };
            if let Some(p99) = delta.quantile_upper_bound(0.99) {
                p99s.push(MetricRow {
                    name: row.name.clone(),
                    labels: row.labels.clone(),
                    value: p99,
                });
            }
        }
        Some(WindowRates {
            span_ns,
            samples: inner.len(),
            rates_per_sec,
            p99s,
        })
    }

    /// Renders the window as scrapeable exposition lines (`window_span_seconds`,
    /// `window_rate_per_sec{metric=...}`, `window_p99{metric=...}`); empty
    /// until [`rates`](Self::rates) has a span to report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let Some(rates) = self.rates() else {
            return String::new();
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# TYPE window_span_seconds gauge\nwindow_span_seconds {}",
            rates.span_ns as f64 / 1e9
        );
        if !rates.rates_per_sec.is_empty() {
            out.push_str("# TYPE window_rate_per_sec gauge\n");
        }
        for row in &rates.rates_per_sec {
            render_window_sample(
                &mut out,
                "window_rate_per_sec",
                row.name.as_str(),
                &row.labels,
            );
            let _ = writeln!(out, " {}", row.value);
        }
        if !rates.p99s.is_empty() {
            out.push_str("# TYPE window_p99 gauge\n");
        }
        for row in &rates.p99s {
            render_window_sample(&mut out, "window_p99", row.name.as_str(), &row.labels);
            let _ = writeln!(out, " {}", row.value);
        }
        out
    }
}

/// Writes `family{metric="name",k="v",...}` with the registry's escaping.
fn render_window_sample(out: &mut String, family: &str, metric: &str, labels: &[(String, String)]) {
    use std::fmt::Write as _;
    let _ = write!(out, "{family}{{metric=\"{}\"", escape(metric));
    for (k, v) in labels {
        let _ = write!(out, ",{k}=\"{}\"", escape(v));
    }
    let _ = write!(out, "}}");
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn row_matches<A, B>(row: &MetricRow<A>, like: &MetricRow<B>) -> bool {
    row.name == like.name && row.labels == like.labels
}

fn lookup_counter(snapshot: &MetricsSnapshot, like: &MetricRow<u64>) -> Option<u64> {
    snapshot
        .counters
        .iter()
        .find(|r| row_matches(r, like))
        .map(|r| r.value)
}

fn lookup_histogram<'a>(
    snapshot: &'a MetricsSnapshot,
    like: &MetricRow<HistogramSnapshot>,
) -> Option<&'a HistogramSnapshot> {
    snapshot
        .histograms
        .iter()
        .find(|r| row_matches(r, like))
        .map(|r| &r.value)
}

/// Bucket-wise `newest - oldest`: the distribution of samples recorded
/// inside the window. Counts saturate (a reset metric degrades to "whole
/// newest" rather than underflowing); `max` keeps the lifetime max — the
/// log buckets carry the quantile information.
fn histogram_delta(oldest: &HistogramSnapshot, newest: &HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets = newest.buckets;
    for (b, old) in buckets.iter_mut().zip(oldest.buckets.iter()) {
        *b = b.saturating_sub(*old);
    }
    HistogramSnapshot {
        buckets,
        sum: newest.sum.wrapping_sub(oldest.sum),
        max: newest.max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn snap_with(registry: &MetricsRegistry) -> MetricsSnapshot {
        registry.snapshot()
    }

    #[test]
    fn two_snapshots_yield_counter_rates() {
        let registry = MetricsRegistry::new();
        let ops = registry.counter("ops_total", &[("queue", "q")]);
        let window = RateWindow::new(4);
        window.push(0, snap_with(&registry));
        ops.add(500);
        window.push(2_000_000_000, snap_with(&registry)); // 2s later
        let rates = window.rates().expect("positive span");
        assert_eq!(rates.span_ns, 2_000_000_000);
        assert_eq!(rates.samples, 2);
        let rate = rates
            .rates_per_sec
            .iter()
            .find(|r| r.name == "ops_total")
            .expect("ops rate");
        assert!((rate.value - 250.0).abs() < 1e-9, "rate {}", rate.value);
    }

    #[test]
    fn windowed_p99_sees_only_recent_samples() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("lat_ns", &[]);
        // Old regime: large values.
        for _ in 0..1000 {
            hist.record(1 << 20);
        }
        let window = RateWindow::new(4);
        window.push(0, snap_with(&registry));
        // New regime inside the window: small values.
        for _ in 0..100 {
            hist.record(8);
        }
        window.push(1_000_000_000, snap_with(&registry));
        let rates = window.rates().unwrap();
        let p99 = rates.p99s.iter().find(|r| r.name == "lat_ns").unwrap();
        assert!(
            p99.value <= 16,
            "windowed p99 {} must ignore the old regime",
            p99.value
        );
        // The lifetime p99 would have been dominated by the old regime.
        let lifetime = snap_with(&registry);
        let lifetime_p99 = lifetime
            .histogram("lat_ns", &[])
            .unwrap()
            .quantile_upper_bound(0.99)
            .unwrap();
        assert!(lifetime_p99 >= 1 << 20);
    }

    #[test]
    fn eviction_keeps_the_window_bounded() {
        let registry = MetricsRegistry::new();
        let ops = registry.counter("ops_total", &[]);
        let window = RateWindow::new(3);
        for i in 0..10u64 {
            ops.add(10);
            window.push(i * 1_000_000_000, snap_with(&registry));
        }
        assert_eq!(window.len(), 3);
        let rates = window.rates().unwrap();
        // Span covers pushes 7..9: two seconds, 20 ops.
        assert_eq!(rates.span_ns, 2_000_000_000);
        let rate = &rates.rates_per_sec[0];
        assert!((rate.value - 10.0).abs() < 1e-9);
    }

    #[test]
    fn no_span_means_no_rates() {
        let registry = MetricsRegistry::new();
        let window = RateWindow::new(4);
        assert!(window.rates().is_none(), "empty window");
        window.push(5, snap_with(&registry));
        assert!(window.rates().is_none(), "single snapshot");
        window.push(5, snap_with(&registry));
        assert!(window.rates().is_none(), "zero span");
        assert_eq!(window.render(), "");
    }

    #[test]
    fn late_registered_counters_start_from_zero() {
        let registry = MetricsRegistry::new();
        let window = RateWindow::new(4);
        window.push(0, snap_with(&registry));
        let late = registry.counter("late_total", &[]);
        late.add(30);
        window.push(3_000_000_000, snap_with(&registry));
        let rates = window.rates().unwrap();
        let rate = rates
            .rates_per_sec
            .iter()
            .find(|r| r.name == "late_total")
            .unwrap();
        assert!((rate.value - 10.0).abs() < 1e-9);
    }

    #[test]
    fn render_is_scrapeable() {
        let registry = MetricsRegistry::new();
        let ops = registry.counter("ops_total", &[("queue", "a\"b")]);
        let hist = registry.histogram("lat_ns", &[]);
        let window = RateWindow::new(4);
        window.push(0, snap_with(&registry));
        ops.add(100);
        hist.record(42);
        window.push(1_000_000_000, snap_with(&registry));
        let text = window.render();
        assert!(text.contains("window_span_seconds 1"));
        assert!(text.contains("window_rate_per_sec{metric=\"ops_total\",queue=\"a\\\"b\"} 100"));
        assert!(text.contains("window_p99{metric=\"lat_ns\"} 64"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "unscrapeable line: {line}"
            );
        }
    }
}
