//! The flight recorder: a fixed-size lock-free ring of structured events
//! with a deterministic-clock option and panic-hook dumps.
//!
//! # Ring discipline
//!
//! The ring holds `capacity` (a power of two) slots. Writers claim a
//! *ticket* with one `fetch_add` on the head counter; the ticket selects a
//! slot (`ticket % capacity`) and a per-slot sequence protocol makes the
//! write observable without locks (all plain atomics — the crate forbids
//! `unsafe`):
//!
//! * a slot storing ticket `t`'s event holds sequence `2t + 2` when
//!   complete and `2t + 1` while being written;
//! * a writer claims the slot by CAS-ing whatever completed (even)
//!   sequence it currently holds — any *older* lap's, so a dropped ticket
//!   never wedges its slot — to its own in-progress value, then stores the
//!   payload words, then releases the completed sequence.
//!
//! When writers wrap the ring faster than a lagging writer finishes, the
//! claim fails and the event is **dropped, counted** in
//! [`dropped`](FlightRecorder::dropped) — the recorder is lock-free and
//! lossy under overwrite pressure, never blocking the hot path. Readers
//! ([`events`](FlightRecorder::events)) re-check the sequence after reading
//! the payload and skip slots that changed mid-read, so a dump contains
//! only complete, untorn events (the most recent `capacity` of them, in
//! record order).
//!
//! # Time
//!
//! The clock follows the explicit-time pattern of
//! `rank_stats::tokens::TokenBucket`: by default timestamps come from a
//! monotonic [`Instant`] epoch, but a [`ManualClock`] makes every
//! timestamp deterministic for tests and simulation, and
//! [`record_at`](FlightRecorder::record_at) accepts a caller-supplied
//! `now_ns` directly.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once, Weak};
use std::time::Instant;

use parking_lot::Mutex;

/// Maximum label bytes stored inline per event; longer labels are truncated
/// at a UTF-8 boundary.
pub const MAX_LABEL_BYTES: usize = 24;

/// The structured event kinds the system records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// An elastic lane-table resize committed. Fields: `epoch`,
    /// `from_lanes`, `to_lanes`; label: queue name.
    Resize = 1,
    /// An elastic-controller window closed and took a decision. Fields:
    /// `decision` (0 hold, 1 grow, 2 shrink), `window_lock_retries`,
    /// `window_sparse_retries`; label: queue name.
    ControllerTick = 2,
    /// An insert fell back to the blocking floor-lane path after exhausting
    /// its lock attempts. Fields: `lane`, `retries`, unused; label: queue
    /// name.
    LaneContention = 3,
    /// An admission gate refused an operation. Fields: `category` (see
    /// [`refusal_category_name`]), `key`, `inflight`; label: tenant/queue
    /// name.
    QuotaRefusal = 4,
    /// A service session opened. Fields: `session_id`, unused, unused.
    SessionOpen = 5,
    /// A service session closed. Fields: `session_id`, unused, unused.
    SessionClose = 6,
    /// A scheduler worker observed quiescence and terminated. Fields:
    /// `worker`, `executed`, unused.
    Quiescence = 7,
    /// A thread panicked inside a [`PanicScope`]; label: the panic message
    /// (truncated).
    Panic = 8,
}

impl EventKind {
    fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            1 => EventKind::Resize,
            2 => EventKind::ControllerTick,
            3 => EventKind::LaneContention,
            4 => EventKind::QuotaRefusal,
            5 => EventKind::SessionOpen,
            6 => EventKind::SessionClose,
            7 => EventKind::Quiescence,
            8 => EventKind::Panic,
            _ => return None,
        })
    }

    /// A short lowercase name for dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Resize => "resize",
            EventKind::ControllerTick => "controller-tick",
            EventKind::LaneContention => "lane-contention",
            EventKind::QuotaRefusal => "quota-refusal",
            EventKind::SessionOpen => "session-open",
            EventKind::SessionClose => "session-close",
            EventKind::Quiescence => "quiescence",
            EventKind::Panic => "panic",
        }
    }

    /// Names for the three numeric fields, used by the dumps.
    pub fn field_names(self) -> [&'static str; 3] {
        match self {
            EventKind::Resize => ["epoch", "from_lanes", "to_lanes"],
            EventKind::ControllerTick => ["decision", "lock_retries", "sparse_retries"],
            EventKind::LaneContention => ["lane", "retries", "_"],
            EventKind::QuotaRefusal => ["category", "key", "inflight"],
            EventKind::SessionOpen | EventKind::SessionClose => ["session", "_", "_"],
            EventKind::Quiescence => ["worker", "executed", "_"],
            EventKind::Panic => ["_", "_", "_"],
        }
    }
}

/// Admission-refusal category codes carried in [`EventKind::QuotaRefusal`]
/// field 0.
pub mod refusal_category {
    /// Queue was dropped (tombstone).
    pub const DROPPED: u64 = 0;
    /// In-flight element quota exceeded.
    pub const INFLIGHT: u64 = 1;
    /// Rate limit shed background-class work.
    pub const RATE_BACKGROUND: u64 = 2;
    /// Rate limit refused urgent-class work.
    pub const RATE_URGENT: u64 = 3;
    /// Refused by an outer layer (e.g. reserved key).
    pub const EXTERNAL: u64 = 4;
}

/// Human-readable name for a [`refusal_category`] code.
pub fn refusal_category_name(code: u64) -> &'static str {
    match code {
        refusal_category::DROPPED => "dropped",
        refusal_category::INFLIGHT => "inflight",
        refusal_category::RATE_BACKGROUND => "rate-background",
        refusal_category::RATE_URGENT => "rate-urgent",
        refusal_category::EXTERNAL => "external",
        _ => "unknown",
    }
}

/// A decoded event, as returned by [`FlightRecorder::events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Global record order (0-based ticket; gaps mean dropped events).
    pub seq: u64,
    /// Timestamp in nanoseconds on the recorder's clock.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Three kind-specific numeric fields (see [`EventKind::field_names`]).
    pub fields: [u64; 3],
    /// Inline label (queue/tenant name, decision, panic message — truncated
    /// to [`MAX_LABEL_BYTES`]).
    pub label: String,
}

/// A shareable, settable nanosecond clock for deterministic tests.
#[derive(Clone, Debug, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the absolute time.
    pub fn set_ns(&self, ns: u64) {
        self.0.store(ns, Ordering::SeqCst);
    }

    /// Advances the time by `delta` ns.
    pub fn advance_ns(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::SeqCst);
    }

    /// The current time.
    pub fn now_ns(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

#[derive(Debug)]
enum ClockSource {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

/// Payload words per slot: kind+label-length, timestamp, three fields,
/// three label words.
const SLOT_WORDS: usize = 8;

#[derive(Debug)]
struct Slot {
    /// `0` = never written; `2t + 1` = ticket `t` in progress; `2t + 2` =
    /// ticket `t` complete.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

/// The fixed-size lock-free event ring. See the module docs for the slot
/// protocol and overwrite semantics.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    dropped: AtomicU64,
    clock: ClockSource,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 8), timestamped from a monotonic epoch taken
    /// now.
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, ClockSource::Monotonic(Instant::now()))
    }

    /// A recorder driven by `clock` — every event is timestamped with the
    /// clock's current value, so tests control time explicitly (the
    /// `TokenBucket` pattern).
    pub fn with_manual_clock(capacity: usize, clock: &ManualClock) -> Self {
        Self::build(capacity, ClockSource::Manual(Arc::clone(&clock.0)))
    }

    fn build(capacity: usize, clock: ClockSource) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            clock,
        }
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped because a lapped slot was still being written.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events recorded (dropped ones excluded). Loads `dropped`
    /// before `head` (and saturates) so concurrent drops between the two
    /// loads can never make the difference go negative.
    pub fn recorded(&self) -> u64 {
        let dropped = self.dropped();
        self.head.load(Ordering::Relaxed).saturating_sub(dropped)
    }

    /// The current time on this recorder's clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match &self.clock {
            ClockSource::Monotonic(epoch) => epoch.elapsed().as_nanos() as u64,
            ClockSource::Manual(ns) => ns.load(Ordering::SeqCst),
        }
    }

    /// Records an event timestamped with the recorder's clock.
    pub fn record(&self, kind: EventKind, label: &str, fields: [u64; 3]) {
        self.record_at(self.now_ns(), kind, label, fields);
    }

    /// Records an event with an explicit timestamp (callers that already
    /// read a clock thread it through, like the token bucket).
    pub fn record_at(&self, now_ns: u64, kind: EventKind, label: &str, fields: [u64; 3]) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Claim the slot by CAS-ing whatever *completed* sequence it holds —
        // 0 (never written) or `2u + 2` for any older ticket `u < ticket`,
        // not just the immediately previous lap: if an earlier ticket mapped
        // here was dropped, the slot still holds an older lap's sequence and
        // must be skipped over, not wedged forever. Drop only when the slot
        // is mid-write (odd) or a newer ticket already owns it.
        let claimed = loop {
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq % 2 == 1 || seq > 2 * ticket + 1 {
                break false;
            }
            if slot
                .seq
                .compare_exchange_weak(seq, 2 * ticket + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break true;
            }
        };
        if !claimed {
            // A lagging writer from a previous lap is still writing the slot
            // (or a faster one already lapped us): drop, count, stay
            // lock-free.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut label_bytes = [0u8; MAX_LABEL_BYTES];
        let mut len = label.len().min(MAX_LABEL_BYTES);
        while len > 0 && !label.is_char_boundary(len) {
            len -= 1;
        }
        label_bytes[..len].copy_from_slice(&label.as_bytes()[..len]);
        slot.words[0].store(kind as u64 | ((len as u64) << 8), Ordering::Relaxed);
        slot.words[1].store(now_ns, Ordering::Relaxed);
        slot.words[2].store(fields[0], Ordering::Relaxed);
        slot.words[3].store(fields[1], Ordering::Relaxed);
        slot.words[4].store(fields[2], Ordering::Relaxed);
        for (i, chunk) in label_bytes.chunks_exact(8).enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            slot.words[5 + i].store(u64::from_le_bytes(word), Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Decodes every complete, untorn event currently in the ring, in
    /// record order (ascending `seq`).
    pub fn events(&self) -> Vec<EventRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 == 1 {
                continue; // never written, or mid-write
            }
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Seqlock reader recipe: the fence orders the relaxed payload
            // loads above before the validating seq re-load, so a torn read
            // cannot pass the check on weakly-ordered hardware.
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 {
                continue; // overwritten while we read: skip the torn slot
            }
            let ticket = seq1 / 2 - 1;
            let Some(kind) = EventKind::from_code(words[0] & 0xFF) else {
                continue;
            };
            let len = ((words[0] >> 8) & 0xFF) as usize;
            let mut label_bytes = [0u8; MAX_LABEL_BYTES];
            for (i, chunk) in label_bytes.chunks_exact_mut(8).enumerate() {
                chunk.copy_from_slice(&words[5 + i].to_le_bytes());
            }
            let label =
                String::from_utf8_lossy(&label_bytes[..len.min(MAX_LABEL_BYTES)]).into_owned();
            out.push(EventRecord {
                seq: ticket,
                ts_ns: words[1],
                kind,
                fields: [words[2], words[3], words[4]],
                label,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// A human-readable dump: one line per event plus a drop summary.
    pub fn dump_text(&self) -> String {
        use std::fmt::Write as _;
        let events = self.events();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} event(s) retained, {} recorded, {} dropped",
            events.len(),
            self.recorded(),
            self.dropped()
        );
        for e in &events {
            let names = e.kind.field_names();
            let _ = write!(
                out,
                "  [{:>6}] {:>12}ns {:<15}",
                e.seq,
                e.ts_ns,
                e.kind.name()
            );
            if !e.label.is_empty() {
                let _ = write!(out, " {}", e.label);
            }
            for (name, value) in names.iter().zip(e.fields.iter()) {
                if *name != "_" {
                    let _ = write!(out, " {name}={value}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// A JSON dump (hand-rolled, matching the bench harness's row style).
    pub fn dump_json(&self) -> String {
        use std::fmt::Write as _;
        let events = self.events();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"recorded\":{},\"dropped\":{},\"events\":[",
            self.recorded(),
            self.dropped()
        );
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let label = e
                .label
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            let _ = write!(
                out,
                "{{\"seq\":{},\"ts_ns\":{},\"kind\":\"{}\",\"label\":\"{}\",\"fields\":[{},{},{}]}}",
                e.seq,
                e.ts_ns,
                e.kind.name(),
                label,
                e.fields[0],
                e.fields[1],
                e.fields[2]
            );
        }
        out.push_str("]}");
        out
    }
}

thread_local! {
    /// The recorders whose [`PanicScope`]s are active on this thread,
    /// innermost last.
    static PANIC_RECORDERS: RefCell<Vec<Weak<FlightRecorder>>> = const { RefCell::new(Vec::new()) };
}

static HOOK_ONCE: Once = Once::new();
static LAST_PANIC_DUMP: Mutex<Option<String>> = Mutex::new(None);

/// Serializes tests that exercise the process-global panic-dump slot
/// (here and in `lib.rs`); without it parallel panic tests stomp each
/// other's dumps.
#[cfg(test)]
pub(crate) static PANIC_TEST_LOCK: Mutex<()> = Mutex::new(());

/// While alive, panics on this thread are recorded into the scoped
/// [`FlightRecorder`] and a text dump is captured (readable via
/// [`take_last_panic_dump`]) before the previous panic hook runs.
#[derive(Debug)]
pub struct PanicScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl FlightRecorder {
    /// Enters a panic scope on the current thread (installing the global
    /// panic hook on first use; the hook chains to the previously installed
    /// one, so default backtraces still print).
    pub fn panic_scope(self: &Arc<Self>) -> PanicScope {
        install_panic_hook();
        PANIC_RECORDERS.with(|r| r.borrow_mut().push(Arc::downgrade(self)));
        PanicScope {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for PanicScope {
    fn drop(&mut self) {
        let _ = PANIC_RECORDERS.try_with(|r| r.borrow_mut().pop());
    }
}

/// Installs (once, process-wide) a panic hook that dumps the panicking
/// thread's scoped flight recorder. Called automatically by
/// [`FlightRecorder::panic_scope`].
pub fn install_panic_hook() {
    HOOK_ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let recorder = PANIC_RECORDERS
                .try_with(|r| r.borrow().last().and_then(Weak::upgrade))
                .ok()
                .flatten();
            if let Some(recorder) = recorder {
                let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "panic".to_string()
                };
                recorder.record(EventKind::Panic, &message, [0, 0, 0]);
                let mut dump = recorder.dump_text();
                // A scoped span ring (see `trace::SpanRing::panic_scope`)
                // rides along in the same dump: the spans leading up to the
                // panic are exactly what a post-mortem wants next.
                if let Some(spans) = crate::trace::scoped_panic_span_dump() {
                    dump.push_str(&spans);
                }
                eprintln!("[choice-obs] flight-recorder dump after panic:\n{dump}");
                *LAST_PANIC_DUMP.lock() = Some(dump);
            }
            previous(info);
        }));
    });
}

/// Takes (and clears) the most recent panic-hook dump, if any panic happened
/// inside a [`PanicScope`] since the last take.
pub fn take_last_panic_dump() -> Option<String> {
    LAST_PANIC_DUMP.lock().take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_decodes_in_order_with_manual_clock() {
        let clock = ManualClock::new();
        let rec = FlightRecorder::with_manual_clock(16, &clock);
        clock.set_ns(100);
        rec.record(EventKind::Resize, "default", [1, 4, 8]);
        clock.advance_ns(50);
        rec.record(
            EventKind::QuotaRefusal,
            "tenant/a",
            [refusal_category::INFLIGHT, 9, 2],
        );
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].ts_ns, 100);
        assert_eq!(events[0].kind, EventKind::Resize);
        assert_eq!(events[0].fields, [1, 4, 8]);
        assert_eq!(events[0].label, "default");
        assert_eq!(events[1].ts_ns, 150);
        assert_eq!(events[1].label, "tenant/a");
        assert_eq!(rec.recorded(), 2);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn ring_keeps_the_most_recent_capacity_events() {
        let clock = ManualClock::new();
        let rec = FlightRecorder::with_manual_clock(8, &clock);
        for i in 0..20u64 {
            clock.set_ns(i);
            rec.record(EventKind::SessionOpen, "", [i, 0, 0]);
        }
        let events = rec.events();
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        assert_eq!(rec.dropped(), 0, "a single writer never drops");
    }

    /// Regression: a dropped (or otherwise never-completed) ticket must not
    /// wedge its slot. Skipping a ticket leaves the slot holding an old
    /// lap's sequence; every later writer mapped there must skip over the
    /// stale lap and claim the slot, not drop forever.
    #[test]
    fn a_skipped_ticket_does_not_wedge_its_slot() {
        let clock = ManualClock::new();
        let rec = FlightRecorder::with_manual_clock(8, &clock);
        for i in 0..8u64 {
            rec.record(EventKind::SessionOpen, "", [i, 0, 0]);
        }
        // Simulate a writer that took ticket 8 but never wrote (the shape a
        // CAS-failure drop leaves behind): slot 0 keeps lap 0's sequence.
        rec.head.fetch_add(1, Ordering::Relaxed);
        for i in 9..33u64 {
            rec.record(EventKind::SessionOpen, "", [i, 0, 0]);
        }
        assert_eq!(rec.dropped(), 0, "stale laps are skipped, not dropped");
        let events = rec.events();
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (25..33).collect::<Vec<_>>(), "slot 0 kept recording");
    }

    #[test]
    fn labels_truncate_at_char_boundaries() {
        let rec = FlightRecorder::new(8);
        let long = "αβγδεζηθικλμνξοπρ"; // 2 bytes per char: 34 bytes
        rec.record(EventKind::Panic, long, [0, 0, 0]);
        let events = rec.events();
        assert_eq!(events[0].label, &long[..24]);
        assert!(long.is_char_boundary(events[0].label.len()));
    }

    #[test]
    fn concurrent_writers_never_tear_a_reader() {
        let rec = Arc::new(FlightRecorder::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        rec.record(EventKind::ControllerTick, "q", [t, i, t * i]);
                    }
                });
            }
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for _ in 0..200 {
                    for e in rec.events() {
                        // Payload invariant: fields[2] == fields[0]*fields[1].
                        assert_eq!(e.fields[2], e.fields[0] * e.fields[1], "torn event");
                        assert_eq!(e.label, "q");
                    }
                }
            });
        });
        assert_eq!(rec.recorded() + rec.dropped(), 4 * 5_000);
        let events = rec.events();
        assert!(events.len() <= 64);
        // Record order is strictly increasing.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn dumps_render_text_and_json() {
        let clock = ManualClock::new();
        let rec = FlightRecorder::with_manual_clock(8, &clock);
        clock.set_ns(42);
        rec.record(EventKind::Resize, "default", [3, 4, 8]);
        let text = rec.dump_text();
        assert!(text.contains("resize"));
        assert!(text.contains("epoch=3"));
        assert!(text.contains("from_lanes=4"));
        assert!(text.contains("to_lanes=8"));
        assert!(text.contains("default"));
        let json = rec.dump_json();
        assert!(json.contains("\"kind\":\"resize\""));
        assert!(json.contains("\"ts_ns\":42"));
        assert!(json.contains("\"fields\":[3,4,8]"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    /// One test covers both panic-hook behaviours (in order, because the
    /// last-dump slot is process-global): a panic outside any scope leaves
    /// no dump, a panic inside a scope leaves one.
    #[test]
    fn panic_scope_captures_a_dump_and_unscoped_panics_do_not() {
        let _guard = PANIC_TEST_LOCK.lock();
        let _ = take_last_panic_dump();
        install_panic_hook();
        let result = std::thread::spawn(|| panic!("unscoped")).join();
        assert!(result.is_err());
        assert!(take_last_panic_dump().is_none(), "no scope, no dump");

        let rec = Arc::new(FlightRecorder::new(8));
        rec.record(EventKind::SessionOpen, "", [7, 0, 0]);
        let rec2 = Arc::clone(&rec);
        let result = std::thread::spawn(move || {
            let _scope = rec2.panic_scope();
            panic!("deliberate test panic");
        })
        .join();
        assert!(result.is_err());
        let dump = take_last_panic_dump().expect("panic inside a scope leaves a dump");
        assert!(dump.contains("panic"));
        assert!(dump.contains("deliberate test panic"));
        assert!(dump.contains("session-open"));
        assert!(take_last_panic_dump().is_none(), "take clears");
        // The recorder itself holds the panic event too.
        assert!(rec.events().iter().any(|e| e.kind == EventKind::Panic));
    }
}
