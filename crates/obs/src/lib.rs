//! `choice-obs` — unified telemetry for the (1 + β) MultiQueue stack.
//!
//! Three pieces, all built for a hot path that must stay within a ~3%
//! overhead budget (gated by the `t13_obs` benchmark):
//!
//! * [`metrics`] — a lock-free [`MetricsRegistry`] of counters, gauges, and
//!   log-bucketed histograms. Cells are sharded per thread so an increment
//!   is one uncontended `fetch_add`; [`MetricsRegistry::snapshot`] merges
//!   the shards consistently and renders Prometheus exposition text.
//! * [`recorder`] — a [`FlightRecorder`]: a fixed-size lock-free ring of
//!   structured events (resizes, controller ticks, quota refusals, session
//!   lifecycle, quiescence, panics) with deterministic-clock support and
//!   panic-hook dumps for post-mortem traces.
//! * [`sample`] — a deterministic [`LatencySampler`] for 1-in-N op timing.
//!
//! The [`ObsHub`] bundles one registry + one recorder; every layer (core
//! queue, scheduler, registry, service) accepts an `Arc<ObsHub>` and both
//! writes and dumps flow through it.
//!
//! # Example
//!
//! ```
//! use choice_obs::{EventKind, ObsHub};
//!
//! let hub = ObsHub::new();
//! let ops = hub.metrics().counter("ops_total", &[("queue", "default")]);
//! ops.inc();
//! hub.recorder().record(EventKind::Resize, "default", [1, 4, 8]);
//! let snapshot = hub.metrics().snapshot();
//! assert_eq!(snapshot.counter("ops_total", &[("queue", "default")]), Some(1));
//! assert!(hub.recorder().dump_text().contains("resize"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod recorder;
pub mod sample;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricRow, MetricsRegistry, MetricsSnapshot,
};
pub use recorder::{
    install_panic_hook, refusal_category, refusal_category_name, take_last_panic_dump, EventKind,
    EventRecord, FlightRecorder, ManualClock, PanicScope,
};
pub use sample::LatencySampler;

use std::sync::Arc;

/// Default flight-recorder capacity (events retained) for hubs built with
/// [`ObsHub::new`].
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

/// One metrics registry plus one flight recorder: the unit of telemetry
/// every layer is wired to.
#[derive(Debug)]
pub struct ObsHub {
    metrics: Arc<MetricsRegistry>,
    recorder: Arc<FlightRecorder>,
}

impl ObsHub {
    /// A hub with the default recorder capacity and a monotonic clock.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<ObsHub> {
        Self::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// A hub retaining up to `events` flight-recorder events.
    pub fn with_capacity(events: usize) -> Arc<ObsHub> {
        Arc::new(ObsHub {
            metrics: Arc::new(MetricsRegistry::new()),
            recorder: Arc::new(FlightRecorder::new(events)),
        })
    }

    /// A hub whose recorder is driven by `clock` (deterministic timestamps
    /// for tests and simulation).
    pub fn with_manual_clock(events: usize, clock: &ManualClock) -> Arc<ObsHub> {
        Arc::new(ObsHub {
            metrics: Arc::new(MetricsRegistry::new()),
            recorder: Arc::new(FlightRecorder::with_manual_clock(events, clock)),
        })
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The full exposition dump: Prometheus metrics text, optionally
    /// followed by the flight-recorder events rendered as `# `-prefixed
    /// comment lines (so the result stays scrapeable).
    pub fn render_dump(&self, include_events: bool) -> String {
        let mut out = self.metrics.snapshot().render_prometheus();
        if include_events {
            out.push_str("# flight recorder\n");
            for line in self.recorder.dump_text().lines() {
                out.push_str("# ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_bundles_metrics_and_recorder() {
        let hub = ObsHub::with_capacity(16);
        hub.metrics().counter("a_total", &[]).inc();
        hub.recorder().record(EventKind::SessionOpen, "", [1, 0, 0]);
        let dump = hub.render_dump(true);
        assert!(dump.contains("a_total 1"));
        assert!(dump.contains("# flight recorder"));
        assert!(dump.contains("session-open"));
        // Every flight-recorder line is a comment: still scrapeable.
        for line in dump.lines() {
            assert!(
                line.starts_with('#') || !line.contains("session-open"),
                "event lines must be comments: {line}"
            );
        }
        let without = hub.render_dump(false);
        assert!(!without.contains("flight recorder"));
    }

    #[test]
    fn manual_clock_hub_is_deterministic() {
        let clock = ManualClock::new();
        let hub = ObsHub::with_manual_clock(16, &clock);
        clock.set_ns(777);
        hub.recorder().record(EventKind::Quiescence, "", [0, 9, 0]);
        assert_eq!(hub.recorder().events()[0].ts_ns, 777);
    }
}
