//! `choice-obs` — unified telemetry for the (1 + β) MultiQueue stack.
//!
//! Five pieces, all built for a hot path that must stay within a ~3%
//! overhead budget (gated by the `t13_obs` benchmark):
//!
//! * [`metrics`] — a lock-free [`MetricsRegistry`] of counters, gauges, and
//!   log-bucketed histograms. Cells are sharded per thread so an increment
//!   is one uncontended `fetch_add`; [`MetricsRegistry::snapshot`] merges
//!   the shards consistently and renders Prometheus exposition text.
//! * [`recorder`] — a [`FlightRecorder`]: a fixed-size lock-free ring of
//!   structured events (resizes, controller ticks, quota refusals, session
//!   lifecycle, quiescence, panics) with deterministic-clock support and
//!   panic-hook dumps for post-mortem traces.
//! * [`trace`] — a [`SpanRing`]: the same lock-free ring discipline
//!   carrying per-request stage timings (recv → decode → admit → queue-op
//!   → flush) for wire-v5 traced requests.
//! * [`window`] — a [`RateWindow`] of periodic [`MetricsSnapshot`] deltas,
//!   turning cumulative counters into ops/s and lifetime histograms into
//!   last-window p99s.
//! * [`sample`] — a deterministic [`LatencySampler`] for 1-in-N op timing.
//!
//! The [`ObsHub`] bundles one of each ring/registry; every layer (core
//! queue, scheduler, registry, service) accepts an `Arc<ObsHub>` and both
//! writes and dumps flow through it.
//!
//! # Example
//!
//! ```
//! use choice_obs::{EventKind, ObsHub};
//!
//! let hub = ObsHub::new();
//! let ops = hub.metrics().counter("ops_total", &[("queue", "default")]);
//! ops.inc();
//! hub.recorder().record(EventKind::Resize, "default", [1, 4, 8]);
//! let snapshot = hub.metrics().snapshot();
//! assert_eq!(snapshot.counter("ops_total", &[("queue", "default")]), Some(1));
//! assert!(hub.recorder().dump_text().contains("resize"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod recorder;
pub mod sample;
pub mod trace;
pub mod window;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricRow, MetricsRegistry, MetricsSnapshot,
};
pub use recorder::{
    install_panic_hook, refusal_category, refusal_category_name, take_last_panic_dump, EventKind,
    EventRecord, FlightRecorder, ManualClock, PanicScope,
};
pub use sample::LatencySampler;
pub use trace::{SpanPanicScope, SpanRecord, SpanRing, SpanStage, SPAN_STAGES};
pub use window::{RateWindow, WindowRates, DEFAULT_WINDOW_SLOTS};

use std::sync::Arc;

/// Default flight-recorder capacity (events retained) for hubs built with
/// [`ObsHub::new`].
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

/// Default span-ring capacity (traced-request spans retained).
pub const DEFAULT_SPAN_CAPACITY: usize = 256;

/// One metrics registry, one flight recorder, one span ring, and one rate
/// window: the unit of telemetry every layer is wired to.
#[derive(Debug)]
pub struct ObsHub {
    metrics: Arc<MetricsRegistry>,
    recorder: Arc<FlightRecorder>,
    spans: Arc<SpanRing>,
    window: Arc<RateWindow>,
}

impl ObsHub {
    /// A hub with the default recorder capacity and a monotonic clock.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<ObsHub> {
        Self::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// A hub retaining up to `events` flight-recorder events.
    pub fn with_capacity(events: usize) -> Arc<ObsHub> {
        Arc::new(ObsHub {
            metrics: Arc::new(MetricsRegistry::new()),
            recorder: Arc::new(FlightRecorder::new(events)),
            spans: Arc::new(SpanRing::new(DEFAULT_SPAN_CAPACITY)),
            window: Arc::new(RateWindow::new(DEFAULT_WINDOW_SLOTS)),
        })
    }

    /// A hub whose recorder is driven by `clock` (deterministic timestamps
    /// for tests and simulation). Span timestamps and window pushes use the
    /// same clock (see [`window_tick`](Self::window_tick)).
    pub fn with_manual_clock(events: usize, clock: &ManualClock) -> Arc<ObsHub> {
        Arc::new(ObsHub {
            metrics: Arc::new(MetricsRegistry::new()),
            recorder: Arc::new(FlightRecorder::with_manual_clock(events, clock)),
            spans: Arc::new(SpanRing::new(DEFAULT_SPAN_CAPACITY)),
            window: Arc::new(RateWindow::new(DEFAULT_WINDOW_SLOTS)),
        })
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The traced-request span ring.
    pub fn spans(&self) -> &Arc<SpanRing> {
        &self.spans
    }

    /// The windowed-rates ring.
    pub fn window(&self) -> &Arc<RateWindow> {
        &self.window
    }

    /// Pushes one metrics snapshot into the rate window, timestamped on
    /// the recorder's clock (so manual-clock hubs stay deterministic).
    /// Callers with a natural cadence — a dump request, a completed
    /// scheduler run — tick the window; rates emerge from the deltas.
    pub fn window_tick(&self) {
        self.window
            .push(self.recorder.now_ns(), self.metrics.snapshot());
    }

    /// The full exposition dump: Prometheus metrics text, the windowed
    /// rates derived from previous dumps (each call pushes one snapshot
    /// into the window first), and optionally the flight-recorder events
    /// and request spans rendered as `# `-prefixed comment lines (so the
    /// result stays scrapeable).
    pub fn render_dump(&self, include_events: bool) -> String {
        self.window_tick();
        let mut out = self.metrics.snapshot().render_prometheus();
        out.push_str(&self.window.render());
        if include_events {
            out.push_str("# flight recorder\n");
            for line in self.recorder.dump_text().lines() {
                out.push_str("# ");
                out.push_str(line);
                out.push('\n');
            }
            out.push_str("# request spans\n");
            for line in self.spans.dump_text().lines() {
                out.push_str("# ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_bundles_metrics_and_recorder() {
        let hub = ObsHub::with_capacity(16);
        hub.metrics().counter("a_total", &[]).inc();
        hub.recorder().record(EventKind::SessionOpen, "", [1, 0, 0]);
        let dump = hub.render_dump(true);
        assert!(dump.contains("a_total 1"));
        assert!(dump.contains("# flight recorder"));
        assert!(dump.contains("session-open"));
        // Every flight-recorder line is a comment: still scrapeable.
        for line in dump.lines() {
            assert!(
                line.starts_with('#') || !line.contains("session-open"),
                "event lines must be comments: {line}"
            );
        }
        let without = hub.render_dump(false);
        assert!(!without.contains("flight recorder"));
    }

    #[test]
    fn manual_clock_hub_is_deterministic() {
        let clock = ManualClock::new();
        let hub = ObsHub::with_manual_clock(16, &clock);
        clock.set_ns(777);
        hub.recorder().record(EventKind::Quiescence, "", [0, 9, 0]);
        assert_eq!(hub.recorder().events()[0].ts_ns, 777);
    }

    #[test]
    fn consecutive_dumps_expose_windowed_rates() {
        let clock = ManualClock::new();
        let hub = ObsHub::with_manual_clock(16, &clock);
        let ops = hub.metrics().counter("ops_total", &[]);
        clock.set_ns(0);
        let first = hub.render_dump(false);
        assert!(
            !first.contains("window_rate_per_sec"),
            "one snapshot has no span to rate over"
        );
        ops.add(400);
        clock.set_ns(2_000_000_000);
        let second = hub.render_dump(false);
        assert!(second.contains("window_span_seconds 2"));
        assert!(
            second.contains("window_rate_per_sec{metric=\"ops_total\"} 200"),
            "dump:\n{second}"
        );
        for line in second.lines() {
            assert!(
                line.is_empty() || line.starts_with('#') || line.split_whitespace().count() == 2,
                "unscrapeable line: {line}"
            );
        }
    }

    #[test]
    fn dump_includes_request_spans_as_comments() {
        let hub = ObsHub::with_capacity(16);
        hub.spans().record(0xBEEF, 3, 10, [1, 2, 3, 4, 5]);
        let dump = hub.render_dump(true);
        assert!(dump.contains("# request spans"));
        assert!(dump.contains("queue-op=4"));
        let without = hub.render_dump(false);
        assert!(!without.contains("request spans"));
    }

    #[test]
    fn panic_inside_a_span_scope_dumps_the_spans_too() {
        let _guard = recorder::PANIC_TEST_LOCK.lock();
        let _ = take_last_panic_dump();
        let hub = ObsHub::with_capacity(8);
        hub.recorder().record(EventKind::SessionOpen, "", [1, 0, 0]);
        hub.spans().record(0x51AB, 2, 5, [9, 9, 9, 9, 9]);
        let hub2 = Arc::clone(&hub);
        let result = std::thread::spawn(move || {
            let _rec_scope = hub2.recorder().panic_scope();
            let _span_scope = hub2.spans().panic_scope();
            panic!("deliberate span panic");
        })
        .join();
        assert!(result.is_err());
        let dump = take_last_panic_dump().expect("scoped panic leaves a dump");
        assert!(dump.contains("deliberate span panic"));
        assert!(dump.contains("span ring: 1 span(s)"), "dump:\n{dump}");
    }
}
