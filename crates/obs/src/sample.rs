//! Deterministic 1-in-N sampling for hot-path latency profiling.
//!
//! Timing every queue operation would put two clock reads on the hot path;
//! sampling 1-in-N keeps the overhead at `2/N` clock reads per op while the
//! log-bucketed histograms only need order-of-magnitude resolution anyway.
//! The stride is deterministic (every N-th call, not random), which biases
//! nothing for the workloads here — operations are not phase-locked to the
//! stride — and keeps the sampler a two-word struct with no RNG state.

/// A deterministic every-N-th sampler.
#[derive(Clone, Copy, Debug)]
pub struct LatencySampler {
    every: u32,
    countdown: u32,
}

impl LatencySampler {
    /// Samples every `every`-th tick (1 samples everything).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn new(every: u32) -> Self {
        assert!(every > 0, "sampling stride must be positive");
        Self {
            every,
            countdown: every,
        }
    }

    /// The configured stride.
    pub fn every(&self) -> u32 {
        self.every
    }

    /// Advances one tick; returns whether this tick should be sampled.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.every;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_exactly_one_in_n() {
        let mut s = LatencySampler::new(4);
        let hits: Vec<bool> = (0..12).map(|_| s.tick()).collect();
        assert_eq!(
            hits,
            [false, false, false, true, false, false, false, true, false, false, false, true]
        );
        assert_eq!(s.every(), 4);
    }

    #[test]
    fn stride_one_samples_everything() {
        let mut s = LatencySampler::new(1);
        assert!((0..5).all(|_| s.tick()));
    }

    #[test]
    #[should_panic(expected = "sampling stride must be positive")]
    fn zero_stride_panics() {
        let _ = LatencySampler::new(0);
    }
}
