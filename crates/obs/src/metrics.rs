//! The lock-free metrics core: counters, gauges, and log-bucketed histograms
//! registered by name + label set, sharded per thread.
//!
//! # Sharding
//!
//! Every metric cell is an array of [`SHARD_COUNT`] cache-padded atomics.
//! Each thread is assigned one shard index round-robin on first use
//! (a thread-local, set once), so a hot-path increment is a single
//! `fetch_add` on a cache line no other thread is writing — the same
//! false-sharing discipline the MultiQueue lane table uses. [`snapshot`]
//! merges the shards with plain atomic loads.
//!
//! # Consistency
//!
//! A snapshot is *per-cell consistent, monotone, and conserved*: each
//! metric's value is a sum of per-shard atomic loads, so it can never tear
//! within a shard (loads are atomic), never goes backwards across snapshots
//! (shards only grow for counters), and after writers quiesce it equals
//! exactly the number of recorded operations. Snapshots are **not** atomic
//! *across* metrics: two counters incremented by the same thread may be
//! caught one-apart mid-flight. Histogram sample counts are *derived from
//! the bucket sums* rather than kept in a separate cell, so "bucket totals
//! equal recorded-sample counts" holds by construction in every snapshot.
//!
//! [`snapshot`]: MetricsRegistry::snapshot

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

/// Number of per-thread shards in every metric cell. A power of two; more
/// shards than this many concurrent writers simply alias (still correct,
/// occasionally contended).
pub const SHARD_COUNT: usize = 16;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
}

/// This thread's shard index (assigned round-robin on first use).
#[inline]
fn shard_index() -> usize {
    MY_SHARD.with(|s| *s)
}

fn new_shards() -> [CachePadded<AtomicU64>; SHARD_COUNT] {
    std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0)))
}

/// A monotonically increasing sharded counter.
#[derive(Debug)]
pub struct Counter {
    shards: [CachePadded<AtomicU64>; SHARD_COUNT],
}

impl Counter {
    fn new() -> Self {
        Self {
            shards: new_shards(),
        }
    }

    /// Adds one (a single uncontended `fetch_add` on the hot path).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].fetch_add(n, Ordering::Relaxed);
    }

    /// The current value: the sum over shards (saturating).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.load(Ordering::Acquire)))
    }
}

/// A sharded signed gauge (deltas only — a sharded cell has no meaningful
/// `set`). The value is the sum of per-shard deltas.
#[derive(Debug)]
pub struct Gauge {
    /// Per-shard running delta, stored as two's-complement `u64` so wrapping
    /// adds of negative deltas sum correctly modulo 2^64.
    shards: [CachePadded<AtomicU64>; SHARD_COUNT],
}

impl Gauge {
    fn new() -> Self {
        Self {
            shards: new_shards(),
        }
    }

    /// Applies a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.shards[shard_index()].fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value: the wrapping sum over shards, reinterpreted as
    /// signed (exact as long as the true value fits in `i64`).
    pub fn value(&self) -> i64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.load(Ordering::Acquire))) as i64
    }
}

/// Number of power-of-two buckets (matches `rank_stats::LogHistogram`:
/// bucket 0 holds the value 0, bucket `i >= 1` covers `[2^(i-1), 2^i)`).
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramShard {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A sharded log-bucketed histogram (power-of-two buckets, like
/// `rank_stats::LogHistogram` but concurrent). The sample count is always
/// derived from the bucket sums, so a snapshot's count and its bucket totals
/// cannot disagree.
#[derive(Debug)]
pub struct Histogram {
    shards: [CachePadded<HistogramShard>; SHARD_COUNT],
}

#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Histogram {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| {
                CachePadded::new(HistogramShard {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    sum: AtomicU64::new(0),
                    max: AtomicU64::new(0),
                })
            }),
        }
    }

    /// Records one observation: one bucket `fetch_add`, a wrapping sum add,
    /// and a `fetch_max`, all on this thread's shard.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges the shards into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for shard in &self.shards {
            for (acc, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc = acc.saturating_add(b.load(Ordering::Acquire));
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Acquire));
            max = max.max(shard.max.load(Ordering::Acquire));
        }
        HistogramSnapshot { buckets, sum, max }
    }
}

/// An owned, merged view of a [`Histogram`] at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket 0 = value 0, bucket `i` covers
    /// `[2^(i-1), 2^i)`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Wrapping sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total recorded samples — by construction the sum of the buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Mean of the recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Approximate `q`-quantile: the upper bound of the bucket where the
    /// quantile falls (a factor-of-two overestimate at worst), `None` when
    /// empty. Same contract as `rank_stats::LogHistogram::quantile_upper_bound`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                // The top bucket (i == 64) covers [2^63, 2^64): its upper
                // bound saturates to u64::MAX instead of overflowing the
                // shift, matching render_prometheus's `le` for that bucket.
                return Some(if i == 0 {
                    0
                } else {
                    1u64.checked_shl(i as u32).unwrap_or(u64::MAX)
                });
            }
        }
        Some(u64::MAX)
    }
}

/// A metric identity: name plus sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

fn metric_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
}

/// The registry of named metrics. Registration (the `counter` / `gauge` /
/// `histogram` lookups) takes a mutex; the returned handles are `Arc`s whose
/// hot-path operations are lock-free — register once, increment forever.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Arc::clone(
            self.inner
                .lock()
                .counters
                .entry(metric_key(name, labels))
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Arc::clone(
            self.inner
                .lock()
                .gauges
                .entry(metric_key(name, labels))
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Returns (registering on first use) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        Arc::clone(
            self.inner
                .lock()
                .histograms
                .entry(metric_key(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Merges every metric's shards into an owned snapshot (sorted by name,
    /// then labels). See the module docs for the exact consistency contract.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|((name, labels), c)| MetricRow {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: c.value(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|((name, labels), g)| MetricRow {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: g.value(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|((name, labels), h)| MetricRow {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: h.snapshot(),
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// One metric in a snapshot: identity plus merged value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricRow<T> {
    /// Metric name as registered.
    pub name: String,
    /// Sorted label pairs as registered.
    pub labels: Vec<(String, String)>,
    /// Merged value at snapshot time.
    pub value: T,
}

/// An owned view of every registered metric at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name then labels.
    pub counters: Vec<MetricRow<u64>>,
    /// Gauges, sorted by name then labels.
    pub gauges: Vec<MetricRow<i64>>,
    /// Histograms, sorted by name then labels.
    pub histograms: Vec<MetricRow<HistogramSnapshot>>,
}

fn row_matches<T>(row: &MetricRow<T>, name: &str, labels: &[(&str, &str)]) -> bool {
    row.name == name
        && row.labels.len() == labels.len()
        && labels
            .iter()
            .all(|(k, v)| row.labels.iter().any(|(rk, rv)| rk == k && rv == v))
}

impl MetricsSnapshot {
    /// The value of counter `name{labels}`, if registered.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|r| row_matches(r, name, labels))
            .map(|r| r.value)
    }

    /// The value of gauge `name{labels}`, if registered.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|r| row_matches(r, name, labels))
            .map(|r| r.value)
    }

    /// The snapshot of histogram `name{labels}`, if registered.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|r| row_matches(r, name, labels))
            .map(|r| &r.value)
    }

    /// Renders the snapshot in the Prometheus plaintext exposition format
    /// (`name{label="value"} 123` lines with `# TYPE` headers; histograms as
    /// cumulative `_bucket{le=...}` series plus `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for row in &self.counters {
            type_line(&mut out, &row.name, "counter");
            render_sample(&mut out, &row.name, &row.labels, None, row.value);
        }
        for row in &self.gauges {
            type_line(&mut out, &row.name, "gauge");
            let _ = write!(out, "{}", row.name);
            render_labels(&mut out, &row.labels, None);
            let _ = writeln!(out, " {}", row.value);
        }
        for row in &self.histograms {
            type_line(&mut out, &row.name, "histogram");
            let hist = &row.value;
            let count = hist.count();
            let mut cumulative = 0u64;
            for (i, &c) in hist.buckets.iter().enumerate() {
                cumulative += c;
                if c == 0 && cumulative != count {
                    continue; // keep the dump short: only boundary + non-empty buckets
                }
                let le = if i == 0 {
                    "0".to_string()
                } else if i == 64 {
                    u64::MAX.to_string()
                } else {
                    ((1u64 << i) - 1).to_string()
                };
                render_sample(
                    &mut out,
                    &format!("{}_bucket", row.name),
                    &row.labels,
                    Some(("le", &le)),
                    cumulative,
                );
                if cumulative == count {
                    break;
                }
            }
            render_sample(
                &mut out,
                &format!("{}_bucket", row.name),
                &row.labels,
                Some(("le", "+Inf")),
                count,
            );
            render_sample(
                &mut out,
                &format!("{}_sum", row.name),
                &row.labels,
                None,
                hist.sum,
            );
            render_sample(
                &mut out,
                &format!("{}_count", row.name),
                &row.labels,
                None,
                count,
            );
        }
        out
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        );
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: u64,
) {
    out.push_str(name);
    render_labels(out, labels, extra);
    let _ = writeln!(out, " {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trips_through_registry_and_snapshot() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ops_total", &[("queue", "default")]);
        c.inc();
        c.add(9);
        // Re-registering the same identity returns the same cell.
        let again = reg.counter("ops_total", &[("queue", "default")]);
        again.inc();
        assert_eq!(c.value(), 11);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ops_total", &[("queue", "default")]), Some(11));
        assert_eq!(snap.counter("ops_total", &[("queue", "other")]), None);
        assert_eq!(snap.counter("nope", &[]), None);
    }

    #[test]
    fn label_order_does_not_split_identities() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(reg.snapshot().counters.len(), 1);
    }

    #[test]
    fn gauge_goes_up_and_down_across_threads() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("inflight", &[]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.inc();
                    }
                    for _ in 0..600 {
                        g.dec();
                    }
                });
            }
        });
        assert_eq!(g.value(), 4 * 400);
        g.add(-(4 * 400));
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn histogram_bucket_totals_equal_sample_counts_by_construction() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", &[("op", "insert")]);
        for v in [0u64, 1, 1, 3, 200, 5_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count());
        assert_eq!(snap.max, 5_000_000);
        assert_eq!(snap.sum, 5_000_205);
        // Same bucket discipline as rank_stats::LogHistogram.
        let mut reference = rank_stats_reference();
        for v in [0u64, 1, 1, 3, 200, 5_000_000] {
            reference[super::bucket_index(v)] += 1;
        }
        assert_eq!(snap.buckets.to_vec(), reference);
        assert_eq!(snap.quantile_upper_bound(0.0), Some(0));
        assert!(snap.quantile_upper_bound(1.0).unwrap() >= 5_000_000);
    }

    fn rank_stats_reference() -> Vec<u64> {
        vec![0u64; HISTOGRAM_BUCKETS]
    }

    #[test]
    fn concurrent_counting_is_conserved_and_monotone() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("churn", &[]);
        let threads = 4;
        let per_thread = 50_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
            // Snapshots taken mid-churn never tear or regress.
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                let mut last = 0u64;
                for _ in 0..100 {
                    let v = reg.snapshot().counter("churn", &[]).unwrap();
                    assert!(v >= last, "snapshot went backwards: {v} < {last}");
                    assert!(v <= threads as u64 * per_thread);
                    last = v;
                }
            });
        });
        assert_eq!(c.value(), threads as u64 * per_thread);
    }

    #[test]
    fn prometheus_rendering_is_parseable_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("ops_total", &[("queue", "q\"1")]).add(3);
        reg.gauge("inflight", &[]).add(-2);
        let h = reg.histogram("lat_ns", &[]);
        h.record(0);
        h.record(5);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total{queue=\"q\\\"1\"} 3"));
        assert!(text.contains("inflight -2"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_sum 5"));
        assert!(text.contains("lat_ns_count 2"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn quantiles_match_the_log_bucket_contract() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64, 128)
        }
        h.record(100_000); // bucket [65536, 131072)
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_bound(0.5), Some(128));
        assert_eq!(snap.quantile_upper_bound(0.99), Some(128));
        assert_eq!(snap.quantile_upper_bound(1.0), Some(131_072));
    }

    /// Regression: a sample in the top bucket [2^63, 2^64) must saturate
    /// the quantile upper bound to u64::MAX, not overflow `1 << 64`.
    #[test]
    fn quantile_saturates_in_the_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_bound(1.0), Some(u64::MAX));
        assert_eq!(snap.quantile_upper_bound(0.5), Some(u64::MAX));
    }

    /// Regression: newlines in label values must be escaped per the
    /// exposition format, or they split the sample line.
    #[test]
    fn prometheus_labels_escape_newlines() {
        let reg = MetricsRegistry::new();
        reg.counter("ops_total", &[("queue", "a\nb")]).inc();
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("ops_total{queue=\"a\\nb\"} 1"));
        assert!(
            text.lines()
                .filter(|l| !l.starts_with('#'))
                .all(|l| l.ends_with(" 1")),
            "no sample line is split"
        );
    }
}
