//! Request spans: a fixed-size lock-free ring of per-request stage timings.
//!
//! Wire v5 frames may carry an 8-byte trace id; for each sampled (traced)
//! request the server measures how long the request spent in each pipeline
//! stage — socket recv, frame decode, admission, the queue operation
//! itself, and the response flush — and records one [`SpanRecord`] here.
//! The ring rides beside the [`FlightRecorder`](crate::FlightRecorder) and
//! follows its slot discipline exactly: a `fetch_add` ticket per writer, a
//! per-slot sequence protocol (`2t + 1` in progress, `2t + 2` complete),
//! lossy-but-counted drops under overwrite pressure, and torn-read
//! detection on the reader side. See the recorder module docs for the full
//! protocol; `tests/check_recorder.rs` model-checks it (including a broken
//! torn-read variant) under the `choice-check` explorer.
//!
//! Spans are exported two ways: aggregated into `svc_stage_ns{stage=...}`
//! histograms by the server (always on for traced requests), and dumped
//! verbatim — the most recent `capacity` spans — through `MetricsDump`
//! comment lines and the panic path.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Number of timed pipeline stages per request span.
pub const SPAN_STAGES: usize = 5;

/// The pipeline stages a traced request passes through, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanStage {
    /// Reading request bytes off the socket (attributed per read call; every
    /// frame completed by one read shares its duration).
    Recv = 0,
    /// Frame split + payload decode.
    Decode = 1,
    /// Registry admission (quota / rate / tombstone checks).
    Admit = 2,
    /// The queue operation itself (insert / delete-min / batch drain).
    QueueOp = 3,
    /// Response encode + socket write (and flush, when the credit window
    /// closes).
    Flush = 4,
}

impl SpanStage {
    /// All stages in pipeline order.
    pub const ALL: [SpanStage; SPAN_STAGES] = [
        SpanStage::Recv,
        SpanStage::Decode,
        SpanStage::Admit,
        SpanStage::QueueOp,
        SpanStage::Flush,
    ];

    /// A short lowercase name for metric labels and dumps.
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Recv => "recv",
            SpanStage::Decode => "decode",
            SpanStage::Admit => "admit",
            SpanStage::QueueOp => "queue-op",
            SpanStage::Flush => "flush",
        }
    }
}

/// One decoded request span, as returned by [`SpanRing::spans`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global record order (0-based ticket; gaps mean dropped spans).
    pub seq: u64,
    /// The trace id the client stamped on the request frame.
    pub trace_id: u64,
    /// The request opcode (wire `OP_*` code; `0` for spans recorded outside
    /// the service layer, e.g. the in-process traced bench mode).
    pub opcode: u8,
    /// Completion timestamp in nanoseconds on the owning hub's clock.
    pub ts_ns: u64,
    /// Nanoseconds spent in each stage, indexed by [`SpanStage`].
    pub stage_ns: [u64; SPAN_STAGES],
}

impl SpanRecord {
    /// Total server-side nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.stage_ns.iter().fold(0u64, |a, b| a.saturating_add(*b))
    }
}

/// Payload words per slot: opcode, timestamp, trace id, five stage timings.
const SLOT_WORDS: usize = 8;

#[derive(Debug)]
struct Slot {
    /// `0` = never written; `2t + 1` = ticket `t` in progress; `2t + 2` =
    /// ticket `t` complete.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

/// The fixed-size lock-free span ring. Identical slot protocol to the
/// [`FlightRecorder`](crate::FlightRecorder) ring (see that module's docs);
/// only the payload layout differs.
#[derive(Debug)]
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl SpanRing {
    /// A ring holding the most recent `capacity` spans (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans dropped because a lapped slot was still being written.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total spans recorded (dropped ones excluded). Loads `dropped` before
    /// `head` (and saturates) so concurrent drops between the two loads can
    /// never make the difference go negative.
    pub fn recorded(&self) -> u64 {
        let dropped = self.dropped();
        self.head.load(Ordering::Relaxed).saturating_sub(dropped)
    }

    /// Records one span. Lock-free and lossy: when the claimed slot is
    /// mid-write from a lagging lap (or a faster writer already lapped us)
    /// the span is dropped and counted, never blocking the hot path.
    pub fn record(&self, trace_id: u64, opcode: u8, ts_ns: u64, stage_ns: [u64; SPAN_STAGES]) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Same claim rule as the flight recorder: CAS any *completed* (even)
        // sequence — including an older lap's, so a dropped ticket never
        // wedges its slot — to our in-progress value.
        let claimed = loop {
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq % 2 == 1 || seq > 2 * ticket + 1 {
                break false;
            }
            if slot
                .seq
                .compare_exchange_weak(seq, 2 * ticket + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break true;
            }
        };
        if !claimed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.words[0].store(opcode as u64, Ordering::Relaxed);
        slot.words[1].store(ts_ns, Ordering::Relaxed);
        slot.words[2].store(trace_id, Ordering::Relaxed);
        for (i, ns) in stage_ns.iter().enumerate() {
            slot.words[3 + i].store(*ns, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Decodes every complete, untorn span currently in the ring, in record
    /// order (ascending `seq`).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 == 1 {
                continue; // never written, or mid-write
            }
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Seqlock reader recipe (same as the flight recorder): the fence
            // orders the relaxed payload loads before the validating re-load.
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 {
                continue; // overwritten while we read: skip the torn slot
            }
            let ticket = seq1 / 2 - 1;
            out.push(SpanRecord {
                seq: ticket,
                trace_id: words[2],
                opcode: (words[0] & 0xFF) as u8,
                ts_ns: words[1],
                stage_ns: std::array::from_fn(|i| words[3 + i]),
            });
        }
        out.sort_by_key(|s| s.seq);
        out
    }

    /// A human-readable dump: one line per span plus a drop summary.
    pub fn dump_text(&self) -> String {
        use std::fmt::Write as _;
        let spans = self.spans();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "span ring: {} span(s) retained, {} recorded, {} dropped",
            spans.len(),
            self.recorded(),
            self.dropped()
        );
        for s in &spans {
            let _ = write!(
                out,
                "  [{:>6}] trace={:#018x} op={} {:>12}ns total={}",
                s.seq,
                s.trace_id,
                s.opcode,
                s.ts_ns,
                s.total_ns()
            );
            for (stage, ns) in SpanStage::ALL.iter().zip(s.stage_ns.iter()) {
                let _ = write!(out, " {}={}", stage.name(), ns);
            }
            out.push('\n');
        }
        out
    }
}

thread_local! {
    /// The span rings whose [`SpanPanicScope`]s are active on this thread,
    /// innermost last. The flight recorder's panic hook consults this so a
    /// connection panic dumps its spans alongside the event ring.
    static PANIC_SPAN_RINGS: RefCell<Vec<Weak<SpanRing>>> = const { RefCell::new(Vec::new()) };
}

/// While alive, the panic hook appends this thread's scoped span-ring dump
/// to the flight-recorder dump it captures.
#[derive(Debug)]
pub struct SpanPanicScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanRing {
    /// Enters a span panic scope on the current thread. Pair it with a
    /// [`FlightRecorder::panic_scope`](crate::FlightRecorder::panic_scope) —
    /// the recorder's hook is what captures the dump; this scope only adds
    /// the span section to it.
    pub fn panic_scope(self: &Arc<Self>) -> SpanPanicScope {
        PANIC_SPAN_RINGS.with(|r| r.borrow_mut().push(Arc::downgrade(self)));
        SpanPanicScope {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for SpanPanicScope {
    fn drop(&mut self) {
        let _ = PANIC_SPAN_RINGS.try_with(|r| r.borrow_mut().pop());
    }
}

/// The panicking thread's scoped span-ring dump, if any scope is active
/// (called by the flight recorder's panic hook).
pub(crate) fn scoped_panic_span_dump() -> Option<String> {
    PANIC_SPAN_RINGS
        .try_with(|r| r.borrow().last().and_then(Weak::upgrade))
        .ok()
        .flatten()
        .map(|ring| ring.dump_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_decodes_spans_in_order() {
        let ring = SpanRing::new(16);
        ring.record(0xAB, 3, 100, [1, 2, 3, 4, 5]);
        ring.record(0xCD, 4, 200, [10, 20, 30, 40, 50]);
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].seq, 0);
        assert_eq!(spans[0].trace_id, 0xAB);
        assert_eq!(spans[0].opcode, 3);
        assert_eq!(spans[0].ts_ns, 100);
        assert_eq!(spans[0].stage_ns, [1, 2, 3, 4, 5]);
        assert_eq!(spans[0].total_ns(), 15);
        assert_eq!(spans[1].trace_id, 0xCD);
        assert_eq!(ring.recorded(), 2);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_keeps_the_most_recent_capacity_spans() {
        let ring = SpanRing::new(8);
        for i in 0..20u64 {
            ring.record(i, 1, i, [i, 0, 0, 0, 0]);
        }
        let spans = ring.spans();
        assert_eq!(spans.len(), 8);
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        assert_eq!(ring.dropped(), 0, "a single writer never drops");
    }

    #[test]
    fn concurrent_writers_never_tear_a_reader() {
        let ring = Arc::new(SpanRing::new(64));
        std::thread::scope(|s| {
            for t in 1..=4u64 {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        // Payload invariant: queue-op stage = trace * ts.
                        ring.record(t, 2, i, [t, i, 0, t * i, 0]);
                    }
                });
            }
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for _ in 0..200 {
                    for sp in ring.spans() {
                        assert_eq!(sp.stage_ns[3], sp.stage_ns[0] * sp.stage_ns[1], "torn span");
                    }
                }
            });
        });
        assert_eq!(ring.recorded() + ring.dropped(), 4 * 5_000);
        let spans = ring.spans();
        assert!(spans.len() <= 64);
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn dump_text_names_every_stage() {
        let ring = SpanRing::new(8);
        ring.record(7, 3, 42, [1, 2, 3, 4, 5]);
        let text = ring.dump_text();
        assert!(text.contains("span ring: 1 span(s)"));
        for stage in SpanStage::ALL {
            assert!(text.contains(stage.name()), "missing {}", stage.name());
        }
        assert!(text.contains("total=15"));
    }

    #[test]
    fn stage_names_and_order_are_stable() {
        let names: Vec<&str> = SpanStage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["recv", "decode", "admit", "queue-op", "flush"]);
        assert_eq!(SpanStage::QueueOp as usize, 3);
    }
}
