//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network registry, so this shim provides the
//! API subset the workspace benches use — `criterion_group!`/`criterion_main!`,
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`Bencher::iter_batched`]
//! and [`BatchSize`] — backed by a simple wall-clock sampler: per sample the
//! setup closure runs untimed and the routine is timed, and the median / mean
//! / standard deviation over all samples are printed in a criterion-like
//! format. Numbers are comparable across runs on the same machine, which is
//! all the in-tree `BENCH_NOTES.md` methodology needs.
//!
//! Environment knobs: `BENCH_SAMPLES` (default 25) and `BENCH_WARMUP`
//! (default 3) control the per-benchmark sample counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How measured batches are sized. The shim times one routine call per sample
/// regardless, so the variants only exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (setup dominates memory).
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
    warmup: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let read = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(default)
        };
        Self {
            samples: read("BENCH_SAMPLES", 25),
            warmup: read("BENCH_WARMUP", 3),
        }
    }
}

impl Criterion {
    /// Benchmarks `f`, printing a criterion-style result line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.samples),
            sample_target: self.samples,
            warmup: self.warmup,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Collects timed samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_target: usize,
    warmup: usize,
}

impl Bencher {
    /// Times `routine` with no per-sample setup.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.sample_target {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            black_box(out);
            self.samples.push(elapsed);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<58} (no samples)");
            return;
        }
        let mut nanos: Vec<f64> = self.samples.iter().map(|d| d.as_nanos() as f64).collect();
        nanos.sort_by(|a, b| a.total_cmp(b));
        let median = nanos[nanos.len() / 2];
        let mean = nanos.iter().sum::<f64>() / nanos.len() as f64;
        let var =
            nanos.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / nanos.len().max(1) as f64;
        println!(
            "{name:<58} time: [median {} mean {} ± {}]",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(var.sqrt()),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group: a function running each listed benchmark
/// function against a default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        std::env::set_var("BENCH_SAMPLES", "4");
        std::env::set_var("BENCH_WARMUP", "1");
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("shim/self_test", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        c.bench_function("shim/iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 5, "warmup + samples must run the routine");
        std::env::remove_var("BENCH_SAMPLES");
        std::env::remove_var("BENCH_WARMUP");
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
