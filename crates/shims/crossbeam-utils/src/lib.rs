//! Offline stand-in for the `crossbeam-utils` crate (no network registry in
//! this build environment). Provides the only item the workspace uses:
//! [`CachePadded`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line so that neighbouring
/// values never share one (avoiding false sharing between MultiQueue lanes).
///
/// 128 bytes covers the common cases: x86-64 prefetches cache lines in pairs
/// and Apple/ARM big cores use 128-byte lines.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_access() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
