//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network registry, so this shim provides the
//! API subset the workspace tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, [`ProptestConfig::with_cases`], range strategies over
//! the integer and float primitives, [`collection::vec`] and [`option::of`].
//!
//! Differences from real proptest: no shrinking, and no persistence files —
//! regression corpora are checked in explicitly (see
//! `crates/service/proptest-regressions/`) and replayed by dedicated tests.
//!
//! **Every case has its own seed**, derived from the test's module path and
//! the case index. A failing case — `prop_assert*` or a plain panic inside
//! the body — reports that seed in a `PROPTEST_SEED=0x…` form straight from
//! the CI log, and running the test with that environment variable set
//! replays exactly the failing case (one case, same inputs), no matter how
//! the surrounding suite changed.
//!
//! Like real proptest, the `PROPTEST_CASES` environment variable overrides
//! the per-block case count (the CI stress job runs the suites with
//! `PROPTEST_CASES=256`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable when set to a positive integer (matching real proptest's
    /// override, used by the CI stress job), this configuration's `cases`
    /// otherwise.
    pub fn effective_cases(&self) -> u32 {
        self.cases_with_override(std::env::var("PROPTEST_CASES").ok().as_deref())
    }

    /// [`effective_cases`](ProptestConfig::effective_cases) with the
    /// override value passed explicitly — the pure core, testable without
    /// mutating process-global environment (setenv racing getenv across
    /// parallel test threads is undefined behaviour on glibc).
    fn cases_with_override(&self, env_value: Option<&str>) -> u32 {
        env_value
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed `prop_assert*` inside a proptest case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator handed to [`Strategy::sample`] (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

/// FNV-1a over a test's full name — the stable per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed of one proptest case: test name × case index, scrambled so
/// neighbouring cases draw unrelated streams. This is the value a failure
/// reports and [`seed_override`] replays.
pub fn case_seed(name: &str, case: u32) -> u64 {
    name_seed(name) ^ (u64::from(case).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Parses a `PROPTEST_SEED` value: hex with an optional `0x` prefix (the
/// form failures print) or plain decimal.
fn parse_seed(value: Option<&str>) -> Option<u64> {
    let v = value?.trim();
    if v.is_empty() {
        return None;
    }
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

/// The seed pinned by the `PROPTEST_SEED` environment variable, if any.
/// When set, every `proptest!` test in the process runs exactly one case
/// with this seed — the replay mode a failure's message points at.
pub fn seed_override() -> Option<u64> {
    parse_seed(std::env::var("PROPTEST_SEED").ok().as_deref())
}

impl TestRng {
    /// Seeds the generator from a test's name so each test draws an
    /// independent, stable stream.
    pub fn from_name(name: &str) -> Self {
        Self::from_seed(name_seed(name))
    }

    /// Seeds the generator from an explicit case seed (see [`case_seed`]).
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Self { state: seed };
        rng.next_u64(); // one scramble step so similar seeds diverge
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator: the sampled subset of proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: any value is in bounds.
                    rng.next_u64() as $ty
                } else {
                    lo + rng.below(span) as $ty
                }
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Include the upper endpoint by drawing over a closed grid.
        let t = rng.below(1 << 53) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + t * (self.end() - self.start())
    }
}

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s (≈½ `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(value)` about half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Fails the current proptest case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current proptest case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the current proptest case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn` becomes a `#[test]` running its body
/// over random samples of the `name in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($argpat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            // PROPTEST_SEED pins a single case: the replay mode every
            // failure's message points at.
            let forced = $crate::seed_override();
            let cases = if forced.is_some() { 1 } else { config.effective_cases() };
            for case in 0..cases {
                let seed = forced.unwrap_or_else(|| $crate::case_seed(test_name, case));
                let mut rng = $crate::TestRng::from_seed(seed);
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $(let $argpat = $crate::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                    ::core::result::Result::Ok(::core::result::Result::Err(error)) => {
                        panic!(
                            "proptest case {}/{} for `{}` failed \
                             (replay with PROPTEST_SEED=0x{:016x}): {}",
                            case + 1,
                            cases,
                            stringify!($name),
                            seed,
                            error
                        );
                    }
                    ::core::result::Result::Err(payload) => {
                        // A plain panic inside the body: make the seed
                        // visible in the CI log before re-raising it.
                        eprintln!(
                            "proptest case {}/{} for `{}` panicked \
                             (replay with PROPTEST_SEED=0x{:016x})",
                            case + 1,
                            cases,
                            stringify!($name),
                            seed
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn proptest_cases_override_parses_like_real_proptest() {
        // Exercised through the pure core — no env mutation, which would
        // race the parallel proptest blocks in this same binary reading
        // `PROPTEST_CASES` through `effective_cases`.
        let config = ProptestConfig::with_cases(3);
        assert_eq!(config.cases_with_override(Some("7")), 7);
        assert_eq!(
            config.cases_with_override(Some("0")),
            3,
            "zero is not a valid override"
        );
        assert_eq!(config.cases_with_override(Some("not-a-number")), 3);
        assert_eq!(config.cases_with_override(Some("")), 3);
        assert_eq!(config.cases_with_override(None), 3);
        assert_eq!(ProptestConfig::with_cases(64).cases, 64);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn every_case_has_a_stable_distinct_seed() {
        let seeds: Vec<u64> = (0..64).map(|i| crate::case_seed("mod::test", i)).collect();
        // Stable: recomputing gives the same seed (what makes the printed
        // PROPTEST_SEED replay the failing inputs)...
        assert_eq!(seeds[17], crate::case_seed("mod::test", 17));
        // ...and distinct across cases and test names.
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert_ne!(crate::case_seed("other::test", 0), seeds[0]);
        // A replayed seed regenerates the exact sample stream.
        let mut live = crate::TestRng::from_seed(seeds[3]);
        let mut replay = crate::TestRng::from_seed(seeds[3]);
        for _ in 0..8 {
            assert_eq!(live.next_u64(), replay.next_u64());
        }
    }

    #[test]
    fn seed_override_parses_the_printed_form() {
        // Through the pure core — no env mutation (setenv racing getenv
        // across parallel test threads is undefined behaviour on glibc).
        assert_eq!(crate::parse_seed(Some("0x00000000000000ff")), Some(255));
        assert_eq!(crate::parse_seed(Some("0XFF")), Some(255));
        assert_eq!(crate::parse_seed(Some("123")), Some(123));
        assert_eq!(crate::parse_seed(Some(" 0x10 ")), Some(16));
        assert_eq!(crate::parse_seed(Some("nope")), None);
        assert_eq!(crate::parse_seed(Some("")), None);
        assert_eq!(crate::parse_seed(None), None);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1_000 {
            let v = crate::Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::sample(&(0.25f64..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
            let o = crate::Strategy::sample(&crate::option::of(0u32..4), &mut rng);
            assert!(o.is_none() || o.unwrap() < 4);
            let xs = crate::Strategy::sample(&crate::collection::vec(0u8..9, 2..5), &mut rng);
            assert!(xs.len() >= 2 && xs.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_samples_and_asserts(mut xs in crate::collection::vec(0u64..100, 0..20), k in 1usize..4) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(k.min(3), k);
            prop_assert_ne!(k, 0);
        }
    }
}
