//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no network registry, so the workspace vendors
//! the tiny API subset it actually uses: a non-poisoning [`Mutex`] whose
//! `lock` never returns a `Result` and whose `try_lock` returns an `Option`.
//! It is implemented over `std::sync::Mutex`; a poisoned std mutex (a thread
//! panicked while holding the lock) is transparently recovered, matching
//! parking_lot's "no poisoning" semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A non-poisoning mutual exclusion primitive (API-compatible subset of
/// `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed:
    /// the exclusive borrow proves no other thread holds the lock).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "already held");
        }
        assert_eq!(*m.try_lock().unwrap(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
