//! The choice-wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame — in both directions — has the same 6-byte header:
//!
//! ```text
//! [ length: u32 LE ][ version: u8 ][ opcode: u8 ][ payload ... ]
//! ```
//!
//! `length` counts everything after the length field itself (version byte,
//! opcode byte, payload), so a reader can always consume exactly one frame
//! knowing only the first four bytes. The version byte rides in every frame
//! rather than a one-shot handshake: it keeps the protocol stateless per
//! frame (a mid-stream corruption cannot silently re-version a connection)
//! and costs one byte. The current version is [`WIRE_VERSION`].
//!
//! Integers are little-endian throughout. Payloads are fixed-layout —
//! nothing is self-describing — which keeps encode/decode branch-free and
//! the frames small: an `Insert` is 22 bytes on the wire, a `DeleteMin` 6.
//!
//! Decoding is *total*: any byte sequence produces either a frame or a
//! [`WireError`], never a panic (property-tested, including truncations and
//! garbage). Truncation is reported as [`WireError::Truncated`] so stream
//! readers can distinguish "wait for more bytes" from "the peer sent
//! nonsense" ([`WireError::is_incomplete`]).
//!
//! The payload value type is fixed to `u64` pairs (`key`, `value`): the
//! service is a *priority-queue* service, and an opaque 8-byte value is
//! enough to carry an id into whatever store holds the real payload —
//! exactly how the in-process queues are used by the SSSP and scheduler
//! layers.

use std::fmt;
use std::io::{self, Read, Write};

use choice_pq::{HandleStats, Key};

/// The protocol version this build speaks (echoed in every frame).
///
/// Version history: v1 carried a 7-counter Stats payload; v2 (current)
/// extended it with the queue-topology triple (`active_lanes`, `max_lanes`,
/// `resize_events`) reported by elastic backends. Fixed layouts are not
/// self-describing, so any layout change is a version bump.
pub const WIRE_VERSION: u8 = 2;

/// Hard ceiling on `length` (version + opcode + payload, bytes). Large
/// enough for a [`MAX_BATCH`]-entry batch response, small enough that a
/// malicious length prefix cannot make either side allocate unboundedly.
pub const MAX_FRAME_LEN: u32 = 2 + 4 + MAX_BATCH * 16;

/// Largest `DeleteMinBatch` size the protocol will carry in one frame.
/// Servers clamp larger requests to their own (possibly smaller) limit.
pub const MAX_BATCH: u32 = 4096;

/// Everything that can go wrong turning bytes into frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends mid-frame; `needed` more bytes are required before
    /// decoding can be retried. On a stream this means "read more"; at
    /// end-of-stream it means the peer died mid-frame.
    Truncated {
        /// Additional bytes required to complete the frame.
        needed: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is too small to hold
    /// the mandatory version and opcode bytes).
    BadLength(u32),
    /// The version byte does not match [`WIRE_VERSION`].
    UnknownVersion(u8),
    /// The opcode byte names no known frame type (for the direction being
    /// decoded).
    UnknownOpcode(u8),
    /// The opcode was recognised but the payload does not have the exact
    /// layout that opcode requires.
    MalformedPayload {
        /// The offending opcode.
        opcode: u8,
        /// What the layout check expected.
        expected: &'static str,
    },
}

impl WireError {
    /// Whether this error means "the bytes so far are a valid prefix, keep
    /// reading" rather than "the peer sent garbage".
    pub fn is_incomplete(&self) -> bool {
        matches!(self, WireError::Truncated { .. })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed } => {
                write!(f, "frame truncated: {needed} more byte(s) required")
            }
            WireError::BadLength(len) => write!(
                f,
                "frame length {len} outside the valid range 2..={MAX_FRAME_LEN}"
            ),
            WireError::UnknownVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::MalformedPayload { opcode, expected } => {
                write!(
                    f,
                    "malformed payload for opcode {opcode:#04x}: expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Client → server frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Insert one `(key, value)` entry.
    Insert {
        /// Priority key (smaller = more urgent). `Key::MAX` is reserved and
        /// answered with [`ErrorCode::ReservedKey`], never a panic.
        key: Key,
        /// Opaque 8-byte payload.
        value: u64,
    },
    /// Remove one small-keyed entry.
    DeleteMin,
    /// Remove up to `max` small-keyed entries in one batched operation.
    DeleteMinBatch {
        /// Requested batch size; the server clamps it to its own limit.
        max: u32,
    },
    /// Read the (relaxed) element count.
    ApproxLen,
    /// Read the server's aggregated per-session [`HandleStats`].
    Stats,
    /// Ask the server process to shut down (drains cleanly; the response is
    /// [`Response::ShuttingDown`]).
    Shutdown,
}

/// Server → client frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The insert was published.
    Inserted,
    /// A `DeleteMin` produced this entry.
    Entry {
        /// The removed key.
        key: Key,
        /// The removed value.
        value: u64,
    },
    /// A `DeleteMin` observed the structure empty.
    Empty,
    /// A `DeleteMinBatch` produced these entries (possibly none).
    Batch(Vec<(Key, u64)>),
    /// The current approximate element count.
    Len(u64),
    /// Aggregated statistics over every session the server has served.
    Stats(ServiceStats),
    /// Acknowledges a [`Request::Shutdown`]; the connection closes after
    /// this frame.
    ShuttingDown,
    /// The request was understood but refused.
    Error {
        /// Machine-readable refusal reason.
        code: ErrorCode,
        /// Human-readable detail (UTF-8; lossily decoded if the peer lies).
        detail: String,
    },
}

/// Machine-readable refusal reasons carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The insert key was `Key::MAX`, which the queues reserve as their
    /// empty-lane sentinel.
    ReservedKey,
    /// The client's frame could not be decoded (version, opcode or payload);
    /// the server closes the connection after sending this.
    Protocol,
    /// The server is shutting down and no longer serves operations.
    Unavailable,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::ReservedKey => 1,
            ErrorCode::Protocol => 2,
            ErrorCode::Unavailable => 3,
        }
    }

    fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::ReservedKey),
            2 => Some(ErrorCode::Protocol),
            3 => Some(ErrorCode::Unavailable),
            _ => None,
        }
    }
}

/// The aggregate carried by [`Response::Stats`]: how many sessions the
/// server has opened (one per accepted connection), the merged
/// [`HandleStats`] over all of them — live connections contribute their
/// current counters, closed ones their final counters — and a snapshot of
/// the backing queue's lane topology (how elastic backends report their
/// current size and resize history to remote operators).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Connections accepted over the server's lifetime.
    pub sessions: u64,
    /// Per-session counters folded with [`HandleStats::merge`].
    pub totals: HandleStats,
    /// Currently active lanes of the backing queue (`1` for centralized
    /// backends, which report the trivial topology).
    pub active_lanes: u64,
    /// Allocated lane capacity of the backing queue.
    pub max_lanes: u64,
    /// Completed resize events (grows plus shrinks) since the queue was
    /// built; always `0` for non-elastic backends.
    pub resize_events: u64,
}

// Request opcodes.
const OP_INSERT: u8 = 0x01;
const OP_DELETE_MIN: u8 = 0x02;
const OP_DELETE_MIN_BATCH: u8 = 0x03;
const OP_APPROX_LEN: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;

// Response opcodes (high bit set).
const OP_INSERTED: u8 = 0x81;
const OP_ENTRY: u8 = 0x82;
const OP_EMPTY: u8 = 0x83;
const OP_BATCH: u8 = 0x84;
const OP_LEN: u8 = 0x85;
const OP_STATS_REPLY: u8 = 0x86;
const OP_SHUTTING_DOWN: u8 = 0x87;
const OP_ERROR: u8 = 0xFF;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Fixed-layout payload reader: every `take_*` either yields the next field
/// or reports the frame malformed (payload truncation inside a complete
/// frame is malformation, not [`WireError::Truncated`] — the length prefix
/// promised more than the opcode's layout found).
struct Payload<'a> {
    bytes: &'a [u8],
    opcode: u8,
    expected: &'static str,
}

impl<'a> Payload<'a> {
    fn new(bytes: &'a [u8], opcode: u8, expected: &'static str) -> Self {
        Self {
            bytes,
            opcode,
            expected,
        }
    }

    fn malformed(&self) -> WireError {
        WireError::MalformedPayload {
            opcode: self.opcode,
            expected: self.expected,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(self.malformed());
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(self.malformed())
        }
    }
}

/// Appends one framed message (header + payload) to `out`.
fn encode_frame(out: &mut Vec<u8>, opcode: u8, build: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    out.push(WIRE_VERSION);
    out.push(opcode);
    build(out);
    let len = (out.len() - len_at - 4) as u32;
    debug_assert!(len <= MAX_FRAME_LEN, "encoder produced an oversized frame");
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Splits one frame off the front of `buf`: returns the opcode, its payload
/// slice, and the total number of bytes the frame occupies.
fn split_frame(buf: &[u8]) -> Result<(u8, &[u8], usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4 - buf.len(),
        });
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(WireError::BadLength(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total - buf.len(),
        });
    }
    let version = buf[4];
    if version != WIRE_VERSION {
        return Err(WireError::UnknownVersion(version));
    }
    Ok((buf[5], &buf[6..total], total))
}

impl Request {
    /// Appends this request as one frame to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Request::Insert { key, value } => encode_frame(out, OP_INSERT, |out| {
                put_u64(out, key);
                put_u64(out, value);
            }),
            Request::DeleteMin => encode_frame(out, OP_DELETE_MIN, |_| {}),
            Request::DeleteMinBatch { max } => encode_frame(out, OP_DELETE_MIN_BATCH, |out| {
                put_u32(out, max);
            }),
            Request::ApproxLen => encode_frame(out, OP_APPROX_LEN, |_| {}),
            Request::Stats => encode_frame(out, OP_STATS, |_| {}),
            Request::Shutdown => encode_frame(out, OP_SHUTDOWN, |_| {}),
        }
    }

    /// Decodes one request frame from the front of `buf`, returning it and
    /// the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Request, usize), WireError> {
        let (opcode, payload, total) = split_frame(buf)?;
        let request = match opcode {
            OP_INSERT => {
                let mut p = Payload::new(payload, opcode, "key u64 + value u64");
                let key = p.take_u64()?;
                let value = p.take_u64()?;
                p.finish()?;
                Request::Insert { key, value }
            }
            OP_DELETE_MIN => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::DeleteMin
            }
            OP_DELETE_MIN_BATCH => {
                let mut p = Payload::new(payload, opcode, "max u32");
                let max = p.take_u32()?;
                p.finish()?;
                Request::DeleteMinBatch { max }
            }
            OP_APPROX_LEN => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::ApproxLen
            }
            OP_STATS => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::Stats
            }
            OP_SHUTDOWN => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::Shutdown
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        Ok((request, total))
    }
}

impl Response {
    /// Appends this response as one frame to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a batch holds more than [`MAX_BATCH`] entries — the server
    /// clamps every batch below that before building the response.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Inserted => encode_frame(out, OP_INSERTED, |_| {}),
            Response::Entry { key, value } => encode_frame(out, OP_ENTRY, |out| {
                put_u64(out, *key);
                put_u64(out, *value);
            }),
            Response::Empty => encode_frame(out, OP_EMPTY, |_| {}),
            Response::Batch(entries) => {
                assert!(
                    entries.len() <= MAX_BATCH as usize,
                    "batch of {} exceeds the wire limit {MAX_BATCH}",
                    entries.len()
                );
                encode_frame(out, OP_BATCH, |out| {
                    put_u32(out, entries.len() as u32);
                    for (key, value) in entries {
                        put_u64(out, *key);
                        put_u64(out, *value);
                    }
                })
            }
            Response::Len(len) => encode_frame(out, OP_LEN, |out| put_u64(out, *len)),
            Response::Stats(stats) => encode_frame(out, OP_STATS_REPLY, |out| {
                put_u64(out, stats.sessions);
                put_u64(out, stats.totals.inserts);
                put_u64(out, stats.totals.removals);
                put_u64(out, stats.totals.failed_removals);
                put_u64(out, stats.totals.empty_polls);
                put_u64(out, stats.totals.contended_retries);
                // v2 topology triple (keep last: the layout is positional).
                put_u64(out, stats.active_lanes);
                put_u64(out, stats.max_lanes);
                put_u64(out, stats.resize_events);
            }),
            Response::ShuttingDown => encode_frame(out, OP_SHUTTING_DOWN, |_| {}),
            Response::Error { code, detail } => {
                // Bound the detail so the frame stays within MAX_FRAME_LEN
                // whatever the caller passes (truncate on a char boundary).
                let mut detail = detail.as_str();
                let cap = (MAX_FRAME_LEN - 3) as usize;
                if detail.len() > cap {
                    let mut end = cap;
                    while !detail.is_char_boundary(end) {
                        end -= 1;
                    }
                    detail = &detail[..end];
                }
                encode_frame(out, OP_ERROR, |out| {
                    out.push(code.to_u8());
                    out.extend_from_slice(detail.as_bytes());
                })
            }
        }
    }

    /// Decodes one response frame from the front of `buf`, returning it and
    /// the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Response, usize), WireError> {
        let (opcode, payload, total) = split_frame(buf)?;
        let response = match opcode {
            OP_INSERTED => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::Inserted
            }
            OP_ENTRY => {
                let mut p = Payload::new(payload, opcode, "key u64 + value u64");
                let key = p.take_u64()?;
                let value = p.take_u64()?;
                p.finish()?;
                Response::Entry { key, value }
            }
            OP_EMPTY => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::Empty
            }
            OP_BATCH => {
                let mut p = Payload::new(payload, opcode, "count u32 + count entries");
                let count = p.take_u32()?;
                if count > MAX_BATCH {
                    return Err(p.malformed());
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let key = p.take_u64()?;
                    let value = p.take_u64()?;
                    entries.push((key, value));
                }
                p.finish()?;
                Response::Batch(entries)
            }
            OP_LEN => {
                let mut p = Payload::new(payload, opcode, "len u64");
                let len = p.take_u64()?;
                p.finish()?;
                Response::Len(len)
            }
            OP_STATS_REPLY => {
                let mut p = Payload::new(payload, opcode, "9 u64 counters");
                let stats = ServiceStats {
                    sessions: p.take_u64()?,
                    totals: HandleStats {
                        inserts: p.take_u64()?,
                        removals: p.take_u64()?,
                        failed_removals: p.take_u64()?,
                        empty_polls: p.take_u64()?,
                        contended_retries: p.take_u64()?,
                    },
                    active_lanes: p.take_u64()?,
                    max_lanes: p.take_u64()?,
                    resize_events: p.take_u64()?,
                };
                p.finish()?;
                Response::Stats(stats)
            }
            OP_SHUTTING_DOWN => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::ShuttingDown
            }
            OP_ERROR => {
                let mut p = Payload::new(payload, opcode, "code u8 + utf8 detail");
                let raw = p.take_u8()?;
                let code = ErrorCode::from_u8(raw).ok_or_else(|| p.malformed())?;
                let detail = String::from_utf8_lossy(p.bytes).into_owned();
                Response::Error { code, detail }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        Ok((response, total))
    }
}

/// Encodes a `Batch` response frame from borrowed entries — byte-identical
/// to `Response::Batch(entries.to_vec()).encode(out)` without giving up the
/// caller's buffer, so a server can reuse one entries vector across
/// requests.
///
/// # Panics
///
/// Panics if `entries` holds more than [`MAX_BATCH`] elements (servers
/// clamp every batch below that).
pub fn encode_batch_response(out: &mut Vec<u8>, entries: &[(Key, u64)]) {
    assert!(
        entries.len() <= MAX_BATCH as usize,
        "batch of {} exceeds the wire limit {MAX_BATCH}",
        entries.len()
    );
    encode_frame(out, OP_BATCH, |out| {
        put_u32(out, entries.len() as u32);
        for (key, value) in entries {
            put_u64(out, *key);
            put_u64(out, *value);
        }
    })
}

/// Reads exactly one frame's bytes from a blocking stream into `scratch`
/// (cleared first), returning `Ok(false)` on a clean end-of-stream at a
/// frame boundary.
///
/// Used by both sides: the server reads request frames, the client response
/// frames; the caller then decodes `scratch` with the matching `decode`.
/// A stream that dies mid-frame surfaces as [`WireError::Truncated`]
/// wrapped in [`io::ErrorKind::UnexpectedEof`]; a bad length prefix as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame_bytes<R: Read>(reader: &mut R, scratch: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    WireError::Truncated {
                        needed: header.len() - filled,
                    },
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header);
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::BadLength(len),
        ));
    }
    scratch.clear();
    scratch.extend_from_slice(&header);
    scratch.resize(4 + len as usize, 0);
    reader.read_exact(&mut scratch[4..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                WireError::Truncated { needed: 1 },
            )
        } else {
            e
        }
    })?;
    Ok(true)
}

/// Encodes and writes one response frame (no flush — the caller owns the
/// credit-window flush policy).
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    scratch.clear();
    response.encode(scratch);
    writer.write_all(scratch)
}

/// Encodes and writes one request frame (no flush).
pub fn write_request<W: Write>(
    writer: &mut W,
    request: &Request,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    scratch.clear();
    request.encode(scratch);
    writer.write_all(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_request(r: Request) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (decoded, used) = Request::decode(&buf).expect("round-trip");
        assert_eq!(decoded, r);
        assert_eq!(used, buf.len());
    }

    fn roundtrip_response(r: Response) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (decoded, used) = Response::decode(&buf).expect("round-trip");
        assert_eq!(decoded, r);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn every_request_variant_round_trips() {
        roundtrip_request(Request::Insert { key: 7, value: 70 });
        roundtrip_request(Request::Insert {
            key: Key::MAX - 1,
            value: u64::MAX,
        });
        roundtrip_request(Request::DeleteMin);
        roundtrip_request(Request::DeleteMinBatch { max: 0 });
        roundtrip_request(Request::DeleteMinBatch { max: u32::MAX });
        roundtrip_request(Request::ApproxLen);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn every_response_variant_round_trips() {
        roundtrip_response(Response::Inserted);
        roundtrip_response(Response::Entry { key: 1, value: 2 });
        roundtrip_response(Response::Empty);
        roundtrip_response(Response::Batch(vec![]));
        roundtrip_response(Response::Batch(vec![(1, 10), (2, 20), (u64::MAX, 0)]));
        roundtrip_response(Response::Len(123));
        roundtrip_response(Response::Stats(ServiceStats {
            sessions: 3,
            totals: HandleStats {
                inserts: 1,
                removals: 2,
                failed_removals: 3,
                empty_polls: 4,
                contended_retries: 5,
            },
            active_lanes: 6,
            max_lanes: 16,
            resize_events: 7,
        }));
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Error {
            code: ErrorCode::ReservedKey,
            detail: "key u64::MAX is reserved".to_string(),
        });
    }

    #[test]
    fn frames_decode_from_a_concatenated_stream() {
        let mut buf = Vec::new();
        Request::Insert { key: 1, value: 2 }.encode(&mut buf);
        Request::DeleteMin.encode(&mut buf);
        Request::Stats.encode(&mut buf);
        let (first, n1) = Request::decode(&buf).unwrap();
        assert_eq!(first, Request::Insert { key: 1, value: 2 });
        let (second, n2) = Request::decode(&buf[n1..]).unwrap();
        assert_eq!(second, Request::DeleteMin);
        let (third, n3) = Request::decode(&buf[n1 + n2..]).unwrap();
        assert_eq!(third, Request::Stats);
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn truncated_prefixes_ask_for_more_bytes() {
        let mut buf = Vec::new();
        Request::Insert { key: 9, value: 9 }.encode(&mut buf);
        for cut in 0..buf.len() {
            let err = Request::decode(&buf[..cut]).expect_err("truncation must fail");
            assert!(
                err.is_incomplete(),
                "cut at {cut}/{} should be Truncated, got {err:?}",
                buf.len()
            );
        }
    }

    /// A fully-populated v2 Stats response (all nine counters distinct so a
    /// field-order regression cannot cancel out).
    fn full_stats() -> ServiceStats {
        ServiceStats {
            sessions: 0x0101,
            totals: HandleStats {
                inserts: 0x0202,
                removals: 0x0303,
                failed_removals: 0x0404,
                empty_polls: 0x0505,
                contended_retries: 0x0606,
            },
            active_lanes: 0x0707,
            max_lanes: 0x0808,
            resize_events: 0x0909,
        }
    }

    /// Every truncation of a Stats reply — including cuts landing exactly on
    /// the frame-boundary offsets of the v2 topology fields — must report
    /// `Truncated` (the stream-reader "wait for more" signal), never decode
    /// a partial aggregate and never classify the prefix as garbage.
    #[test]
    fn stats_reply_truncations_are_incomplete_at_every_offset() {
        let mut buf = Vec::new();
        Response::Stats(full_stats()).encode(&mut buf);
        // Header (4 len + 1 version + 1 opcode) + 9 × u64 payload.
        assert_eq!(buf.len(), 6 + 9 * 8, "v2 Stats layout is 9 u64 counters");
        for cut in 0..buf.len() {
            let err = Response::decode(&buf[..cut]).expect_err("truncation must fail");
            assert!(
                err.is_incomplete(),
                "cut at {cut}/{} should be Truncated, got {err:?}",
                buf.len()
            );
        }
        // The boundaries of the three new fields, named explicitly: a cut
        // right after each preceding field leaves the new field missing.
        let payload_at = 6;
        for (field, index) in [("active_lanes", 6), ("max_lanes", 7), ("resize_events", 8)] {
            let cut = payload_at + index * 8;
            let err = Response::decode(&buf[..cut]).expect_err("boundary cut");
            assert!(err.is_incomplete(), "{field} boundary at {cut}: {err:?}");
            // One byte into the field is still incomplete.
            let err = Response::decode(&buf[..cut + 1]).expect_err("mid-field cut");
            assert!(
                err.is_incomplete(),
                "inside {field} at {}: {err:?}",
                cut + 1
            );
        }
    }

    /// A frame whose *length prefix* already excludes the v2 fields (the v1
    /// 7-counter layout) is a malformed payload, not a silent short decode:
    /// the opcode's layout check is exact in both directions.
    #[test]
    fn v1_sized_stats_payload_is_rejected_as_malformed() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, OP_STATS_REPLY, |out| {
            for counter in 0..6u64 {
                put_u64(out, counter);
            }
        });
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload {
                opcode: OP_STATS_REPLY,
                ..
            })
        ));
        // One trailing extra counter is rejected the same way.
        let mut buf = Vec::new();
        encode_frame(&mut buf, OP_STATS_REPLY, |out| {
            for counter in 0..10u64 {
                put_u64(out, counter);
            }
        });
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
    }

    /// The checked-in regression corpus (`proptest-regressions/protocol.txt`):
    /// byte sequences that exercised decoder edge cases — hostile lengths,
    /// version skew, payload-layout violations, every-offset truncations of
    /// the widest frames. Each line is `hex-bytes [# comment]`; both
    /// decoders must stay total over every entry, and valid frames must
    /// consume exactly what they claim.
    #[test]
    fn regression_corpus_keeps_the_decoders_total() {
        let corpus = include_str!("../proptest-regressions/protocol.txt");
        let mut cases = 0usize;
        for (lineno, line) in corpus.lines().enumerate() {
            let data = line.split('#').next().unwrap_or("").trim();
            if data.is_empty() {
                continue;
            }
            let bytes: Vec<u8> = data
                .split_whitespace()
                .map(|h| {
                    u8::from_str_radix(h, 16)
                        .unwrap_or_else(|_| panic!("bad hex {h:?} on corpus line {}", lineno + 1))
                })
                .collect();
            // Totality: a frame or an error, never a panic; on success the
            // consumed length stays within the buffer.
            if let Ok((_, used)) = Request::decode(&bytes) {
                assert!(used <= bytes.len(), "corpus line {}", lineno + 1);
            }
            if let Ok((_, used)) = Response::decode(&bytes) {
                assert!(used <= bytes.len(), "corpus line {}", lineno + 1);
            }
            cases += 1;
        }
        assert!(cases >= 20, "corpus unexpectedly small: {cases} entries");
    }

    #[test]
    fn version_and_opcode_are_validated() {
        let mut buf = Vec::new();
        Request::DeleteMin.encode(&mut buf);
        let mut wrong_version = buf.clone();
        wrong_version[4] = 9;
        assert_eq!(
            Request::decode(&wrong_version),
            Err(WireError::UnknownVersion(9))
        );
        let mut wrong_opcode = buf.clone();
        wrong_opcode[5] = 0x7E;
        assert_eq!(
            Request::decode(&wrong_opcode),
            Err(WireError::UnknownOpcode(0x7E))
        );
        // A response opcode is not a request.
        let mut response = Vec::new();
        Response::Empty.encode(&mut response);
        assert_eq!(
            Request::decode(&response),
            Err(WireError::UnknownOpcode(OP_EMPTY))
        );
    }

    #[test]
    fn hostile_lengths_are_rejected_without_allocating() {
        // Length 0 and 1 cannot hold version + opcode.
        for len in [0u32, 1] {
            let mut buf = len.to_le_bytes().to_vec();
            buf.extend_from_slice(&[0; 8]);
            assert_eq!(Request::decode(&buf), Err(WireError::BadLength(len)));
        }
        // A huge length prefix must fail fast, not wait for 4 GiB.
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.push(WIRE_VERSION);
        buf.push(OP_DELETE_MIN);
        assert_eq!(Request::decode(&buf), Err(WireError::BadLength(u32::MAX)));
    }

    #[test]
    fn payload_layout_is_enforced_exactly() {
        // Insert with a short payload: length says 10, layout needs 16.
        let mut buf = Vec::new();
        encode_frame(&mut buf, OP_INSERT, |out| out.extend_from_slice(&[0; 8]));
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload {
                opcode: OP_INSERT,
                ..
            })
        ));
        // DeleteMin with trailing bytes.
        let mut buf = Vec::new();
        encode_frame(&mut buf, OP_DELETE_MIN, |out| out.push(0));
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Batch response whose count promises more entries than the frame
        // carries.
        let mut buf = Vec::new();
        encode_frame(&mut buf, OP_BATCH, |out| put_u32(out, 3));
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Batch count beyond the wire limit is refused before allocation.
        let mut buf = Vec::new();
        encode_frame(&mut buf, OP_BATCH, |out| put_u32(out, MAX_BATCH + 1));
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn oversized_error_detail_is_truncated_to_fit() {
        let huge = "é".repeat(MAX_FRAME_LEN as usize); // 2 bytes per char
        let mut buf = Vec::new();
        Response::Error {
            code: ErrorCode::Protocol,
            detail: huge,
        }
        .encode(&mut buf);
        let (decoded, used) = Response::decode(&buf).expect("truncated detail still decodes");
        assert_eq!(used, buf.len());
        match decoded {
            Response::Error { code, detail } => {
                assert_eq!(code, ErrorCode::Protocol);
                assert!(!detail.is_empty());
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    #[test]
    fn borrowed_batch_encoder_matches_the_owned_one() {
        for entries in [vec![], vec![(1u64, 10u64)], vec![(5, 50), (2, 20), (9, 90)]] {
            let mut borrowed = Vec::new();
            encode_batch_response(&mut borrowed, &entries);
            let mut owned = Vec::new();
            Response::Batch(entries).encode(&mut owned);
            assert_eq!(borrowed, owned, "the two encoders must stay in lockstep");
        }
    }

    #[test]
    fn read_frame_bytes_round_trips_and_reports_clean_eof() {
        let mut wire = Vec::new();
        Request::Insert { key: 4, value: 44 }.encode(&mut wire);
        Request::ApproxLen.encode(&mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut cursor, &mut frame).unwrap());
        assert_eq!(
            Request::decode(&frame).unwrap().0,
            Request::Insert { key: 4, value: 44 }
        );
        assert!(read_frame_bytes(&mut cursor, &mut frame).unwrap());
        assert_eq!(Request::decode(&frame).unwrap().0, Request::ApproxLen);
        assert!(!read_frame_bytes(&mut cursor, &mut frame).unwrap());
    }

    #[test]
    fn read_frame_bytes_flags_mid_frame_death() {
        let mut wire = Vec::new();
        Request::Insert { key: 4, value: 44 }.encode(&mut wire);
        wire.truncate(wire.len() - 3);
        let mut cursor = io::Cursor::new(wire);
        let mut frame = Vec::new();
        let err = read_frame_bytes(&mut cursor, &mut frame).expect_err("mid-frame EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn requests_round_trip(key in 0u64..u64::MAX, value in 0u64..=u64::MAX, max in 0u32..=u32::MAX, pick in 0u8..6) {
            let request = match pick {
                0 => Request::Insert { key, value },
                1 => Request::DeleteMin,
                2 => Request::DeleteMinBatch { max },
                3 => Request::ApproxLen,
                4 => Request::Stats,
                _ => Request::Shutdown,
            };
            let mut buf = Vec::new();
            request.encode(&mut buf);
            let (decoded, used) = Request::decode(&buf).expect("encoded frames decode");
            prop_assert_eq!(decoded, request);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn responses_round_trip(
            entries in proptest::collection::vec(0u64..=u64::MAX, 0..32),
            n in 0u64..=u64::MAX,
            pick in 0u8..8,
        ) {
            let pairs: Vec<(u64, u64)> = entries.iter().map(|&k| (k, k ^ 0xABCD)).collect();
            let response = match pick {
                0 => Response::Inserted,
                1 => Response::Entry { key: n, value: !n },
                2 => Response::Empty,
                3 => Response::Batch(pairs),
                4 => Response::Len(n),
                5 => Response::Stats(ServiceStats {
                    sessions: n,
                    totals: HandleStats {
                        inserts: n,
                        removals: n / 2,
                        failed_removals: n / 3,
                        empty_polls: n / 4,
                        contended_retries: n / 5,
                    },
                    active_lanes: n / 6,
                    max_lanes: n / 6 + 8,
                    resize_events: n / 7,
                }),
                6 => Response::ShuttingDown,
                _ => Response::Error {
                    code: ErrorCode::Unavailable,
                    detail: format!("n = {n}"),
                },
            };
            let mut buf = Vec::new();
            response.encode(&mut buf);
            let (decoded, used) = Response::decode(&buf).expect("encoded frames decode");
            prop_assert_eq!(decoded, response);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_decoders(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
            // Totality: garbage in, error (or a frame) out — never a panic,
            // and on success the consumed length stays within the buffer.
            if let Ok((_, used)) = Request::decode(&bytes) {
                prop_assert!(used <= bytes.len());
            }
            if let Ok((_, used)) = Response::decode(&bytes) {
                prop_assert!(used <= bytes.len());
            }
        }

        #[test]
        fn every_truncation_of_a_valid_frame_is_incomplete(key in 0u64..100, cut_seed in 0u64..=u64::MAX) {
            let mut buf = Vec::new();
            Request::Insert { key, value: key }.encode(&mut buf);
            let cut = (cut_seed % buf.len() as u64) as usize;
            let err = Request::decode(&buf[..cut]).expect_err("prefix cannot be a whole frame");
            prop_assert!(err.is_incomplete(), "cut {cut}: {err:?}");
        }
    }
}
