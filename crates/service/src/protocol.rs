//! The choice-wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame — in both directions — has the same 6-byte header:
//!
//! ```text
//! [ length: u32 LE ][ version: u8 ][ opcode: u8 ][ payload ... ]
//! ```
//!
//! `length` counts everything after the length field itself (version byte,
//! opcode byte, payload), so a reader can always consume exactly one frame
//! knowing only the first four bytes. The version byte rides in every frame
//! rather than a one-shot handshake: it keeps the protocol stateless per
//! frame (a mid-stream corruption cannot silently re-version a connection)
//! and costs one byte. The current version is [`WIRE_VERSION`]; every
//! version down to [`MIN_WIRE_VERSION`] still decodes, and responders echo
//! the request's version so old clients keep working unchanged.
//!
//! Integers are little-endian throughout. Payloads are fixed-layout —
//! nothing is self-describing — which keeps encode/decode branch-free and
//! the frames small: an `Insert` is 22 bytes on the wire, a `DeleteMin` 6.
//! Queue names ride as a one-byte length followed by 1..=64 bytes of UTF-8.
//!
//! Decoding is *total*: any byte sequence produces either a frame or a
//! [`WireError`], never a panic (property-tested, including truncations and
//! garbage). Truncation is reported as [`WireError::Truncated`] so stream
//! readers can distinguish "wait for more bytes" from "the peer sent
//! nonsense" ([`WireError::is_incomplete`]).
//!
//! The payload value type is fixed to `u64` pairs (`key`, `value`): the
//! service is a *priority-queue* service, and an opaque 8-byte value is
//! enough to carry an id into whatever store holds the real payload —
//! exactly how the in-process queues are used by the SSSP and scheduler
//! layers.

use std::fmt;
use std::io::{self, Read, Write};

use choice_pq::{HandleStats, Key};
use choice_registry::{BackendSpec, QuotaSpec, MAX_NAME_LEN, MAX_QUEUES};

/// The protocol version this build speaks (the default for every encoded
/// frame).
///
/// Version history: v1 carried a 7-counter Stats payload; v2 extended it
/// with the queue-topology triple (`active_lanes`, `max_lanes`,
/// `resize_events`); v3 adds the queue-registry operations (`CreateQueue` /
/// `DropQueue` / `ListQueues` / `UseQueue`), a `refusals` counter, and a
/// per-queue breakdown in the Stats reply; v4 adds the telemetry op
/// `MetricsDump` (a Prometheus-style exposition dump with an optional
/// flight-recorder event tail) and a `resize_epoch` field in the Stats
/// topology row; v5 (current) prepends a one-byte trace envelope to every
/// payload — a flags byte, plus (when [`TRACE_FLAG_SAMPLED`] is set) a
/// request-side `trace_id` and a response-side `trace_id` + `server_ns`
/// echo — so sampled requests carry end-to-end trace context while
/// unsampled traffic pays exactly one byte. Fixed layouts are not
/// self-describing, so any layout change is a version bump.
pub const WIRE_VERSION: u8 = 5;

/// The oldest version this build still decodes and answers. v2 frames
/// carry no registry opcodes and receive the legacy 9-counter Stats
/// layout; a v2 peer is implicitly bound to the server's default queue and
/// never observes v3 at all.
pub const MIN_WIRE_VERSION: u8 = 2;

/// Hard ceiling on `length` (version + opcode + payload, bytes). Large
/// enough for a [`MAX_BATCH`]-entry batch response and for a Stats or
/// ListQueues reply carrying [`MAX_QUEUES`] per-queue rows, small enough
/// that a malicious length prefix cannot make either side allocate
/// unboundedly.
pub const MAX_FRAME_LEN: u32 = 256 * 1024;

/// Largest `DeleteMinBatch` size the protocol will carry in one frame.
/// Servers clamp larger requests to their own (possibly smaller) limit.
pub const MAX_BATCH: u32 = 4096;

/// v5 trace-envelope flag: the frame carries trace fields (request:
/// `trace_id u64`; response: `trace_id u64` + `server_ns u64`). All other
/// flag bits are unassigned and decode as [`WireError::MalformedPayload`] —
/// a future version that assigns one is a version bump, so v5 peers never
/// silently skip fields they do not understand.
pub const TRACE_FLAG_SAMPLED: u8 = 0x01;

/// Largest v5 trace envelope either direction can carry (flags byte +
/// response-side `trace_id` + `server_ns`). Encoders that bound a payload
/// against [`MAX_FRAME_LEN`] leave this much headroom so splicing the
/// envelope in can never push a frame over the ceiling.
const MAX_TRACE_ENVELOPE: usize = 17;

/// The trace context a v5 client stamps on a sampled request: an opaque
/// 8-byte id the server echoes back so the client can pair the response
/// (and its server-side timing) with the request it measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Client-chosen trace id (opaque to the server; echoed verbatim).
    pub trace_id: u64,
}

/// The trace echo a v5 server stamps on the response to a sampled request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEcho {
    /// The request's trace id, echoed verbatim.
    pub trace_id: u64,
    /// Wall time the server spent processing this request (decode + admit +
    /// queue-op, ns). The recv and flush stages land in the server's span
    /// ring but not on the wire: recv can include pipeline idle and flush
    /// happens after the response is encoded, so neither belongs in the
    /// number clients subtract from the measured RTT to split client-queue
    /// time from server time.
    pub server_ns: u64,
}

/// Everything that can go wrong turning bytes into frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends mid-frame; `needed` more bytes are required before
    /// decoding can be retried. On a stream this means "read more"; at
    /// end-of-stream it means the peer died mid-frame.
    Truncated {
        /// Additional bytes required to complete the frame.
        needed: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is too small to hold
    /// the mandatory version and opcode bytes).
    BadLength(u32),
    /// The version byte falls outside
    /// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`].
    UnknownVersion(u8),
    /// The opcode byte names no known frame type (for the direction being
    /// decoded) — including v3-only opcodes arriving in an older-version
    /// frame, which that version never assigned.
    UnknownOpcode(u8),
    /// The opcode was recognised but the payload does not have the exact
    /// layout that opcode requires.
    MalformedPayload {
        /// The offending opcode.
        opcode: u8,
        /// What the layout check expected.
        expected: &'static str,
    },
}

impl WireError {
    /// Whether this error means "the bytes so far are a valid prefix, keep
    /// reading" rather than "the peer sent garbage".
    pub fn is_incomplete(&self) -> bool {
        matches!(self, WireError::Truncated { .. })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed } => {
                write!(f, "frame truncated: {needed} more byte(s) required")
            }
            WireError::BadLength(len) => write!(
                f,
                "frame length {len} outside the valid range 2..={MAX_FRAME_LEN}"
            ),
            WireError::UnknownVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::MalformedPayload { opcode, expected } => {
                write!(
                    f,
                    "malformed payload for opcode {opcode:#04x}: expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Client → server frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Insert one `(key, value)` entry into the session's bound queue.
    Insert {
        /// Priority key (smaller = more urgent). `Key::MAX` is reserved and
        /// answered with [`ErrorCode::ReservedKey`], never a panic.
        key: Key,
        /// Opaque 8-byte payload.
        value: u64,
    },
    /// Remove one small-keyed entry from the bound queue.
    DeleteMin,
    /// Remove up to `max` small-keyed entries in one batched operation.
    DeleteMinBatch {
        /// Requested batch size; the server clamps it to its own limit.
        max: u32,
    },
    /// Read the bound queue's (relaxed) element count.
    ApproxLen,
    /// Read the server's aggregated statistics, including (v3) the
    /// per-queue breakdown.
    Stats,
    /// Ask the server process to shut down (drains cleanly; the response is
    /// [`Response::ShuttingDown`]).
    Shutdown,
    /// v3: register a new named queue built from a declarative backend spec
    /// and a resource quota. Creation is lazy — the structure is built on
    /// first use.
    CreateQueue {
        /// Registry name, 1..=[`MAX_NAME_LEN`] bytes.
        name: String,
        /// Which backend to build and how to size it.
        backend: BackendSpec,
        /// The queue's resource budget.
        quota: QuotaSpec,
    },
    /// v3: drop a named queue. Sessions bound to it receive typed
    /// [`ErrorCode::QueueDropped`] refusals from then on.
    DropQueue {
        /// The queue to drop.
        name: String,
    },
    /// v3: list every registered queue.
    ListQueues,
    /// v3: rebind this connection's session to the named queue. On success
    /// the old session ends (its counters roll up into its queue) and a
    /// fresh session opens on the target.
    UseQueue {
        /// The queue to bind.
        name: String,
    },
    /// v4: read the server's telemetry as a Prometheus-style text dump,
    /// answered with [`Response::MetricsText`]. Purely diagnostic: not
    /// charged against any quota and served whatever queue (if any) the
    /// session is bound to.
    MetricsDump {
        /// Whether to append the flight-recorder event tail (as
        /// `# `-prefixed comment lines) after the metric families.
        include_events: bool,
    },
}

/// Server → client frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The insert was published.
    Inserted,
    /// A `DeleteMin` produced this entry.
    Entry {
        /// The removed key.
        key: Key,
        /// The removed value.
        value: u64,
    },
    /// A `DeleteMin` observed the structure empty.
    Empty,
    /// A `DeleteMinBatch` produced these entries (possibly none).
    Batch(Vec<(Key, u64)>),
    /// The current approximate element count.
    Len(u64),
    /// Aggregated statistics over every session the server has served.
    Stats(ServiceStats),
    /// Acknowledges a [`Request::Shutdown`]; the connection closes after
    /// this frame.
    ShuttingDown,
    /// v3: acknowledges a [`Request::CreateQueue`].
    QueueCreated,
    /// v3: acknowledges a [`Request::DropQueue`].
    QueueDropped,
    /// v3: answers a [`Request::ListQueues`].
    QueueList(Vec<QueueListRow>),
    /// v3: acknowledges a [`Request::UseQueue`]; subsequent session
    /// operations run against the new queue.
    Using,
    /// v4: answers a [`Request::MetricsDump`] with the rendered exposition
    /// text (UTF-8; servers truncate it to fit [`MAX_FRAME_LEN`]).
    MetricsText(String),
    /// The request was understood but refused.
    Error {
        /// Machine-readable refusal reason.
        code: ErrorCode,
        /// Human-readable detail (UTF-8; lossily decoded if the peer lies).
        detail: String,
    },
}

/// One row of a [`Response::QueueList`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueueListRow {
    /// The queue's registry name.
    pub name: String,
    /// Backend label, e.g. `multiqueue(n=8, d=2)` (1..=[`MAX_NAME_LEN`]
    /// bytes on the wire).
    pub backend: String,
    /// Whether the backing structure has been built yet (creation is lazy).
    pub instantiated: bool,
    /// Sessions ever bound to this queue.
    pub sessions: u64,
    /// Approximate element count (`0` while uninstantiated).
    pub approx_len: u64,
    /// Operations refused by this queue's admission control.
    pub refusals: u64,
}

/// Machine-readable refusal reasons carried by [`Response::Error`].
///
/// Codes above [`ErrorCode::Unavailable`] are v3 additions; when a response
/// must be encoded for a v2 peer they are mapped down to `Unavailable`
/// (the strongest "not served" signal that version can express).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The insert key was `Key::MAX`, which the queues reserve as their
    /// empty-lane sentinel.
    ReservedKey,
    /// The client's frame could not be decoded (version, opcode or payload);
    /// the server closes the connection after sending this.
    Protocol,
    /// The server is shutting down and no longer serves operations.
    Unavailable,
    /// v3: a per-queue quota (in-flight elements, session count, or op
    /// rate) refused the operation.
    QuotaExceeded,
    /// v3: the named queue does not exist (never created, dropped, or the
    /// session's queue vanished).
    NoSuchQueue,
    /// v3: `CreateQueue` targeted a name that already exists.
    QueueExists,
    /// v3: the session's queue was dropped while the session was live.
    QueueDropped,
    /// v3: the registry is at its queue-count ceiling.
    RegistryFull,
    /// v3: the queue name is empty, too long, or holds characters outside
    /// `[A-Za-z0-9._/-]`.
    BadQueueName,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::ReservedKey => 1,
            ErrorCode::Protocol => 2,
            ErrorCode::Unavailable => 3,
            ErrorCode::QuotaExceeded => 4,
            ErrorCode::NoSuchQueue => 5,
            ErrorCode::QueueExists => 6,
            ErrorCode::QueueDropped => 7,
            ErrorCode::RegistryFull => 8,
            ErrorCode::BadQueueName => 9,
        }
    }

    /// The byte actually sent for `version`: v3 codes collapse to
    /// `Unavailable` on a v2 frame.
    fn to_wire(self, version: u8) -> u8 {
        let code = self.to_u8();
        if version < 3 && code > ErrorCode::Unavailable.to_u8() {
            ErrorCode::Unavailable.to_u8()
        } else {
            code
        }
    }

    fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::ReservedKey),
            2 => Some(ErrorCode::Protocol),
            3 => Some(ErrorCode::Unavailable),
            4 => Some(ErrorCode::QuotaExceeded),
            5 => Some(ErrorCode::NoSuchQueue),
            6 => Some(ErrorCode::QueueExists),
            7 => Some(ErrorCode::QueueDropped),
            8 => Some(ErrorCode::RegistryFull),
            9 => Some(ErrorCode::BadQueueName),
            _ => None,
        }
    }
}

/// Per-queue entry in a v3 [`ServiceStats`] breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// The queue's registry name.
    pub name: String,
    /// Sessions ever bound to this queue (a connection that rebinds counts
    /// once per binding).
    pub sessions: u64,
    /// The queue's merged per-session counters, refusals included.
    pub totals: HandleStats,
    /// Approximate element count at aggregation time.
    pub approx_len: u64,
}

/// The aggregate carried by [`Response::Stats`]: how many connections the
/// server has accepted, the merged [`HandleStats`] over every session on
/// every queue — live connections contribute their current counters,
/// closed ones their final counters, dropped queues their counters as of
/// the drop — a snapshot of the backing queues' summed lane topology, and
/// (v3) the per-queue breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Connections accepted over the server's lifetime.
    pub sessions: u64,
    /// Per-session counters folded with [`HandleStats::merge`], including
    /// refusals issued by admission control.
    pub totals: HandleStats,
    /// Currently active lanes summed over the instantiated queues (`1` per
    /// centralized backend, which reports the trivial topology).
    pub active_lanes: u64,
    /// Allocated lane capacity summed over the instantiated queues.
    pub max_lanes: u64,
    /// Completed resize events (grows plus shrinks) summed over the
    /// instantiated queues; `0` for non-elastic backends.
    pub resize_events: u64,
    /// v4: lane-table resize epochs summed over the instantiated queues —
    /// unlike `resize_events` (derived from grow/shrink counters) this is
    /// the epoch stamp external observers correlate with epoch-carrying
    /// flight-recorder `Resize` events. `0` when decoded from a pre-v4
    /// frame.
    pub resize_epoch: u64,
    /// v3: per-queue breakdown, sorted by name. Empty when decoded from a
    /// v2 frame (the legacy layout has no rows).
    pub queues: Vec<QueueStats>,
}

// Request opcodes.
const OP_INSERT: u8 = 0x01;
const OP_DELETE_MIN: u8 = 0x02;
const OP_DELETE_MIN_BATCH: u8 = 0x03;
const OP_APPROX_LEN: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_CREATE_QUEUE: u8 = 0x07;
const OP_DROP_QUEUE: u8 = 0x08;
const OP_LIST_QUEUES: u8 = 0x09;
const OP_USE_QUEUE: u8 = 0x0A;
const OP_METRICS_DUMP: u8 = 0x0B;

// Response opcodes (high bit set).
const OP_INSERTED: u8 = 0x81;
const OP_ENTRY: u8 = 0x82;
const OP_EMPTY: u8 = 0x83;
const OP_BATCH: u8 = 0x84;
const OP_LEN: u8 = 0x85;
const OP_STATS_REPLY: u8 = 0x86;
const OP_SHUTTING_DOWN: u8 = 0x87;
const OP_QUEUE_CREATED: u8 = 0x88;
const OP_QUEUE_DROPPED: u8 = 0x89;
const OP_QUEUE_LIST: u8 = 0x8A;
const OP_USING: u8 = 0x8B;
const OP_METRICS_DUMP_REPLY: u8 = 0x8C;
const OP_ERROR: u8 = 0xFF;

/// The oldest version at which a request opcode exists ([`MIN_WIRE_VERSION`]
/// for the original set). A frame carrying an opcode younger than its
/// version byte decodes as [`WireError::UnknownOpcode`] — that version
/// never assigned it.
fn request_opcode_min_version(opcode: u8) -> u8 {
    match opcode {
        OP_CREATE_QUEUE | OP_DROP_QUEUE | OP_LIST_QUEUES | OP_USE_QUEUE => 3,
        OP_METRICS_DUMP => 4,
        _ => MIN_WIRE_VERSION,
    }
}

/// The oldest version at which a response opcode exists.
fn response_opcode_min_version(opcode: u8) -> u8 {
    match opcode {
        OP_QUEUE_CREATED | OP_QUEUE_DROPPED | OP_QUEUE_LIST | OP_USING => 3,
        OP_METRICS_DUMP_REPLY => 4,
        _ => MIN_WIRE_VERSION,
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed name/label field.
///
/// # Panics
///
/// Panics if `name` is empty or longer than [`MAX_NAME_LEN`] bytes —
/// callers validate names before they reach an encoder.
fn put_name(out: &mut Vec<u8>, name: &str) {
    assert!(
        (1..=MAX_NAME_LEN).contains(&name.len()),
        "wire names must be 1..={MAX_NAME_LEN} bytes, got {}",
        name.len()
    );
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
}

/// Fixed-layout payload reader: every `take_*` either yields the next field
/// or reports the frame malformed (payload truncation inside a complete
/// frame is malformation, not [`WireError::Truncated`] — the length prefix
/// promised more than the opcode's layout found).
struct Payload<'a> {
    bytes: &'a [u8],
    opcode: u8,
    expected: &'static str,
}

impl<'a> Payload<'a> {
    fn new(bytes: &'a [u8], opcode: u8, expected: &'static str) -> Self {
        Self {
            bytes,
            opcode,
            expected,
        }
    }

    fn malformed(&self) -> WireError {
        WireError::MalformedPayload {
            opcode: self.opcode,
            expected: self.expected,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(self.malformed());
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// A length-prefixed name/label field: 1..=[`MAX_NAME_LEN`] bytes of
    /// valid UTF-8, anything else is malformed.
    fn take_name(&mut self) -> Result<String, WireError> {
        let len = self.take_u8()? as usize;
        if !(1..=MAX_NAME_LEN).contains(&len) {
            return Err(self.malformed());
        }
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(self.malformed()),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(self.malformed())
        }
    }
}

/// Appends one framed message (header + payload) to `out`, stamping the
/// given version byte.
fn encode_frame(out: &mut Vec<u8>, version: u8, opcode: u8, build: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    out.push(version);
    out.push(opcode);
    build(out);
    let len = (out.len() - len_at - 4) as u32;
    debug_assert!(len <= MAX_FRAME_LEN, "encoder produced an oversized frame");
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Splits one frame off the front of `buf`: returns the frame's version,
/// opcode, payload slice, and the total number of bytes it occupies.
fn split_frame(buf: &[u8]) -> Result<(u8, u8, &[u8], usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4 - buf.len(),
        });
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(WireError::BadLength(len));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total - buf.len(),
        });
    }
    let version = buf[4];
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::UnknownVersion(version));
    }
    Ok((version, buf[5], &buf[6..total], total))
}

/// Inserts `envelope` at the payload head of the frame that starts at
/// `start` in `out` (right after the 6-byte header) and patches the length
/// prefix. Keeping the envelope a post-pass means the per-opcode body
/// encoders stay identical across versions.
fn splice_envelope(out: &mut Vec<u8>, start: usize, envelope: &[u8]) {
    let insert_at = start + 6;
    out.splice(insert_at..insert_at, envelope.iter().copied());
    let len = u32::from_le_bytes(out[start..start + 4].try_into().unwrap());
    let len = len + envelope.len() as u32;
    debug_assert!(len <= MAX_FRAME_LEN, "trace envelope overflowed the frame");
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Splices the v5 request envelope (flags byte, plus the trace id when
/// sampled) into the frame at `start`. Pre-v5 frames have no envelope, so
/// a trace handed to an old-version encoder is silently dropped — tracing
/// is a v5 feature, not something to smuggle into frozen layouts.
fn splice_request_envelope(
    out: &mut Vec<u8>,
    start: usize,
    version: u8,
    trace: Option<TraceContext>,
) {
    if version < 5 {
        return;
    }
    let mut env = [0u8; 9];
    let used = match trace {
        Some(t) => {
            env[0] = TRACE_FLAG_SAMPLED;
            env[1..9].copy_from_slice(&t.trace_id.to_le_bytes());
            9
        }
        None => 1,
    };
    splice_envelope(out, start, &env[..used]);
}

/// Splices the v5 response envelope (flags byte, plus the trace id and
/// server-time echo when sampled) into the frame at `start`.
fn splice_response_envelope(
    out: &mut Vec<u8>,
    start: usize,
    version: u8,
    trace: Option<TraceEcho>,
) {
    if version < 5 {
        return;
    }
    let mut env = [0u8; MAX_TRACE_ENVELOPE];
    let used = match trace {
        Some(t) => {
            env[0] = TRACE_FLAG_SAMPLED;
            env[1..9].copy_from_slice(&t.trace_id.to_le_bytes());
            env[9..17].copy_from_slice(&t.server_ns.to_le_bytes());
            MAX_TRACE_ENVELOPE
        }
        None => 1,
    };
    splice_envelope(out, start, &env[..used]);
}

/// Strips the v5 request envelope off the payload head, validating the
/// flags byte (unassigned bits are malformed). Pre-v5 payloads pass
/// through untouched.
fn strip_request_envelope(
    version: u8,
    opcode: u8,
    payload: &[u8],
) -> Result<(Option<TraceContext>, &[u8]), WireError> {
    if version < 5 {
        return Ok((None, payload));
    }
    let mut p = Payload::new(
        payload,
        opcode,
        "v5 trace envelope: flags u8 [+ trace_id u64]",
    );
    let flags = p.take_u8()?;
    if flags & !TRACE_FLAG_SAMPLED != 0 {
        return Err(p.malformed());
    }
    let trace = if flags & TRACE_FLAG_SAMPLED != 0 {
        Some(TraceContext {
            trace_id: p.take_u64()?,
        })
    } else {
        None
    };
    Ok((trace, p.bytes))
}

/// Strips the v5 response envelope off the payload head (flags byte, plus
/// trace id and server-time echo when sampled).
fn strip_response_envelope(
    version: u8,
    opcode: u8,
    payload: &[u8],
) -> Result<(Option<TraceEcho>, &[u8]), WireError> {
    if version < 5 {
        return Ok((None, payload));
    }
    let mut p = Payload::new(
        payload,
        opcode,
        "v5 trace envelope: flags u8 [+ trace_id u64 + server_ns u64]",
    );
    let flags = p.take_u8()?;
    if flags & !TRACE_FLAG_SAMPLED != 0 {
        return Err(p.malformed());
    }
    let trace = if flags & TRACE_FLAG_SAMPLED != 0 {
        Some(TraceEcho {
            trace_id: p.take_u64()?,
            server_ns: p.take_u64()?,
        })
    } else {
        None
    };
    Ok((trace, p.bytes))
}

impl Request {
    /// The opcode byte this request rides under — the label servers stamp
    /// on span records and stage metrics for a traced request.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Insert { .. } => OP_INSERT,
            Request::DeleteMin => OP_DELETE_MIN,
            Request::DeleteMinBatch { .. } => OP_DELETE_MIN_BATCH,
            Request::ApproxLen => OP_APPROX_LEN,
            Request::Stats => OP_STATS,
            Request::Shutdown => OP_SHUTDOWN,
            Request::CreateQueue { .. } => OP_CREATE_QUEUE,
            Request::DropQueue { .. } => OP_DROP_QUEUE,
            Request::ListQueues => OP_LIST_QUEUES,
            Request::UseQueue { .. } => OP_USE_QUEUE,
            Request::MetricsDump { .. } => OP_METRICS_DUMP,
        }
    }

    /// Appends this request as one frame at [`WIRE_VERSION`].
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_versioned(out, WIRE_VERSION);
    }

    /// Appends this request as one frame stamped with `version`. The
    /// payload layout of the shared opcodes is identical across supported
    /// versions (v5 adds the one-byte trace envelope); encoding a v3-only
    /// request at v2 produces a frame peers reject as
    /// [`WireError::UnknownOpcode`] (useful for compatibility tests, never
    /// for production traffic).
    pub fn encode_versioned(&self, out: &mut Vec<u8>, version: u8) {
        self.encode_traced(out, version, None);
    }

    /// Appends this request as one frame stamped with `version`, carrying
    /// `trace` in the v5 envelope. At pre-v5 versions the trace is dropped
    /// (the frozen layouts have nowhere to put it), so a client can call
    /// this unconditionally with whatever version it negotiated.
    pub fn encode_traced(&self, out: &mut Vec<u8>, version: u8, trace: Option<TraceContext>) {
        let start = out.len();
        self.encode_body(out, version);
        splice_request_envelope(out, start, version, trace);
    }

    /// The per-opcode frame body, identical across versions; the v5 trace
    /// envelope is spliced in after the fact.
    fn encode_body(&self, out: &mut Vec<u8>, version: u8) {
        match self {
            Request::Insert { key, value } => encode_frame(out, version, OP_INSERT, |out| {
                put_u64(out, *key);
                put_u64(out, *value);
            }),
            Request::DeleteMin => encode_frame(out, version, OP_DELETE_MIN, |_| {}),
            Request::DeleteMinBatch { max } => {
                encode_frame(out, version, OP_DELETE_MIN_BATCH, |out| {
                    put_u32(out, *max);
                })
            }
            Request::ApproxLen => encode_frame(out, version, OP_APPROX_LEN, |_| {}),
            Request::Stats => encode_frame(out, version, OP_STATS, |_| {}),
            Request::Shutdown => encode_frame(out, version, OP_SHUTDOWN, |_| {}),
            Request::CreateQueue {
                name,
                backend,
                quota,
            } => encode_frame(out, version, OP_CREATE_QUEUE, |out| {
                put_name(out, name);
                out.push(backend.code());
                let (p1, p2, p3) = backend.params();
                put_u32(out, p1);
                put_u32(out, p2);
                put_u32(out, p3);
                put_u64(out, quota.max_inflight);
                put_u64(out, quota.max_sessions);
                put_u64(out, quota.ops_per_sec);
                put_u64(out, quota.burst);
                put_u64(out, quota.shed_key_bound);
            }),
            Request::DropQueue { name } => encode_frame(out, version, OP_DROP_QUEUE, |out| {
                put_name(out, name);
            }),
            Request::ListQueues => encode_frame(out, version, OP_LIST_QUEUES, |_| {}),
            Request::UseQueue { name } => encode_frame(out, version, OP_USE_QUEUE, |out| {
                put_name(out, name);
            }),
            Request::MetricsDump { include_events } => {
                encode_frame(out, version, OP_METRICS_DUMP, |out| {
                    out.push(*include_events as u8);
                })
            }
        }
    }

    /// Decodes one request frame from the front of `buf`, returning it and
    /// the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Request, usize), WireError> {
        Self::decode_versioned(buf).map(|(request, _, used)| (request, used))
    }

    /// Decodes one request frame, also returning the version byte it
    /// carried — servers echo that version in the response so older peers
    /// receive frames they can decode.
    pub fn decode_versioned(buf: &[u8]) -> Result<(Request, u8, usize), WireError> {
        Self::decode_traced(buf).map(|(request, version, _, used)| (request, version, used))
    }

    /// Decodes one request frame, also returning the version byte and the
    /// v5 trace context (always `None` for pre-v5 frames).
    pub fn decode_traced(
        buf: &[u8],
    ) -> Result<(Request, u8, Option<TraceContext>, usize), WireError> {
        let (version, opcode, payload, total) = split_frame(buf)?;
        if version < request_opcode_min_version(opcode) {
            return Err(WireError::UnknownOpcode(opcode));
        }
        let (trace, payload) = strip_request_envelope(version, opcode, payload)?;
        let request = match opcode {
            OP_INSERT => {
                let mut p = Payload::new(payload, opcode, "key u64 + value u64");
                let key = p.take_u64()?;
                let value = p.take_u64()?;
                p.finish()?;
                Request::Insert { key, value }
            }
            OP_DELETE_MIN => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::DeleteMin
            }
            OP_DELETE_MIN_BATCH => {
                let mut p = Payload::new(payload, opcode, "max u32");
                let max = p.take_u32()?;
                p.finish()?;
                Request::DeleteMinBatch { max }
            }
            OP_APPROX_LEN => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::ApproxLen
            }
            OP_STATS => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::Stats
            }
            OP_SHUTDOWN => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::Shutdown
            }
            OP_CREATE_QUEUE => {
                let mut p = Payload::new(
                    payload,
                    opcode,
                    "name + backend code u8 + 3 u32 params + 5 u64 quota fields",
                );
                let name = p.take_name()?;
                let code = p.take_u8()?;
                let p1 = p.take_u32()?;
                let p2 = p.take_u32()?;
                let p3 = p.take_u32()?;
                let backend =
                    BackendSpec::from_wire(code, p1, p2, p3).ok_or_else(|| p.malformed())?;
                let quota = QuotaSpec {
                    max_inflight: p.take_u64()?,
                    max_sessions: p.take_u64()?,
                    ops_per_sec: p.take_u64()?,
                    burst: p.take_u64()?,
                    shed_key_bound: p.take_u64()?,
                };
                p.finish()?;
                Request::CreateQueue {
                    name,
                    backend,
                    quota,
                }
            }
            OP_DROP_QUEUE => {
                let mut p = Payload::new(payload, opcode, "name (u8 len + 1..=64 utf8 bytes)");
                let name = p.take_name()?;
                p.finish()?;
                Request::DropQueue { name }
            }
            OP_LIST_QUEUES => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Request::ListQueues
            }
            OP_USE_QUEUE => {
                let mut p = Payload::new(payload, opcode, "name (u8 len + 1..=64 utf8 bytes)");
                let name = p.take_name()?;
                p.finish()?;
                Request::UseQueue { name }
            }
            OP_METRICS_DUMP => {
                let mut p = Payload::new(payload, opcode, "include_events u8 (0 or 1)");
                let include_events = match p.take_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(p.malformed()),
                };
                p.finish()?;
                Request::MetricsDump { include_events }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        Ok((request, version, trace, total))
    }
}

impl Response {
    /// Appends this response as one frame at [`WIRE_VERSION`].
    ///
    /// # Panics
    ///
    /// Panics if a batch holds more than [`MAX_BATCH`] entries or a queue
    /// list more than [`MAX_QUEUES`] rows — servers bound both before
    /// building the response.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.encode_versioned(out, WIRE_VERSION);
    }

    /// Appends this response as one frame stamped with `version`,
    /// downgrading the payload where the older layout requires it: a v2
    /// Stats reply carries the legacy 9-counter layout (no `refusals`, no
    /// per-queue rows) and v3 error codes collapse to
    /// [`ErrorCode::Unavailable`].
    ///
    /// # Panics
    ///
    /// As [`encode`](Response::encode).
    pub fn encode_versioned(&self, out: &mut Vec<u8>, version: u8) {
        self.encode_traced(out, version, None);
    }

    /// Appends this response as one frame stamped with `version`, carrying
    /// `trace` in the v5 envelope (dropped at pre-v5 versions, like the
    /// request side).
    ///
    /// # Panics
    ///
    /// As [`encode`](Response::encode).
    pub fn encode_traced(&self, out: &mut Vec<u8>, version: u8, trace: Option<TraceEcho>) {
        let start = out.len();
        self.encode_body(out, version);
        splice_response_envelope(out, start, version, trace);
    }

    /// The per-opcode frame body, identical across versions; the v5 trace
    /// envelope is spliced in after the fact.
    fn encode_body(&self, out: &mut Vec<u8>, version: u8) {
        match self {
            Response::Inserted => encode_frame(out, version, OP_INSERTED, |_| {}),
            Response::Entry { key, value } => encode_frame(out, version, OP_ENTRY, |out| {
                put_u64(out, *key);
                put_u64(out, *value);
            }),
            Response::Empty => encode_frame(out, version, OP_EMPTY, |_| {}),
            Response::Batch(entries) => {
                assert!(
                    entries.len() <= MAX_BATCH as usize,
                    "batch of {} exceeds the wire limit {MAX_BATCH}",
                    entries.len()
                );
                encode_frame(out, version, OP_BATCH, |out| {
                    put_u32(out, entries.len() as u32);
                    for (key, value) in entries {
                        put_u64(out, *key);
                        put_u64(out, *value);
                    }
                })
            }
            Response::Len(len) => encode_frame(out, version, OP_LEN, |out| put_u64(out, *len)),
            Response::Stats(stats) => encode_frame(out, version, OP_STATS_REPLY, |out| {
                put_u64(out, stats.sessions);
                put_u64(out, stats.totals.inserts);
                put_u64(out, stats.totals.removals);
                put_u64(out, stats.totals.failed_removals);
                put_u64(out, stats.totals.empty_polls);
                put_u64(out, stats.totals.contended_retries);
                if version >= 3 {
                    put_u64(out, stats.totals.refusals);
                }
                // Topology triple (positional; last of the v2 layout).
                put_u64(out, stats.active_lanes);
                put_u64(out, stats.max_lanes);
                put_u64(out, stats.resize_events);
                if version >= 4 {
                    put_u64(out, stats.resize_epoch);
                }
                if version >= 3 {
                    assert!(
                        stats.queues.len() <= MAX_QUEUES,
                        "stats with {} queue rows exceeds the wire limit {MAX_QUEUES}",
                        stats.queues.len()
                    );
                    put_u32(out, stats.queues.len() as u32);
                    for queue in &stats.queues {
                        put_name(out, &queue.name);
                        put_u64(out, queue.sessions);
                        put_u64(out, queue.totals.inserts);
                        put_u64(out, queue.totals.removals);
                        put_u64(out, queue.totals.failed_removals);
                        put_u64(out, queue.totals.empty_polls);
                        put_u64(out, queue.totals.contended_retries);
                        put_u64(out, queue.totals.refusals);
                        put_u64(out, queue.approx_len);
                    }
                }
            }),
            Response::ShuttingDown => encode_frame(out, version, OP_SHUTTING_DOWN, |_| {}),
            Response::QueueCreated => encode_frame(out, version, OP_QUEUE_CREATED, |_| {}),
            Response::QueueDropped => encode_frame(out, version, OP_QUEUE_DROPPED, |_| {}),
            Response::QueueList(rows) => {
                assert!(
                    rows.len() <= MAX_QUEUES,
                    "queue list of {} rows exceeds the wire limit {MAX_QUEUES}",
                    rows.len()
                );
                encode_frame(out, version, OP_QUEUE_LIST, |out| {
                    put_u32(out, rows.len() as u32);
                    for row in rows {
                        put_name(out, &row.name);
                        put_name(out, &row.backend);
                        out.push(row.instantiated as u8);
                        put_u64(out, row.sessions);
                        put_u64(out, row.approx_len);
                        put_u64(out, row.refusals);
                    }
                })
            }
            Response::Using => encode_frame(out, version, OP_USING, |_| {}),
            Response::MetricsText(text) => {
                // Bound the dump exactly like an error detail: truncate on a
                // char boundary so the frame never exceeds MAX_FRAME_LEN,
                // leaving headroom for the spliced trace envelope.
                let mut text = text.as_str();
                let cap = MAX_FRAME_LEN as usize - 2 - MAX_TRACE_ENVELOPE;
                if text.len() > cap {
                    let mut end = cap;
                    while !text.is_char_boundary(end) {
                        end -= 1;
                    }
                    text = &text[..end];
                }
                encode_frame(out, version, OP_METRICS_DUMP_REPLY, |out| {
                    out.extend_from_slice(text.as_bytes());
                })
            }
            Response::Error { code, detail } => {
                // Bound the detail so the frame stays within MAX_FRAME_LEN
                // whatever the caller passes (truncate on a char boundary),
                // leaving headroom for the spliced trace envelope.
                let mut detail = detail.as_str();
                let cap = MAX_FRAME_LEN as usize - 3 - MAX_TRACE_ENVELOPE;
                if detail.len() > cap {
                    let mut end = cap;
                    while !detail.is_char_boundary(end) {
                        end -= 1;
                    }
                    detail = &detail[..end];
                }
                encode_frame(out, version, OP_ERROR, |out| {
                    out.push(code.to_wire(version));
                    out.extend_from_slice(detail.as_bytes());
                })
            }
        }
    }

    /// Decodes one response frame from the front of `buf`, returning it and
    /// the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Response, usize), WireError> {
        Self::decode_versioned(buf).map(|(response, _, used)| (response, used))
    }

    /// Decodes one response frame, also returning the version byte it
    /// carried. A v2 Stats frame decodes with `refusals == 0` and no
    /// per-queue rows — the legacy layout does not carry them.
    pub fn decode_versioned(buf: &[u8]) -> Result<(Response, u8, usize), WireError> {
        Self::decode_traced(buf).map(|(response, version, _, used)| (response, version, used))
    }

    /// Decodes one response frame, also returning the version byte and the
    /// v5 trace echo (always `None` for pre-v5 frames).
    pub fn decode_traced(
        buf: &[u8],
    ) -> Result<(Response, u8, Option<TraceEcho>, usize), WireError> {
        let (version, opcode, payload, total) = split_frame(buf)?;
        if version < response_opcode_min_version(opcode) {
            return Err(WireError::UnknownOpcode(opcode));
        }
        let (trace, payload) = strip_response_envelope(version, opcode, payload)?;
        let response = match opcode {
            OP_INSERTED => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::Inserted
            }
            OP_ENTRY => {
                let mut p = Payload::new(payload, opcode, "key u64 + value u64");
                let key = p.take_u64()?;
                let value = p.take_u64()?;
                p.finish()?;
                Response::Entry { key, value }
            }
            OP_EMPTY => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::Empty
            }
            OP_BATCH => {
                let mut p = Payload::new(payload, opcode, "count u32 + count entries");
                let count = p.take_u32()?;
                if count > MAX_BATCH {
                    return Err(p.malformed());
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let key = p.take_u64()?;
                    let value = p.take_u64()?;
                    entries.push((key, value));
                }
                p.finish()?;
                Response::Batch(entries)
            }
            OP_LEN => {
                let mut p = Payload::new(payload, opcode, "len u64");
                let len = p.take_u64()?;
                p.finish()?;
                Response::Len(len)
            }
            OP_STATS_REPLY => {
                let expected = match version {
                    4.. => "11 u64 counters + queue_count u32 + per-queue rows",
                    3 => "10 u64 counters + queue_count u32 + per-queue rows",
                    _ => "9 u64 counters",
                };
                let mut p = Payload::new(payload, opcode, expected);
                let sessions = p.take_u64()?;
                let inserts = p.take_u64()?;
                let removals = p.take_u64()?;
                let failed_removals = p.take_u64()?;
                let empty_polls = p.take_u64()?;
                let contended_retries = p.take_u64()?;
                let refusals = if version >= 3 { p.take_u64()? } else { 0 };
                let active_lanes = p.take_u64()?;
                let max_lanes = p.take_u64()?;
                let resize_events = p.take_u64()?;
                let resize_epoch = if version >= 4 { p.take_u64()? } else { 0 };
                let mut queues = Vec::new();
                if version >= 3 {
                    let count = p.take_u32()?;
                    if count as usize > MAX_QUEUES {
                        return Err(p.malformed());
                    }
                    queues.reserve(count as usize);
                    for _ in 0..count {
                        let name = p.take_name()?;
                        let sessions = p.take_u64()?;
                        let totals = HandleStats {
                            inserts: p.take_u64()?,
                            removals: p.take_u64()?,
                            failed_removals: p.take_u64()?,
                            empty_polls: p.take_u64()?,
                            contended_retries: p.take_u64()?,
                            refusals: p.take_u64()?,
                        };
                        let approx_len = p.take_u64()?;
                        queues.push(QueueStats {
                            name,
                            sessions,
                            totals,
                            approx_len,
                        });
                    }
                }
                p.finish()?;
                Response::Stats(ServiceStats {
                    sessions,
                    totals: HandleStats {
                        inserts,
                        removals,
                        failed_removals,
                        empty_polls,
                        contended_retries,
                        refusals,
                    },
                    active_lanes,
                    max_lanes,
                    resize_events,
                    resize_epoch,
                    queues,
                })
            }
            OP_SHUTTING_DOWN => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::ShuttingDown
            }
            OP_QUEUE_CREATED => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::QueueCreated
            }
            OP_QUEUE_DROPPED => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::QueueDropped
            }
            OP_QUEUE_LIST => {
                let mut p = Payload::new(payload, opcode, "count u32 + count queue rows");
                let count = p.take_u32()?;
                if count as usize > MAX_QUEUES {
                    return Err(p.malformed());
                }
                let mut rows = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let name = p.take_name()?;
                    let backend = p.take_name()?;
                    let instantiated = match p.take_u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(p.malformed()),
                    };
                    rows.push(QueueListRow {
                        name,
                        backend,
                        instantiated,
                        sessions: p.take_u64()?,
                        approx_len: p.take_u64()?,
                        refusals: p.take_u64()?,
                    });
                }
                p.finish()?;
                Response::QueueList(rows)
            }
            OP_USING => {
                Payload::new(payload, opcode, "empty payload").finish()?;
                Response::Using
            }
            OP_METRICS_DUMP_REPLY => {
                Response::MetricsText(String::from_utf8_lossy(payload).into_owned())
            }
            OP_ERROR => {
                let mut p = Payload::new(payload, opcode, "code u8 + utf8 detail");
                let raw = p.take_u8()?;
                let code = ErrorCode::from_u8(raw).ok_or_else(|| p.malformed())?;
                let detail = String::from_utf8_lossy(p.bytes).into_owned();
                Response::Error { code, detail }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        Ok((response, version, trace, total))
    }
}

/// Encodes a `Batch` response frame from borrowed entries at `version` —
/// byte-identical to `Response::Batch(entries.to_vec())
/// .encode_traced(out, version, trace)` without giving up the caller's
/// buffer, so a server can reuse one entries vector across requests.
///
/// # Panics
///
/// Panics if `entries` holds more than [`MAX_BATCH`] elements (servers
/// clamp every batch below that).
pub fn encode_batch_response(
    out: &mut Vec<u8>,
    entries: &[(Key, u64)],
    version: u8,
    trace: Option<TraceEcho>,
) {
    assert!(
        entries.len() <= MAX_BATCH as usize,
        "batch of {} exceeds the wire limit {MAX_BATCH}",
        entries.len()
    );
    let start = out.len();
    encode_frame(out, version, OP_BATCH, |out| {
        put_u32(out, entries.len() as u32);
        for (key, value) in entries {
            put_u64(out, *key);
            put_u64(out, *value);
        }
    });
    splice_response_envelope(out, start, version, trace);
}

/// Reads exactly one frame's bytes from a blocking stream into `scratch`
/// (cleared first), returning `Ok(false)` on a clean end-of-stream at a
/// frame boundary.
///
/// Used by both sides: the server reads request frames, the client response
/// frames; the caller then decodes `scratch` with the matching `decode`.
/// A stream that dies mid-frame surfaces as [`WireError::Truncated`]
/// wrapped in [`io::ErrorKind::UnexpectedEof`]; a bad length prefix as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame_bytes<R: Read>(reader: &mut R, scratch: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    WireError::Truncated {
                        needed: header.len() - filled,
                    },
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header);
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::BadLength(len),
        ));
    }
    scratch.clear();
    scratch.extend_from_slice(&header);
    scratch.resize(4 + len as usize, 0);
    reader.read_exact(&mut scratch[4..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                WireError::Truncated { needed: 1 },
            )
        } else {
            e
        }
    })?;
    Ok(true)
}

/// Encodes and writes one response frame at `version` (no flush — the
/// caller owns the credit-window flush policy).
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    scratch: &mut Vec<u8>,
    version: u8,
) -> io::Result<()> {
    scratch.clear();
    response.encode_versioned(scratch, version);
    writer.write_all(scratch)
}

/// Encodes and writes one request frame at [`WIRE_VERSION`] (no flush).
pub fn write_request<W: Write>(
    writer: &mut W,
    request: &Request,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    scratch.clear();
    request.encode(scratch);
    writer.write_all(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_request(r: Request) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (decoded, version, used) = Request::decode_versioned(&buf).expect("round-trip");
        assert_eq!(decoded, r);
        assert_eq!(version, WIRE_VERSION);
        assert_eq!(used, buf.len());
    }

    fn roundtrip_response(r: Response) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (decoded, version, used) = Response::decode_versioned(&buf).expect("round-trip");
        assert_eq!(decoded, r);
        assert_eq!(version, WIRE_VERSION);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn every_request_variant_round_trips() {
        roundtrip_request(Request::Insert { key: 7, value: 70 });
        roundtrip_request(Request::Insert {
            key: Key::MAX - 1,
            value: u64::MAX,
        });
        roundtrip_request(Request::DeleteMin);
        roundtrip_request(Request::DeleteMinBatch { max: 0 });
        roundtrip_request(Request::DeleteMinBatch { max: u32::MAX });
        roundtrip_request(Request::ApproxLen);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::ListQueues);
        roundtrip_request(Request::DropQueue {
            name: "tenant/a".to_string(),
        });
        roundtrip_request(Request::UseQueue {
            name: "x".repeat(MAX_NAME_LEN),
        });
        roundtrip_request(Request::MetricsDump {
            include_events: false,
        });
        roundtrip_request(Request::MetricsDump {
            include_events: true,
        });
        // Every backend family and a fully-populated quota.
        for backend in [
            BackendSpec::MultiQueue { lanes: 8, d: 2 },
            BackendSpec::Elastic {
                lanes: 16,
                d: 4,
                shards: 2,
            },
            BackendSpec::CoarseHeap,
            BackendSpec::KLsm {
                threads: 4,
                relaxation: 256,
            },
            BackendSpec::SkipList,
        ] {
            roundtrip_request(Request::CreateQueue {
                name: "q-1.z/b_c".to_string(),
                backend,
                quota: QuotaSpec {
                    max_inflight: 1,
                    max_sessions: 2,
                    ops_per_sec: 3,
                    burst: 4,
                    shed_key_bound: 5,
                },
            });
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        roundtrip_response(Response::Inserted);
        roundtrip_response(Response::Entry { key: 1, value: 2 });
        roundtrip_response(Response::Empty);
        roundtrip_response(Response::Batch(vec![]));
        roundtrip_response(Response::Batch(vec![(1, 10), (2, 20), (u64::MAX, 0)]));
        roundtrip_response(Response::Len(123));
        roundtrip_response(Response::Stats(full_stats()));
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::QueueCreated);
        roundtrip_response(Response::QueueDropped);
        roundtrip_response(Response::Using);
        roundtrip_response(Response::MetricsText(String::new()));
        roundtrip_response(Response::MetricsText(
            "# TYPE mq_ops_total counter\nmq_ops_total{queue=\"default\"} 42\n".to_string(),
        ));
        roundtrip_response(Response::QueueList(vec![]));
        roundtrip_response(Response::QueueList(vec![
            QueueListRow {
                name: "default".to_string(),
                backend: "multiqueue(n=8, d=2)".to_string(),
                instantiated: true,
                sessions: 4,
                approx_len: 100,
                refusals: 3,
            },
            QueueListRow {
                name: "tenant/b".to_string(),
                backend: "skiplist".to_string(),
                instantiated: false,
                sessions: 0,
                approx_len: 0,
                refusals: 0,
            },
        ]));
        for code in [
            ErrorCode::ReservedKey,
            ErrorCode::Protocol,
            ErrorCode::Unavailable,
            ErrorCode::QuotaExceeded,
            ErrorCode::NoSuchQueue,
            ErrorCode::QueueExists,
            ErrorCode::QueueDropped,
            ErrorCode::RegistryFull,
            ErrorCode::BadQueueName,
        ] {
            roundtrip_response(Response::Error {
                code,
                detail: format!("refused: {code:?}"),
            });
        }
    }

    #[test]
    fn frames_decode_from_a_concatenated_stream() {
        let mut buf = Vec::new();
        Request::Insert { key: 1, value: 2 }.encode(&mut buf);
        Request::DeleteMin.encode(&mut buf);
        Request::UseQueue {
            name: "q".to_string(),
        }
        .encode(&mut buf);
        let (first, n1) = Request::decode(&buf).unwrap();
        assert_eq!(first, Request::Insert { key: 1, value: 2 });
        let (second, n2) = Request::decode(&buf[n1..]).unwrap();
        assert_eq!(second, Request::DeleteMin);
        let (third, n3) = Request::decode(&buf[n1 + n2..]).unwrap();
        assert_eq!(
            third,
            Request::UseQueue {
                name: "q".to_string()
            }
        );
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn truncated_prefixes_ask_for_more_bytes() {
        let mut buf = Vec::new();
        Request::Insert { key: 9, value: 9 }.encode(&mut buf);
        for cut in 0..buf.len() {
            let err = Request::decode(&buf[..cut]).expect_err("truncation must fail");
            assert!(
                err.is_incomplete(),
                "cut at {cut}/{} should be Truncated, got {err:?}",
                buf.len()
            );
        }
    }

    /// A fully-populated v3 Stats response (all counters distinct so a
    /// field-order regression cannot cancel out), including two per-queue
    /// rows.
    fn full_stats() -> ServiceStats {
        ServiceStats {
            sessions: 0x0101,
            totals: HandleStats {
                inserts: 0x0202,
                removals: 0x0303,
                failed_removals: 0x0404,
                empty_polls: 0x0505,
                contended_retries: 0x0606,
                refusals: 0x0A0A,
            },
            active_lanes: 0x0707,
            max_lanes: 0x0808,
            resize_events: 0x0909,
            resize_epoch: 0x1515,
            queues: vec![
                QueueStats {
                    name: "default".to_string(),
                    sessions: 0x0B0B,
                    totals: HandleStats {
                        inserts: 0x0C0C,
                        removals: 0x0D0D,
                        failed_removals: 0x0E0E,
                        empty_polls: 0x0F0F,
                        contended_retries: 0x1010,
                        refusals: 0x1111,
                    },
                    approx_len: 0x1212,
                },
                QueueStats {
                    name: "tenant/a".to_string(),
                    sessions: 0x1313,
                    totals: HandleStats::default(),
                    approx_len: 0x1414,
                },
            ],
        }
    }

    /// Every truncation of a v4 Stats reply — including cuts landing inside
    /// the per-queue rows — must report `Truncated` (the stream-reader
    /// "wait for more" signal), never decode a partial aggregate and never
    /// classify the prefix as garbage.
    #[test]
    fn stats_reply_truncations_are_incomplete_at_every_offset() {
        let stats = full_stats();
        let mut buf = Vec::new();
        Response::Stats(stats.clone()).encode(&mut buf);
        // Header (4 len + 1 version + 1 opcode) + 1 envelope flags byte +
        // 11 × u64 + queue count + one row per queue (name field + 8 × u64
        // each).
        let expected_len = 6
            + 1
            + 11 * 8
            + 4
            + stats
                .queues
                .iter()
                .map(|q| 1 + q.name.len() + 8 * 8)
                .sum::<usize>();
        assert_eq!(buf.len(), expected_len, "v5 Stats layout drifted");
        for cut in 0..buf.len() {
            let err = Response::decode(&buf[..cut]).expect_err("truncation must fail");
            assert!(
                err.is_incomplete(),
                "cut at {cut}/{} should be Truncated, got {err:?}",
                buf.len()
            );
        }
    }

    /// Every truncation of the new v3 frames is `Truncated`, and a length
    /// prefix that excludes trailing fields is malformed — the layout check
    /// is exact in both directions for every new opcode.
    #[test]
    fn v3_frame_truncations_are_incomplete_at_every_offset() {
        let frames: Vec<Vec<u8>> = {
            let mut encoded = Vec::new();
            let mut buf = Vec::new();
            Request::CreateQueue {
                name: "tenant/a".to_string(),
                backend: BackendSpec::Elastic {
                    lanes: 16,
                    d: 4,
                    shards: 2,
                },
                quota: QuotaSpec::unlimited().with_rate(1000, 50),
            }
            .encode(&mut buf);
            encoded.push(std::mem::take(&mut buf));
            Request::DropQueue {
                name: "tenant/a".to_string(),
            }
            .encode(&mut buf);
            encoded.push(std::mem::take(&mut buf));
            Request::ListQueues.encode(&mut buf);
            encoded.push(std::mem::take(&mut buf));
            Request::UseQueue {
                name: "q".to_string(),
            }
            .encode(&mut buf);
            encoded.push(std::mem::take(&mut buf));
            Response::QueueCreated.encode(&mut buf);
            encoded.push(std::mem::take(&mut buf));
            Response::QueueList(vec![QueueListRow {
                name: "default".to_string(),
                backend: "coarse-heap".to_string(),
                instantiated: true,
                sessions: 1,
                approx_len: 2,
                refusals: 3,
            }])
            .encode(&mut buf);
            encoded.push(std::mem::take(&mut buf));
            Response::Using.encode(&mut buf);
            encoded.push(std::mem::take(&mut buf));
            encoded
        };
        for frame in frames {
            for cut in 0..frame.len() {
                let request_err = Request::decode(&frame[..cut]).err();
                let response_err = Response::decode(&frame[..cut]).err();
                for err in [request_err, response_err].into_iter().flatten() {
                    assert!(
                        err.is_incomplete(),
                        "cut at {cut}/{} should be Truncated, got {err:?}",
                        frame.len()
                    );
                }
            }
        }
    }

    /// A frame whose *length prefix* already excludes required fields (e.g.
    /// the v1 7-counter Stats layout, or a v2-sized Stats arriving in a v3
    /// frame) is a malformed payload, not a silent short decode.
    #[test]
    fn undersized_stats_payloads_are_rejected_as_malformed() {
        for counters in [6u64, 9, 10, 11] {
            // 6 = v1-ish, 9 = the v2 layout inside a v5 frame, 10 = the v3
            // counter set (missing resize_epoch + queue count), 11 =
            // missing the queue count.
            let mut buf = Vec::new();
            encode_frame(&mut buf, WIRE_VERSION, OP_STATS_REPLY, |out| {
                out.push(0); // v5 envelope: no trace
                for counter in 0..counters {
                    put_u64(out, counter);
                }
            });
            assert!(
                matches!(
                    Response::decode(&buf),
                    Err(WireError::MalformedPayload {
                        opcode: OP_STATS_REPLY,
                        ..
                    })
                ),
                "{counters}-counter v5 Stats payload must be malformed"
            );
        }
        // A v3 frame sized for v4 (11 counters) or missing its queue count
        // (10 counters, no u32) is malformed too.
        for counters in [9u64, 11] {
            let mut buf = Vec::new();
            encode_frame(&mut buf, 3, OP_STATS_REPLY, |out| {
                for counter in 0..counters {
                    put_u64(out, counter);
                }
            });
            assert!(
                matches!(
                    Response::decode(&buf),
                    Err(WireError::MalformedPayload { .. })
                ),
                "{counters}-counter v3 Stats payload must be malformed"
            );
        }
        // The same exactness holds for v2 frames: 6 or 10 counters do not
        // fit the 9-counter layout.
        for counters in [6u64, 10] {
            let mut buf = Vec::new();
            encode_frame(&mut buf, 2, OP_STATS_REPLY, |out| {
                for counter in 0..counters {
                    put_u64(out, counter);
                }
            });
            assert!(
                matches!(
                    Response::decode(&buf),
                    Err(WireError::MalformedPayload { .. })
                ),
                "{counters}-counter v2 Stats payload must be malformed"
            );
        }
    }

    /// v2 frames carry the legacy layouts: a v2-encoded Stats reply is the
    /// 9-counter payload (no refusals, no rows) and decodes back with those
    /// fields defaulted; the shared opcodes round-trip unchanged.
    #[test]
    fn v2_stats_layout_round_trips_without_v3_fields() {
        let stats = full_stats();
        let mut buf = Vec::new();
        Response::Stats(stats.clone()).encode_versioned(&mut buf, 2);
        assert_eq!(buf.len(), 6 + 9 * 8, "v2 Stats layout is 9 u64 counters");
        assert_eq!(buf[4], 2, "version byte echoes the requested version");
        let (decoded, version, used) = Response::decode_versioned(&buf).unwrap();
        assert_eq!(version, 2);
        assert_eq!(used, buf.len());
        match decoded {
            Response::Stats(v2) => {
                assert_eq!(v2.sessions, stats.sessions);
                assert_eq!(v2.totals.inserts, stats.totals.inserts);
                assert_eq!(v2.totals.contended_retries, stats.totals.contended_retries);
                assert_eq!(v2.active_lanes, stats.active_lanes);
                assert_eq!(v2.max_lanes, stats.max_lanes);
                assert_eq!(v2.resize_events, stats.resize_events);
                assert_eq!(v2.resize_epoch, 0, "v2 carries no resize epoch");
                assert_eq!(v2.totals.refusals, 0, "v2 carries no refusals");
                assert!(v2.queues.is_empty(), "v2 carries no per-queue rows");
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Every truncation of the v2 layout stays incomplete too.
        for cut in 0..buf.len() {
            let err = Response::decode(&buf[..cut]).expect_err("truncation must fail");
            assert!(err.is_incomplete(), "v2 cut at {cut}: {err:?}");
        }
    }

    /// A v3-encoded Stats reply carries the 10-counter layout (no
    /// `resize_epoch`) and decodes back with that field defaulted, rows
    /// intact — the downgrade path v3 peers ride on a v4 server.
    #[test]
    fn v3_stats_layout_round_trips_without_the_resize_epoch() {
        let stats = full_stats();
        let mut buf = Vec::new();
        Response::Stats(stats.clone()).encode_versioned(&mut buf, 3);
        let row_bytes: usize = stats.queues.iter().map(|q| 1 + q.name.len() + 8 * 8).sum();
        assert_eq!(
            buf.len(),
            6 + 10 * 8 + 4 + row_bytes,
            "v3 Stats layout is 10 u64 counters + rows"
        );
        let (decoded, version, used) = Response::decode_versioned(&buf).unwrap();
        assert_eq!(version, 3);
        assert_eq!(used, buf.len());
        match decoded {
            Response::Stats(v3) => {
                assert_eq!(v3.resize_epoch, 0, "v3 carries no resize epoch");
                assert_eq!(v3.resize_events, stats.resize_events);
                assert_eq!(v3.queues, stats.queues, "v3 keeps the per-queue rows");
            }
            other => panic!("expected stats, got {other:?}"),
        }
        for cut in 0..buf.len() {
            let err = Response::decode(&buf[..cut]).expect_err("truncation must fail");
            assert!(err.is_incomplete(), "v3 cut at {cut}: {err:?}");
        }
    }

    /// v4-only opcodes inside a v2 or v3 frame are unknown opcodes, and
    /// every truncation of the new frames is incomplete.
    #[test]
    fn pre_v4_frames_reject_v4_opcodes() {
        for version in [2u8, 3] {
            let mut buf = Vec::new();
            Request::MetricsDump {
                include_events: true,
            }
            .encode_versioned(&mut buf, version);
            assert!(
                matches!(Request::decode(&buf), Err(WireError::UnknownOpcode(_))),
                "MetricsDump must be unknown at v{version}"
            );
            let mut buf = Vec::new();
            Response::MetricsText("x".to_string()).encode_versioned(&mut buf, version);
            assert!(
                matches!(Response::decode(&buf), Err(WireError::UnknownOpcode(_))),
                "MetricsText must be unknown at v{version}"
            );
        }
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut buf = Vec::new();
        Request::MetricsDump {
            include_events: false,
        }
        .encode(&mut buf);
        frames.push(std::mem::take(&mut buf));
        Response::MetricsText("mq_ops_total 7\n".to_string()).encode(&mut buf);
        frames.push(std::mem::take(&mut buf));
        for frame in frames {
            for cut in 0..frame.len() {
                let request_err = Request::decode(&frame[..cut]).err();
                let response_err = Response::decode(&frame[..cut]).err();
                for err in [request_err, response_err].into_iter().flatten() {
                    assert!(
                        err.is_incomplete(),
                        "cut at {cut}/{} should be Truncated, got {err:?}",
                        frame.len()
                    );
                }
            }
        }
        // The include_events flag is a strict bool.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_METRICS_DUMP, |out| {
            out.push(0); // v5 envelope: no trace
            out.push(2);
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
    }

    /// v3-only opcodes inside a v2 frame are unknown opcodes: an old peer
    /// never assigned them, so a new peer must not act on them at the old
    /// version either.
    #[test]
    fn v2_frames_reject_v3_opcodes() {
        let requests = [
            Request::CreateQueue {
                name: "q".to_string(),
                backend: BackendSpec::default_multiqueue(),
                quota: QuotaSpec::unlimited(),
            },
            Request::DropQueue {
                name: "q".to_string(),
            },
            Request::ListQueues,
            Request::UseQueue {
                name: "q".to_string(),
            },
        ];
        for request in requests {
            let mut buf = Vec::new();
            request.encode_versioned(&mut buf, 2);
            assert!(
                matches!(Request::decode(&buf), Err(WireError::UnknownOpcode(_))),
                "{request:?} must be unknown at v2"
            );
        }
        let responses = [
            Response::QueueCreated,
            Response::QueueDropped,
            Response::QueueList(vec![]),
            Response::Using,
        ];
        for response in responses {
            let mut buf = Vec::new();
            response.encode_versioned(&mut buf, 2);
            assert!(
                matches!(Response::decode(&buf), Err(WireError::UnknownOpcode(_))),
                "{response:?} must be unknown at v2"
            );
        }
    }

    /// Encoding a v3 error code for a v2 peer collapses it to
    /// `Unavailable`; the legacy codes pass through untouched.
    #[test]
    fn v2_error_frames_map_v3_codes_to_unavailable() {
        for (code, expect) in [
            (ErrorCode::ReservedKey, ErrorCode::ReservedKey),
            (ErrorCode::Protocol, ErrorCode::Protocol),
            (ErrorCode::Unavailable, ErrorCode::Unavailable),
            (ErrorCode::QuotaExceeded, ErrorCode::Unavailable),
            (ErrorCode::NoSuchQueue, ErrorCode::Unavailable),
            (ErrorCode::QueueExists, ErrorCode::Unavailable),
            (ErrorCode::QueueDropped, ErrorCode::Unavailable),
            (ErrorCode::RegistryFull, ErrorCode::Unavailable),
            (ErrorCode::BadQueueName, ErrorCode::Unavailable),
        ] {
            let mut buf = Vec::new();
            Response::Error {
                code,
                detail: "quota".to_string(),
            }
            .encode_versioned(&mut buf, 2);
            match Response::decode(&buf).unwrap().0 {
                Response::Error { code: decoded, .. } => {
                    assert_eq!(decoded, expect, "v2 mapping of {code:?}")
                }
                other => panic!("expected an error frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn wire_names_are_validated_on_decode() {
        // Zero-length name (the leading 0 is the v5 no-trace envelope).
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_USE_QUEUE, |out| {
            out.push(0);
            out.push(0);
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Length byte beyond MAX_NAME_LEN.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_USE_QUEUE, |out| {
            out.push(0);
            out.push((MAX_NAME_LEN + 1) as u8);
            out.extend_from_slice(&[b'a'; MAX_NAME_LEN + 1]);
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Length byte promising more than the payload carries.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_DROP_QUEUE, |out| {
            out.push(0);
            out.push(10);
            out.extend_from_slice(b"abc");
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Invalid UTF-8 in the name bytes.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_USE_QUEUE, |out| {
            out.push(0);
            out.push(2);
            out.extend_from_slice(&[0xFF, 0xFE]);
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Trailing bytes after a well-formed name.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_USE_QUEUE, |out| {
            out.push(0);
            out.push(1);
            out.push(b'q');
            out.push(0);
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn unknown_backend_codes_and_oversized_row_counts_are_malformed() {
        // CreateQueue with an unassigned backend code.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_CREATE_QUEUE, |out| {
            out.push(0); // v5 envelope: no trace
            out.push(1);
            out.push(b'q');
            out.push(99); // unknown backend family
            for _ in 0..3 {
                put_u32(out, 0);
            }
            for _ in 0..5 {
                put_u64(out, 0);
            }
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload {
                opcode: OP_CREATE_QUEUE,
                ..
            })
        ));
        // QueueList promising more rows than the registry can hold is
        // refused before allocation.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_QUEUE_LIST, |out| {
            out.push(0); // v5 envelope: no trace
            put_u32(out, (MAX_QUEUES + 1) as u32);
        });
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Same bound on the Stats per-queue row count.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_STATS_REPLY, |out| {
            out.push(0); // v5 envelope: no trace
            for _ in 0..11 {
                put_u64(out, 0);
            }
            put_u32(out, (MAX_QUEUES + 1) as u32);
        });
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // A QueueList row with an instantiated byte that is neither 0 nor 1.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_QUEUE_LIST, |out| {
            out.push(0); // v5 envelope: no trace
            put_u32(out, 1);
            out.push(1);
            out.push(b'q');
            out.push(1);
            out.push(b'h');
            out.push(2); // bad bool
            for _ in 0..3 {
                put_u64(out, 0);
            }
        });
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
    }

    /// The checked-in regression corpus (`proptest-regressions/protocol.txt`):
    /// byte sequences that exercised decoder edge cases — hostile lengths,
    /// version skew, payload-layout violations, every-offset truncations of
    /// the widest frames. Each line is `hex-bytes [# comment]`; both
    /// decoders must stay total over every entry, and valid frames must
    /// consume exactly what they claim.
    #[test]
    fn regression_corpus_keeps_the_decoders_total() {
        let corpus = include_str!("../proptest-regressions/protocol.txt");
        let mut cases = 0usize;
        for (lineno, line) in corpus.lines().enumerate() {
            let data = line.split('#').next().unwrap_or("").trim();
            if data.is_empty() {
                continue;
            }
            let bytes: Vec<u8> = data
                .split_whitespace()
                .map(|h| {
                    u8::from_str_radix(h, 16)
                        .unwrap_or_else(|_| panic!("bad hex {h:?} on corpus line {}", lineno + 1))
                })
                .collect();
            // Totality: a frame or an error, never a panic; on success the
            // consumed length stays within the buffer.
            if let Ok((_, used)) = Request::decode(&bytes) {
                assert!(used <= bytes.len(), "corpus line {}", lineno + 1);
            }
            if let Ok((_, used)) = Response::decode(&bytes) {
                assert!(used <= bytes.len(), "corpus line {}", lineno + 1);
            }
            cases += 1;
        }
        assert!(cases >= 20, "corpus unexpectedly small: {cases} entries");
    }

    #[test]
    fn version_and_opcode_are_validated() {
        let mut buf = Vec::new();
        Request::DeleteMin.encode(&mut buf);
        let mut wrong_version = buf.clone();
        wrong_version[4] = 9;
        assert_eq!(
            Request::decode(&wrong_version),
            Err(WireError::UnknownVersion(9))
        );
        // v1 predates MIN_WIRE_VERSION and is refused.
        let mut v1 = buf.clone();
        v1[4] = 1;
        assert_eq!(Request::decode(&v1), Err(WireError::UnknownVersion(1)));
        let mut wrong_opcode = buf.clone();
        wrong_opcode[5] = 0x7E;
        assert_eq!(
            Request::decode(&wrong_opcode),
            Err(WireError::UnknownOpcode(0x7E))
        );
        // A response opcode is not a request.
        let mut response = Vec::new();
        Response::Empty.encode(&mut response);
        assert_eq!(
            Request::decode(&response),
            Err(WireError::UnknownOpcode(OP_EMPTY))
        );
    }

    #[test]
    fn decode_versioned_reports_the_frame_version() {
        for version in [MIN_WIRE_VERSION, WIRE_VERSION] {
            let mut buf = Vec::new();
            Request::DeleteMin.encode_versioned(&mut buf, version);
            let (_, decoded_version, _) = Request::decode_versioned(&buf).unwrap();
            assert_eq!(decoded_version, version);
            let mut buf = Vec::new();
            Response::Empty.encode_versioned(&mut buf, version);
            let (_, decoded_version, _) = Response::decode_versioned(&buf).unwrap();
            assert_eq!(decoded_version, version);
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_without_allocating() {
        // Length 0 and 1 cannot hold version + opcode.
        for len in [0u32, 1] {
            let mut buf = len.to_le_bytes().to_vec();
            buf.extend_from_slice(&[0; 8]);
            assert_eq!(Request::decode(&buf), Err(WireError::BadLength(len)));
        }
        // A huge length prefix must fail fast, not wait for 4 GiB.
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.push(WIRE_VERSION);
        buf.push(OP_DELETE_MIN);
        assert_eq!(Request::decode(&buf), Err(WireError::BadLength(u32::MAX)));
        // One past the ceiling is rejected the same way.
        let mut buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        buf.push(WIRE_VERSION);
        buf.push(OP_DELETE_MIN);
        assert_eq!(
            Request::decode(&buf),
            Err(WireError::BadLength(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn payload_layout_is_enforced_exactly() {
        // Insert with a short payload: layout needs 16 body bytes, got 8
        // (the leading 0 is the v5 no-trace envelope).
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_INSERT, |out| {
            out.push(0);
            out.extend_from_slice(&[0; 8])
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload {
                opcode: OP_INSERT,
                ..
            })
        ));
        // DeleteMin with trailing bytes.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_DELETE_MIN, |out| {
            out.push(0);
            out.push(0);
        });
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Batch response whose count promises more entries than the frame
        // carries.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_BATCH, |out| {
            out.push(0);
            put_u32(out, 3)
        });
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        // Batch count beyond the wire limit is refused before allocation.
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_BATCH, |out| {
            out.push(0);
            put_u32(out, MAX_BATCH + 1)
        });
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn oversized_error_detail_is_truncated_to_fit() {
        let huge = "é".repeat(MAX_FRAME_LEN as usize); // 2 bytes per char
        let mut buf = Vec::new();
        Response::Error {
            code: ErrorCode::Protocol,
            detail: huge,
        }
        .encode(&mut buf);
        let (decoded, used) = Response::decode(&buf).expect("truncated detail still decodes");
        assert_eq!(used, buf.len());
        match decoded {
            Response::Error { code, detail } => {
                assert_eq!(code, ErrorCode::Protocol);
                assert!(!detail.is_empty());
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    #[test]
    fn borrowed_batch_encoder_matches_the_owned_one() {
        let traces = [
            None,
            Some(TraceEcho {
                trace_id: 0xDEAD_BEEF,
                server_ns: 4242,
            }),
        ];
        for entries in [vec![], vec![(1u64, 10u64)], vec![(5, 50), (2, 20), (9, 90)]] {
            for version in [MIN_WIRE_VERSION, WIRE_VERSION] {
                for trace in traces {
                    let mut borrowed = Vec::new();
                    encode_batch_response(&mut borrowed, &entries, version, trace);
                    let mut owned = Vec::new();
                    Response::Batch(entries.clone()).encode_traced(&mut owned, version, trace);
                    assert_eq!(borrowed, owned, "the two encoders must stay in lockstep");
                }
            }
        }
    }

    #[test]
    fn read_frame_bytes_round_trips_and_reports_clean_eof() {
        let mut wire = Vec::new();
        Request::Insert { key: 4, value: 44 }.encode(&mut wire);
        Request::ApproxLen.encode(&mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut cursor, &mut frame).unwrap());
        assert_eq!(
            Request::decode(&frame).unwrap().0,
            Request::Insert { key: 4, value: 44 }
        );
        assert!(read_frame_bytes(&mut cursor, &mut frame).unwrap());
        assert_eq!(Request::decode(&frame).unwrap().0, Request::ApproxLen);
        assert!(!read_frame_bytes(&mut cursor, &mut frame).unwrap());
    }

    #[test]
    fn read_frame_bytes_flags_mid_frame_death() {
        let mut wire = Vec::new();
        Request::Insert { key: 4, value: 44 }.encode(&mut wire);
        wire.truncate(wire.len() - 3);
        let mut cursor = io::Cursor::new(wire);
        let mut frame = Vec::new();
        let err = read_frame_bytes(&mut cursor, &mut frame).expect_err("mid-frame EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// Traced v5 frames round-trip the envelope in both directions, and
    /// untraced v5 frames decode with no trace at the cost of one byte.
    #[test]
    fn v5_traced_frames_round_trip_the_envelope() {
        let trace = TraceContext {
            trace_id: 0x0123_4567_89AB_CDEF,
        };
        let mut buf = Vec::new();
        Request::Insert { key: 7, value: 70 }.encode_traced(&mut buf, WIRE_VERSION, Some(trace));
        let (request, version, decoded_trace, used) =
            Request::decode_traced(&buf).expect("traced request decodes");
        assert_eq!(request, Request::Insert { key: 7, value: 70 });
        assert_eq!(version, WIRE_VERSION);
        assert_eq!(decoded_trace, Some(trace));
        assert_eq!(used, buf.len());

        let echo = TraceEcho {
            trace_id: trace.trace_id,
            server_ns: 12_345,
        };
        let mut buf = Vec::new();
        Response::Entry { key: 7, value: 70 }.encode_traced(&mut buf, WIRE_VERSION, Some(echo));
        let (response, version, decoded_echo, used) =
            Response::decode_traced(&buf).expect("traced response decodes");
        assert_eq!(response, Response::Entry { key: 7, value: 70 });
        assert_eq!(version, WIRE_VERSION);
        assert_eq!(decoded_echo, Some(echo));
        assert_eq!(used, buf.len());

        // Untraced v5 frames carry the one-byte envelope and decode to None.
        let mut plain = Vec::new();
        Request::DeleteMin.encode(&mut plain);
        assert_eq!(plain.len(), 6 + 1, "v5 DeleteMin is header + flags byte");
        let (_, _, no_trace, _) = Request::decode_traced(&plain).unwrap();
        assert_eq!(no_trace, None);
        // The traced variant costs exactly the 8-byte trace id more.
        let mut traced = Vec::new();
        Request::DeleteMin.encode_traced(&mut traced, WIRE_VERSION, Some(trace));
        assert_eq!(traced.len(), plain.len() + 8);
    }

    /// Every truncation of a traced v5 frame — cuts landing inside the
    /// envelope included — reports `Truncated`, never a partial decode and
    /// never garbage.
    #[test]
    fn v5_traced_frame_truncations_are_incomplete_at_every_offset() {
        let trace = Some(TraceContext { trace_id: u64::MAX });
        let echo = Some(TraceEcho {
            trace_id: u64::MAX,
            server_ns: u64::MAX,
        });
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut buf = Vec::new();
        Request::Insert {
            key: 0xAA,
            value: 0xBB,
        }
        .encode_traced(&mut buf, WIRE_VERSION, trace);
        frames.push(std::mem::take(&mut buf));
        Request::MetricsDump {
            include_events: true,
        }
        .encode_traced(&mut buf, WIRE_VERSION, trace);
        frames.push(std::mem::take(&mut buf));
        Response::Entry {
            key: 0xCC,
            value: 0xDD,
        }
        .encode_traced(&mut buf, WIRE_VERSION, echo);
        frames.push(std::mem::take(&mut buf));
        Response::Batch(vec![(1, 10), (2, 20)]).encode_traced(&mut buf, WIRE_VERSION, echo);
        frames.push(std::mem::take(&mut buf));
        Response::Stats(full_stats()).encode_traced(&mut buf, WIRE_VERSION, echo);
        frames.push(std::mem::take(&mut buf));
        for frame in frames {
            for cut in 0..frame.len() {
                let request_err = Request::decode_traced(&frame[..cut]).err();
                let response_err = Response::decode_traced(&frame[..cut]).err();
                for err in [request_err, response_err].into_iter().flatten() {
                    assert!(
                        err.is_incomplete(),
                        "cut at {cut}/{} should be Truncated, got {err:?}",
                        frame.len()
                    );
                }
            }
        }
    }

    /// Unassigned trace-flag bits are malformed in both directions — a v5
    /// peer never silently skips envelope fields it does not understand.
    #[test]
    fn garbage_trace_flags_are_malformed() {
        for flags in [0x02u8, 0x03, 0x80, 0xFE, 0xFF] {
            let mut buf = Vec::new();
            encode_frame(&mut buf, WIRE_VERSION, OP_DELETE_MIN, |out| {
                out.push(flags);
                // Enough bytes to satisfy any field the flags could promise.
                out.extend_from_slice(&[0; 16]);
            });
            assert!(
                matches!(
                    Request::decode_traced(&buf),
                    Err(WireError::MalformedPayload { .. })
                ),
                "request flags {flags:#04x} must be malformed"
            );
            let mut buf = Vec::new();
            encode_frame(&mut buf, WIRE_VERSION, OP_EMPTY, |out| {
                out.push(flags);
                out.extend_from_slice(&[0; 16]);
            });
            assert!(
                matches!(
                    Response::decode_traced(&buf),
                    Err(WireError::MalformedPayload { .. })
                ),
                "response flags {flags:#04x} must be malformed"
            );
        }
        // A sampled envelope whose promised trace fields are missing is
        // malformed too (the length prefix said the frame was complete).
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_DELETE_MIN, |out| {
            out.push(TRACE_FLAG_SAMPLED);
            out.extend_from_slice(&[0; 4]); // trace_id needs 8
        });
        assert!(matches!(
            Request::decode_traced(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
        let mut buf = Vec::new();
        encode_frame(&mut buf, WIRE_VERSION, OP_EMPTY, |out| {
            out.push(TRACE_FLAG_SAMPLED);
            out.extend_from_slice(&[0; 8]); // trace_id + server_ns need 16
        });
        assert!(matches!(
            Response::decode_traced(&buf),
            Err(WireError::MalformedPayload { .. })
        ));
    }

    /// v4 frames carry no envelope: their byte layout is unchanged from the
    /// previous release, a trace handed to a v4 encoder is dropped, and
    /// decode reports no trace — the negotiation story for a v4 client on a
    /// v5 server (and vice versa).
    #[test]
    fn v4_frames_are_untouched_by_the_trace_envelope() {
        let trace = Some(TraceContext { trace_id: 99 });
        let mut v4_plain = Vec::new();
        Request::DeleteMin.encode_versioned(&mut v4_plain, 4);
        assert_eq!(v4_plain.len(), 6, "the v4 layout has no envelope byte");
        let mut v4_traced = Vec::new();
        Request::DeleteMin.encode_traced(&mut v4_traced, 4, trace);
        assert_eq!(v4_plain, v4_traced, "pre-v5 encoders drop the trace");
        let (request, version, no_trace, _) = Request::decode_traced(&v4_plain).unwrap();
        assert_eq!(request, Request::DeleteMin);
        assert_eq!(version, 4);
        assert_eq!(no_trace, None);
        // The response a server would send back at the echoed version 4 is
        // envelope-free as well, even if the server tries to attach timing.
        let echo = Some(TraceEcho {
            trace_id: 99,
            server_ns: 1,
        });
        let mut v4_response = Vec::new();
        Response::Empty.encode_traced(&mut v4_response, 4, echo);
        assert_eq!(v4_response.len(), 6);
        let (response, version, no_echo, _) = Response::decode_traced(&v4_response).unwrap();
        assert_eq!(response, Response::Empty);
        assert_eq!(version, 4);
        assert_eq!(no_echo, None);
        // A v4 MetricsDump (the newest v4 opcode) still decodes at v4.
        let mut buf = Vec::new();
        Request::MetricsDump {
            include_events: true,
        }
        .encode_versioned(&mut buf, 4);
        let (decoded, version, _) = Request::decode_versioned(&buf).unwrap();
        assert_eq!(
            decoded,
            Request::MetricsDump {
                include_events: true
            }
        );
        assert_eq!(version, 4);
    }

    /// `Request::opcode` matches the byte actually emitted on the wire for
    /// every variant.
    #[test]
    fn request_opcode_matches_the_wire_byte() {
        let requests = [
            Request::Insert { key: 1, value: 2 },
            Request::DeleteMin,
            Request::DeleteMinBatch { max: 3 },
            Request::ApproxLen,
            Request::Stats,
            Request::Shutdown,
            Request::CreateQueue {
                name: "q".to_string(),
                backend: BackendSpec::default_multiqueue(),
                quota: QuotaSpec::unlimited(),
            },
            Request::DropQueue {
                name: "q".to_string(),
            },
            Request::ListQueues,
            Request::UseQueue {
                name: "q".to_string(),
            },
            Request::MetricsDump {
                include_events: false,
            },
        ];
        for request in requests {
            let mut buf = Vec::new();
            request.encode(&mut buf);
            assert_eq!(buf[5], request.opcode(), "{request:?}");
        }
    }

    /// Builds a valid queue name from a numeric seed (the proptest shim has
    /// no string strategies).
    fn name_from_seed(seed: u64) -> String {
        let len = 1 + (seed % MAX_NAME_LEN as u64) as usize;
        let alphabet = b"abcdefghij0123-_./";
        (0..len)
            .map(|i| alphabet[((seed >> (i % 56)) as usize + i) % alphabet.len()] as char)
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn requests_round_trip(key in 0u64..u64::MAX, value in 0u64..=u64::MAX, max in 0u32..=u32::MAX, pick in 0u8..11) {
            let name = name_from_seed(key ^ value);
            let request = match pick {
                0 => Request::Insert { key, value },
                1 => Request::DeleteMin,
                2 => Request::DeleteMinBatch { max },
                3 => Request::ApproxLen,
                4 => Request::Stats,
                5 => Request::Shutdown,
                6 => Request::CreateQueue {
                    name,
                    backend: BackendSpec::from_wire((key % 5) as u8, max, max / 2, max / 3)
                        .expect("codes 0..=4 are assigned"),
                    quota: QuotaSpec {
                        max_inflight: key,
                        max_sessions: value,
                        ops_per_sec: key ^ value,
                        burst: key.wrapping_add(value),
                        shed_key_bound: key.wrapping_mul(3),
                    },
                },
                7 => Request::DropQueue { name },
                8 => Request::ListQueues,
                9 => Request::UseQueue { name },
                _ => Request::MetricsDump { include_events: key % 2 == 0 },
            };
            let mut buf = Vec::new();
            request.encode(&mut buf);
            let (decoded, used) = Request::decode(&buf).expect("encoded frames decode");
            prop_assert_eq!(decoded, request);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn responses_round_trip(
            entries in proptest::collection::vec(0u64..=u64::MAX, 0..32),
            n in 0u64..=u64::MAX,
            pick in 0u8..13,
        ) {
            let pairs: Vec<(u64, u64)> = entries.iter().map(|&k| (k, k ^ 0xABCD)).collect();
            let response = match pick {
                0 => Response::Inserted,
                1 => Response::Entry { key: n, value: !n },
                2 => Response::Empty,
                3 => Response::Batch(pairs),
                4 => Response::Len(n),
                5 => Response::Stats(ServiceStats {
                    sessions: n,
                    totals: HandleStats {
                        inserts: n,
                        removals: n / 2,
                        failed_removals: n / 3,
                        empty_polls: n / 4,
                        contended_retries: n / 5,
                        refusals: n / 8,
                    },
                    active_lanes: n / 6,
                    max_lanes: n / 6 + 8,
                    resize_events: n / 7,
                    resize_epoch: n / 9,
                    queues: entries
                        .iter()
                        .take(4)
                        .map(|&k| QueueStats {
                            name: name_from_seed(k),
                            sessions: k,
                            totals: HandleStats {
                                inserts: k,
                                removals: k / 2,
                                failed_removals: k / 3,
                                empty_polls: k / 4,
                                contended_retries: k / 5,
                                refusals: k / 6,
                            },
                            approx_len: k / 7,
                        })
                        .collect(),
                }),
                6 => Response::ShuttingDown,
                7 => Response::QueueCreated,
                8 => Response::QueueDropped,
                9 => Response::QueueList(
                    entries
                        .iter()
                        .take(4)
                        .map(|&k| QueueListRow {
                            name: name_from_seed(k),
                            backend: name_from_seed(!k),
                            instantiated: k % 2 == 0,
                            sessions: k,
                            approx_len: k / 2,
                            refusals: k / 3,
                        })
                        .collect(),
                ),
                10 => Response::Using,
                11 => Response::MetricsText(format!("# dump {n}\nmq_ops_total {n}\n")),
                _ => Response::Error {
                    code: ErrorCode::from_u8(1 + (n % 9) as u8).expect("codes 1..=9 are assigned"),
                    detail: format!("n = {n}"),
                },
            };
            let mut buf = Vec::new();
            response.encode(&mut buf);
            let (decoded, used) = Response::decode(&buf).expect("encoded frames decode");
            prop_assert_eq!(decoded, response);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn arbitrary_bytes_never_panic_the_decoders(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
            // Totality: garbage in, error (or a frame) out — never a panic,
            // and on success the consumed length stays within the buffer.
            if let Ok((_, used)) = Request::decode(&bytes) {
                prop_assert!(used <= bytes.len());
            }
            if let Ok((_, used)) = Response::decode(&bytes) {
                prop_assert!(used <= bytes.len());
            }
        }

        #[test]
        fn every_truncation_of_a_valid_frame_is_incomplete(key in 0u64..100, cut_seed in 0u64..=u64::MAX) {
            let mut buf = Vec::new();
            Request::Insert { key, value: key }.encode(&mut buf);
            let cut = (cut_seed % buf.len() as u64) as usize;
            let err = Request::decode(&buf[..cut]).expect_err("prefix cannot be a whole frame");
            prop_assert!(err.is_incomplete(), "cut {cut}: {err:?}");
        }

        #[test]
        fn traced_frames_round_trip_and_truncate_cleanly(
            trace_id in 0u64..=u64::MAX,
            server_ns in 0u64..=u64::MAX,
            key in 0u64..1000,
            cut_seed in 0u64..=u64::MAX,
        ) {
            let mut buf = Vec::new();
            Request::Insert { key, value: !key }
                .encode_traced(&mut buf, WIRE_VERSION, Some(TraceContext { trace_id }));
            let (_, _, trace, used) = Request::decode_traced(&buf).expect("traced requests decode");
            prop_assert_eq!(trace, Some(TraceContext { trace_id }));
            prop_assert_eq!(used, buf.len());
            let cut = (cut_seed % buf.len() as u64) as usize;
            let err = Request::decode_traced(&buf[..cut]).expect_err("prefix cannot be a whole frame");
            prop_assert!(err.is_incomplete(), "cut {cut}: {err:?}");

            let mut buf = Vec::new();
            Response::Entry { key, value: key }
                .encode_traced(&mut buf, WIRE_VERSION, Some(TraceEcho { trace_id, server_ns }));
            let (_, _, echo, used) = Response::decode_traced(&buf).expect("traced responses decode");
            prop_assert_eq!(echo, Some(TraceEcho { trace_id, server_ns }));
            prop_assert_eq!(used, buf.len());
            let cut = (cut_seed % buf.len() as u64) as usize;
            let err = Response::decode_traced(&buf[..cut]).expect_err("prefix cannot be a whole frame");
            prop_assert!(err.is_incomplete(), "cut {cut}: {err:?}");
        }

        #[test]
        fn every_truncation_of_a_create_queue_frame_is_incomplete(seed in 0u64..=u64::MAX, cut_seed in 0u64..=u64::MAX) {
            let mut buf = Vec::new();
            Request::CreateQueue {
                name: name_from_seed(seed),
                backend: BackendSpec::from_wire((seed % 5) as u8, 8, 2, 1).unwrap(),
                quota: QuotaSpec::unlimited().with_max_inflight(seed),
            }
            .encode(&mut buf);
            let cut = (cut_seed % buf.len() as u64) as usize;
            let err = Request::decode(&buf[..cut]).expect_err("prefix cannot be a whole frame");
            prop_assert!(err.is_incomplete(), "cut {cut}: {err:?}");
        }
    }
}
