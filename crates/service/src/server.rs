//! The choice-wire server: a registry of named queues, one session per
//! connection.
//!
//! # Sessions and bindings
//!
//! The in-process API is organised per *thread*: you [`register`] a session
//! and every operation flows through the returned handle. The server maps
//! that structure onto the network one-to-one — each accepted TCP connection
//! binds a [`QueueBinding`] on one named queue of the shared
//! [`QueueRegistry`] and registers its own session handle on that queue's
//! backend. The session API's guarantees come along for free: a
//! per-connection deterministic RNG stream, sticky lanes / insert batching /
//! instrumentation selected by the server-wide [`HandlePolicy`], and
//! per-connection [`HandleStats`](choice_pq::HandleStats) that roll up into
//! per-queue aggregates.
//!
//! A connection starts bound to the [`DEFAULT_QUEUE`] (when it exists — a
//! [`PqServer::spawn`] server always installs one, which is exactly the v2
//! single-queue behaviour) and may rebind with `UseQueue`. Every session
//! operation passes the binding's admission gate first: in-flight quota,
//! token-bucket rate with class-aware shedding, drop tombstones. Refusals
//! are typed wire errors and first-class counters, never silent drops.
//!
//! # Backpressure: the credit window
//!
//! Clients pipeline: they may send up to their credit window of requests
//! before reading a response. The server mirrors the window on the response
//! side — responses accumulate in the connection's write buffer and are
//! flushed either when the window fills or when the request stream pauses —
//! so one syscall carries up to a window of responses, and a client that
//! stops reading eventually blocks the connection's writes (TCP does the
//! rest) without unbounded buffering on either side. The window is
//! advertised nowhere and negotiated never: both sides simply bound
//! themselves, which composes safely for any pair of limits.
//!
//! # Version negotiation
//!
//! Every frame carries its own version byte; the server answers each request
//! at the version the request arrived with. A v2 client therefore speaks to
//! a v3 server completely unchanged: it is bound to the default queue, its
//! Stats replies use the legacy 9-counter layout, and v3 refusal codes
//! collapse to `Unavailable` on its frames.
//!
//! # Shutdown
//!
//! A [`Request::Shutdown`] frame (or [`PqServer::shutdown`] from the owning
//! process) flips a shared flag. The accept loop notices within one poll
//! interval; connection handlers notice at their next read timeout or
//! request boundary, answer in-flight work, and close. Joining the server
//! then observes every session's final counters.
//!
//! [`register`]: choice_pq::SharedPq::register

use std::io::{self, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use choice_obs::{EventKind, Gauge, Histogram, ObsHub, SpanStage, SPAN_STAGES};
use choice_pq::{DynSharedPq, HandlePolicy, Key, PqHandle};
use choice_registry::{
    QueueBinding, QueueRegistry, QuotaSpec, Refusal, RegistryError, DEFAULT_QUEUE,
};
use parking_lot::Mutex;

use crate::protocol::{
    ErrorCode, QueueListRow, QueueStats, Request, Response, ServiceStats, TraceEcho, WireError,
    MAX_BATCH, MIN_WIRE_VERSION, WIRE_VERSION,
};

/// Server-side configuration: the per-session policy and the service limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Session policy applied to every connection's handle (sticky lanes,
    /// insert batching, instrumentation — see [`HandlePolicy`]). Backends
    /// without the corresponding machinery ignore the knobs that do not
    /// apply.
    pub policy: HandlePolicy,
    /// Upper bound the server imposes on `DeleteMinBatch` sizes (requests
    /// asking for more are clamped, not refused). Also bounded by the wire
    /// limit [`MAX_BATCH`].
    pub max_batch: u32,
    /// Response credit window: how many responses may accumulate in a
    /// connection's write buffer before a flush is forced. Mirrors the
    /// client's pipelining window; `1` degenerates to flush-per-response.
    pub credit_window: usize,
    /// Fault injection for the panic-recovery path: an `Insert` of exactly
    /// this key panics the connection handler (before admission, so no
    /// counters move). The panic is caught, the flight recorder dumps, and
    /// only that connection dies. `None` (the default) disables the trap.
    pub panic_on_key: Option<Key>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            policy: HandlePolicy::default(),
            max_batch: MAX_BATCH,
            credit_window: 64,
            panic_on_key: None,
        }
    }
}

impl ServerConfig {
    /// Sets the per-session [`HandlePolicy`].
    pub fn with_policy(mut self, policy: HandlePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the server-side batch clamp.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn with_max_batch(mut self, max_batch: u32) -> Self {
        assert!(max_batch > 0, "max batch must be positive");
        self.max_batch = max_batch.min(MAX_BATCH);
        self
    }

    /// Sets the response credit window.
    ///
    /// # Panics
    ///
    /// Panics if `credit_window == 0`.
    pub fn with_credit_window(mut self, credit_window: usize) -> Self {
        assert!(credit_window > 0, "credit window must be positive");
        self.credit_window = credit_window;
        self
    }

    /// Arms the panic fault-injection trap on `key` (see
    /// [`panic_on_key`](ServerConfig::panic_on_key)).
    pub fn with_panic_on_key(mut self, key: Key) -> Self {
        self.panic_on_key = Some(key);
        self
    }
}

/// How often blocked accept/read calls re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Shared across the accept loop and every connection handler.
struct Shared {
    registry: Arc<QueueRegistry>,
    config: ServerConfig,
    /// The telemetry hub every layer under this server reports into: the
    /// registry's admission gates (installed via `set_obs` at spawn), the
    /// flight recorder the session events and panic dumps land in, and the
    /// `MetricsDump` exposition endpoint.
    obs: Arc<ObsHub>,
    /// When this server started, for the `uptime_seconds` gauge.
    started: Instant,
    /// `uptime_seconds` gauge, refreshed on every `MetricsDump` (gauges are
    /// delta-based, so the refresh adds the seconds elapsed since the last
    /// reported value).
    uptime: Arc<Gauge>,
    /// Per-stage request-processing histograms, `svc_stage_ns{stage=...}`,
    /// pre-resolved at spawn so traced requests never touch the registry's
    /// name map. Indexed by [`SpanStage`].
    stage_ns: [Arc<Histogram>; SPAN_STAGES],
    shutdown: AtomicBool,
    sessions_opened: AtomicU64,
    /// Raw streams of the *live* connections (removed on handler exit).
    /// Shutdown closes them so a handler blocked in a write — a peer that
    /// pipelines but never reads — is unstuck immediately; without this,
    /// `join` could wait forever on a stalled connection.
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl Shared {
    /// Service-wide aggregate: the per-queue snapshots merged over the
    /// retired (dropped-queue) roll-up and the unbound-refusal counter, so
    /// totals stay monotonic across queue drops and session churn.
    fn aggregate_stats(&self) -> ServiceStats {
        let mut totals = self.registry.retired_totals();
        totals.refusals = totals
            .refusals
            .saturating_add(self.registry.unbound_refusals());
        // The lane-table snapshot (summed over the instantiated queues)
        // rides along so remote operators can watch elastic backends resize
        // themselves under their load.
        let mut active_lanes = 0u64;
        let mut max_lanes = 0u64;
        let mut resize_events = 0u64;
        let mut resize_epoch = 0u64;
        let mut queues = Vec::new();
        for snap in self.registry.stats() {
            totals.merge(&snap.totals);
            if let Some(topology) = &snap.topology {
                active_lanes += topology.active_lanes as u64;
                max_lanes += topology.max_lanes as u64;
                resize_events += topology.resize_events();
                resize_epoch += topology.resize_epoch;
            }
            queues.push(QueueStats {
                name: snap.name,
                sessions: snap.sessions_total,
                totals: snap.totals,
                approx_len: snap.approx_len,
            });
        }
        ServiceStats {
            sessions: self.sessions_opened.load(Ordering::Relaxed),
            totals,
            active_lanes,
            max_lanes,
            resize_events,
            resize_epoch,
            queues,
        }
    }

    /// Brings the `uptime_seconds` gauge up to date (gauges are delta-only,
    /// so the refresh adds the seconds elapsed since the last report).
    fn refresh_uptime(&self) {
        let now = self.started.elapsed().as_secs() as i64;
        self.uptime.add(now - self.uptime.value());
    }

    /// Folds one traced request's stage timings into the span ring and the
    /// per-stage histograms.
    fn record_span(&self, trace_id: u64, opcode: u8, stage_ns: [u64; SPAN_STAGES]) {
        self.obs
            .spans()
            .record(trace_id, opcode, self.obs.recorder().now_ns(), stage_ns);
        for (histogram, ns) in self.stage_ns.iter().zip(stage_ns) {
            histogram.record(ns);
        }
    }

    fn queue_list(&self) -> Response {
        Response::QueueList(
            self.registry
                .stats()
                .into_iter()
                .map(|snap| QueueListRow {
                    name: snap.name,
                    backend: snap.backend,
                    instantiated: snap.instantiated,
                    sessions: snap.sessions_total,
                    approx_len: snap.approx_len,
                    refusals: snap.totals.refusals,
                })
                .collect(),
        )
    }
}

/// Maps an admission refusal to its typed wire error. Tombstone refusals
/// are re-attributed to the registry's unbound counter: the dropped entry's
/// own counters were already snapshotted into the retired roll-up at drop
/// time, so counting there would lose them from service totals.
fn refusal_error(registry: &QueueRegistry, refusal: Refusal) -> Response {
    if matches!(refusal, Refusal::Dropped) {
        registry.note_unbound_refusal();
    }
    let code = match refusal {
        Refusal::Rate { .. } | Refusal::InFlight => ErrorCode::QuotaExceeded,
        Refusal::Dropped => ErrorCode::QueueDropped,
    };
    Response::Error {
        code,
        detail: refusal.to_string(),
    }
}

/// Maps a registry lifecycle error to its typed wire error.
fn registry_error(error: RegistryError) -> Response {
    let code = match &error {
        RegistryError::BadName(_) => ErrorCode::BadQueueName,
        RegistryError::Exists(_) => ErrorCode::QueueExists,
        RegistryError::NotFound(_) => ErrorCode::NoSuchQueue,
        RegistryError::Full { .. } => ErrorCode::RegistryFull,
        RegistryError::SessionLimit { .. } => ErrorCode::QuotaExceeded,
    };
    Response::Error {
        code,
        detail: error.to_string(),
    }
}

/// The refusal for session operations on a connection with no bound queue
/// (the default queue does not exist, or the bound queue was dropped and the
/// connection has not rebound).
fn unbound_error() -> Response {
    Response::Error {
        code: ErrorCode::NoSuchQueue,
        detail: "no queue is bound to this session (bind one with UseQueue)".to_string(),
    }
}

/// A running choice-wire server.
///
/// Bind with [`PqServer::spawn`] (single queue, v2-compatible) or
/// [`PqServer::spawn_registry`] (multi-tenant); the accept loop and every
/// connection run on background threads until a shutdown (wire frame or
/// [`shutdown`](PqServer::shutdown)), after which [`join`](PqServer::join)
/// — or drop — reaps them. Queues stay owned by the registry (and any
/// `Arc`s the caller retained), so their contents survive the server and
/// can be inspected after `join`.
pub struct PqServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl PqServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving `queue` as the sole, unlimited [`DEFAULT_QUEUE`] of a fresh
    /// registry — the exact observable behaviour of the old single-queue
    /// server, including for v2 clients.
    pub fn spawn(
        queue: Arc<dyn DynSharedPq<u64>>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<PqServer> {
        let registry = Arc::new(QueueRegistry::default());
        registry
            .install(DEFAULT_QUEUE, queue, QuotaSpec::unlimited())
            .expect("fresh registry accepts the default queue");
        Self::spawn_registry(registry, addr, config)
    }

    /// Binds `addr` and starts serving every queue of `registry`.
    /// Connections start bound to the registry's [`DEFAULT_QUEUE`] if one
    /// exists (create or install it to serve v2 clients); otherwise they
    /// start unbound and must `UseQueue` before session operations.
    pub fn spawn_registry(
        registry: Arc<QueueRegistry>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<PqServer> {
        Self::spawn_registry_with_obs(registry, addr, config, ObsHub::new())
    }

    /// Like [`spawn_registry`](PqServer::spawn_registry), but reports into a
    /// caller-supplied [`ObsHub`] (a shared hub across several servers, a
    /// larger flight-recorder ring, or a deterministic clock in tests). The
    /// hub is also offered to the registry via
    /// [`set_obs`](QueueRegistry::set_obs); if the registry already carries
    /// one, its bindings keep the hub they resolved first.
    pub fn spawn_registry_with_obs(
        registry: Arc<QueueRegistry>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        obs: Arc<ObsHub>,
    ) -> io::Result<PqServer> {
        assert!(config.credit_window > 0, "credit window must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        registry.set_obs(Arc::clone(&obs));
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // `build_info` is the standard Prometheus idiom: a constant-1 gauge
        // whose labels carry the identifying strings. The add-of-difference
        // keeps it at 1 even when several servers share one hub.
        let wire_version = WIRE_VERSION.to_string();
        let build_info = obs.metrics().gauge(
            "build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("wire_version", &wire_version),
                ("commit", option_env!("GIT_COMMIT").unwrap_or("unknown")),
            ],
        );
        build_info.add(1 - build_info.value());
        let uptime = obs.metrics().gauge("uptime_seconds", &[]);
        let stage_ns = SpanStage::ALL.map(|stage| {
            obs.metrics()
                .histogram("svc_stage_ns", &[("stage", stage.name())])
        });
        let shared = Arc::new(Shared {
            registry,
            config,
            obs,
            started: Instant::now(),
            uptime,
            stage_ns,
            shutdown: AtomicBool::new(false),
            sessions_opened: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("choice-wire-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(PqServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The queue registry this server serves (shared — lifecycle calls made
    /// here are visible to connected clients and vice versa).
    pub fn registry(&self) -> &Arc<QueueRegistry> {
        &self.shared.registry
    }

    /// The telemetry hub this server reports into: metrics from every
    /// layer, the flight recorder, and the `MetricsDump` exposition text.
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.shared.obs
    }

    /// Whether a shutdown (local or wire-initiated) has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without waiting: the accept loop stops within one
    /// poll interval and connections close at their next request boundary.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Close the live sockets too: a handler blocked writing to a peer
        // that stopped reading would otherwise never observe the flag, and
        // `join` would hang on it. Closed-socket errors end those handlers
        // promptly; handlers idle in a read notice within one poll interval
        // either way.
        for (_, conn) in self.shared.conns.lock().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// The aggregated service statistics (live sessions contribute the
    /// counters of their most recently completed request).
    pub fn stats(&self) -> ServiceStats {
        self.shared.aggregate_stats()
    }

    /// Shuts down and joins every server thread, returning the final
    /// aggregated statistics.
    pub fn join(mut self) -> ServiceStats {
        self.join_inner();
        self.shared.aggregate_stats()
    }

    fn join_inner(&mut self) {
        self.shutdown();
        if let Some(accept) = self.accept_thread.take() {
            let connections = accept.join().expect("accept loop panicked");
            for conn in connections {
                let _ = conn.join();
            }
        }
    }
}

impl Drop for PqServer {
    fn drop(&mut self) {
        self.join_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("choice-wire-conn".into())
                    .spawn(move || {
                        // Connection-level I/O errors (peer vanished, reset)
                        // close that connection only; the queues and the
                        // other sessions are unaffected.
                        let _ = serve_connection(stream, conn_shared);
                    });
                match handle {
                    Ok(handle) => connections.push(handle),
                    Err(_) => continue, // thread exhaustion: drop the conn
                }
                // Opportunistically reap finished handlers so a long-lived
                // server does not accumulate dead JoinHandles.
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    connections
}

/// Per-request stage stopwatch for traced (v5, sampled) requests: each
/// [`mark`](SpanTimer::mark) charges the time since the previous mark to a
/// stage. The recv stage is seeded from the read syscall that delivered the
/// frame's bytes (attributed to the first frame decoded from that chunk;
/// later frames of the same chunk cost no read and get 0), decode is
/// charged by the frame loop, admit and queue-op inside the session arms,
/// and flush after the response bytes are written.
struct SpanTimer {
    trace_id: u64,
    opcode: u8,
    last: Instant,
    stage_ns: [u64; SPAN_STAGES],
}

impl SpanTimer {
    fn new(trace_id: u64, opcode: u8, recv_ns: u64, started: Instant) -> Self {
        let mut stage_ns = [0u64; SPAN_STAGES];
        stage_ns[SpanStage::Recv as usize] = recv_ns;
        Self {
            trace_id,
            opcode,
            last: started,
            stage_ns,
        }
    }

    /// Charges the time since the previous mark to `stage` (cumulative, so
    /// a stage may be marked more than once).
    fn mark(&mut self, stage: SpanStage) {
        let now = Instant::now();
        self.stage_ns[stage as usize] += now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
    }

    /// The processing time echoed to the client: decode + admit + queue-op
    /// (recv can include pipeline idle; flush has not happened yet).
    fn server_ns(&self) -> u64 {
        self.stage_ns[SpanStage::Decode as usize]
            .saturating_add(self.stage_ns[SpanStage::Admit as usize])
            .saturating_add(self.stage_ns[SpanStage::QueueOp as usize])
    }

    fn echo(&self) -> TraceEcho {
        TraceEcho {
            trace_id: self.trace_id,
            server_ns: self.server_ns(),
        }
    }
}

/// Serves one connection: a binding + session on the bound queue, a buffered
/// framing loop, and the credit-window flush policy.
///
/// The receive path reads whole chunks into a growable buffer and decodes
/// every complete frame it holds before reading again — a partial frame at
/// the buffer's tail simply waits for the next chunk (never discarded, so a
/// read timeout can never desynchronise the stream), and one `read` syscall
/// typically carries a whole pipeline window of requests.
///
/// The outer loop exists for `UseQueue`: a successful rebind finishes the
/// current session (rolling its counters into its queue), then re-enters
/// with the new binding. Everything connection-scoped (buffers, the socket,
/// the credit counter) lives outside it and survives rebinds.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // Reads poll so the handler notices shutdown while idle.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = stream.try_clone()?;

    let conn_id = shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
    shared.conns.lock().push((conn_id, stream.try_clone()?));
    let mut writer = BufWriter::new(stream);

    let mut inbuf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    let mut out_scratch = Vec::new();
    let mut batch_buf: Vec<(Key, u64)> = Vec::new();
    // Responses written since the last flush; the credit window bounds it.
    let mut unflushed = 0usize;
    // Duration of the read syscall that delivered the newest chunk,
    // attributed as the recv stage of the first frame decoded from it.
    let mut pending_recv_ns: u64 = 0;
    // The binding the next `'bind` iteration starts from: pre-bound by a
    // successful UseQueue, or named (the initial default-queue bind).
    let mut next_binding: Option<QueueBinding> = None;
    let mut next_name: Option<String> = Some(DEFAULT_QUEUE.to_string());

    let recorder = Arc::clone(shared.obs.recorder());
    recorder.record(EventKind::SessionOpen, "", [conn_id, 0, 0]);
    // While this thread serves, panics dump the scoped flight recorder and
    // span ring (via the process-wide hook) before unwinding; the catch
    // below then confines the damage to this connection — its binding and
    // session drop normally, rolling counters into the queue, and the
    // server keeps serving.
    let scope = recorder.panic_scope();
    let span_scope = shared.obs.spans().panic_scope();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| 'bind: loop {
        let binding: Option<QueueBinding> = match next_binding.take() {
            Some(binding) => Some(binding),
            // A failed initial bind (no default queue) leaves the session
            // unbound: session ops are refused until a UseQueue lands.
            None => next_name
                .take()
                .and_then(|name| shared.registry.bind(&name).ok()),
        };
        let mut session = binding.as_ref().map(|b| b.register(shared.config.policy));

        let inner = 'conn: loop {
            // Decode and execute every complete frame currently buffered.
            let mut consumed = 0usize;
            while consumed < inbuf.len() {
                let decode_started = Instant::now();
                let (request, version, trace) = match Request::decode_traced(&inbuf[consumed..]) {
                    Ok((request, version, trace, used)) => {
                        consumed += used;
                        (request, version, trace)
                    }
                    Err(e) if e.is_incomplete() => break, // tail frame: read more
                    Err(wire_error) => {
                        // Protocol violations are answered (best-effort) and
                        // then the connection is closed: after a framing
                        // error the byte stream cannot re-synchronise. The
                        // reply is framed at the oldest supported version so
                        // any well-formed peer can decode it.
                        let response = Response::Error {
                            code: ErrorCode::Protocol,
                            detail: wire_error.to_string(),
                        };
                        crate::protocol::write_response(
                            &mut writer,
                            &response,
                            &mut out_scratch,
                            MIN_WIRE_VERSION,
                        )?;
                        writer.flush()?;
                        break 'conn Err(io::Error::new(io::ErrorKind::InvalidData, wire_error));
                    }
                };
                // A sampled v5 request gets a stage stopwatch; everything
                // else pays exactly one `Option` branch per mark site.
                let mut timer = trace.map(|t| {
                    let recv_ns = std::mem::take(&mut pending_recv_ns);
                    let mut timer =
                        SpanTimer::new(t.trace_id, request.opcode(), recv_ns, decode_started);
                    timer.mark(SpanStage::Decode);
                    timer
                });
                let shutting_down = shared.shutdown.load(Ordering::SeqCst);
                let mut is_shutdown_ack = false;
                let mut rebind: Option<QueueBinding> = None;

                // `None` means the hot batched path already wrote its frame.
                let response: Option<Response> = if shutting_down
                    && !matches!(request, Request::Shutdown | Request::Stats)
                {
                    Some(Response::Error {
                        code: ErrorCode::Unavailable,
                        detail: "server is shutting down".to_string(),
                    })
                } else {
                    match &request {
                        Request::DeleteMinBatch { max } => {
                            match (binding.as_ref(), session.as_mut()) {
                                (Some(b), Some(sess)) => match b.admit_removal() {
                                    Ok(()) => {
                                        if let Some(t) = timer.as_mut() {
                                            t.mark(SpanStage::Admit);
                                        }
                                        // The hot batched path keeps its
                                        // entries vector: drain into it,
                                        // encode from the borrow, reuse the
                                        // allocation next request.
                                        let clamped = (*max).min(shared.config.max_batch) as usize;
                                        batch_buf.clear();
                                        sess.delete_min_batch_into(clamped, &mut batch_buf);
                                        b.note_removed(batch_buf.len() as u64);
                                        if let Some(t) = timer.as_mut() {
                                            t.mark(SpanStage::QueueOp);
                                        }
                                        out_scratch.clear();
                                        crate::protocol::encode_batch_response(
                                            &mut out_scratch,
                                            &batch_buf,
                                            version,
                                            timer.as_ref().map(SpanTimer::echo),
                                        );
                                        writer.write_all(&out_scratch)?;
                                        None
                                    }
                                    Err(refusal) => Some(refusal_error(&shared.registry, refusal)),
                                },
                                _ => {
                                    shared.registry.note_unbound_refusal();
                                    Some(unbound_error())
                                }
                            }
                        }
                        Request::Insert { key, value } => {
                            if shared.config.panic_on_key == Some(*key) {
                                panic!("fault injection: insert of key {key} trips the panic trap");
                            }
                            Some(match (binding.as_ref(), session.as_mut()) {
                                (Some(b), Some(sess)) => {
                                    if *key == Key::MAX {
                                        // The in-process API panics on the
                                        // reserved key (programmer error); a
                                        // remote peer gets a refusal frame,
                                        // counted against its queue.
                                        b.note_external_refusal();
                                        Response::Error {
                                            code: ErrorCode::ReservedKey,
                                            detail: "key u64::MAX is reserved as the empty-lane sentinel"
                                                .to_string(),
                                        }
                                    } else {
                                        match b.admit_insert(*key) {
                                            Ok(()) => {
                                                if let Some(t) = timer.as_mut() {
                                                    t.mark(SpanStage::Admit);
                                                }
                                                sess.insert(*key, *value);
                                                if let Some(t) = timer.as_mut() {
                                                    t.mark(SpanStage::QueueOp);
                                                }
                                                Response::Inserted
                                            }
                                            Err(refusal) => {
                                                refusal_error(&shared.registry, refusal)
                                            }
                                        }
                                    }
                                }
                                _ => {
                                    shared.registry.note_unbound_refusal();
                                    unbound_error()
                                }
                            })
                        }
                        Request::DeleteMin => Some(match (binding.as_ref(), session.as_mut()) {
                            (Some(b), Some(sess)) => match b.admit_removal() {
                                Ok(()) => {
                                    if let Some(t) = timer.as_mut() {
                                        t.mark(SpanStage::Admit);
                                    }
                                    let removed = sess.delete_min();
                                    if let Some(t) = timer.as_mut() {
                                        t.mark(SpanStage::QueueOp);
                                    }
                                    match removed {
                                        Some((key, value)) => {
                                            b.note_removed(1);
                                            Response::Entry { key, value }
                                        }
                                        None => Response::Empty,
                                    }
                                }
                                Err(refusal) => refusal_error(&shared.registry, refusal),
                            },
                            _ => {
                                shared.registry.note_unbound_refusal();
                                unbound_error()
                            }
                        }),
                        Request::ApproxLen => Some(match binding.as_ref() {
                            // A diagnostic read: not charged against the
                            // rate quota, answered per-queue.
                            Some(b) => Response::Len(b.queue().approx_len_dyn() as u64),
                            None => {
                                shared.registry.note_unbound_refusal();
                                unbound_error()
                            }
                        }),
                        Request::Stats => Some(Response::Stats(shared.aggregate_stats())),
                        Request::Shutdown => {
                            shared.shutdown.store(true, Ordering::SeqCst);
                            is_shutdown_ack = true;
                            Some(Response::ShuttingDown)
                        }
                        Request::CreateQueue {
                            name,
                            backend,
                            quota,
                        } => Some(match shared.registry.create(name, *backend, *quota) {
                            Ok(()) => Response::QueueCreated,
                            Err(e) => registry_error(e),
                        }),
                        Request::DropQueue { name } => {
                            Some(match shared.registry.drop_queue(name) {
                                Ok(()) => Response::QueueDropped,
                                Err(e) => registry_error(e),
                            })
                        }
                        Request::ListQueues => Some(shared.queue_list()),
                        Request::MetricsDump { include_events } => {
                            // A diagnostic read like ApproxLen: answered for
                            // unbound sessions too and charged to no quota.
                            shared.refresh_uptime();
                            Some(Response::MetricsText(
                                shared.obs.render_dump(*include_events),
                            ))
                        }
                        Request::UseQueue { name } => Some(match shared.registry.bind(name) {
                            Ok(new_binding) => {
                                rebind = Some(new_binding);
                                Response::Using
                            }
                            // A failed rebind keeps the current binding.
                            Err(e) => registry_error(e),
                        }),
                    }
                };
                if let Some(response) = &response {
                    // Everything since the last mark (queue work for session
                    // ops, the whole handling for diagnostic ops) is queue-op
                    // time; marks are cumulative so this never double-counts.
                    if let Some(t) = timer.as_mut() {
                        t.mark(SpanStage::QueueOp);
                    }
                    out_scratch.clear();
                    response.encode_traced(
                        &mut out_scratch,
                        version,
                        timer.as_ref().map(SpanTimer::echo),
                    );
                    writer.write_all(&out_scratch)?;
                }
                unflushed += 1;
                // Publish this session's counters after every request so
                // Stats (served by any connection) sees near-current
                // per-queue totals. The slot mutex is uncontended except
                // during an actual aggregation.
                if let (Some(b), Some(sess)) = (binding.as_ref(), session.as_ref()) {
                    b.publish_stats(sess.stats());
                }
                if is_shutdown_ack || unflushed >= shared.config.credit_window {
                    writer.flush()?;
                    unflushed = 0;
                }
                // The traced frame is finished: whatever flushing happened
                // this round is its flush stage, and the completed span goes
                // to the ring + per-stage histograms. Any leftover read time
                // is dropped too — it belongs to this chunk, not the next
                // traced frame.
                if let Some(mut t) = timer.take() {
                    t.mark(SpanStage::Flush);
                    shared.record_span(t.trace_id, t.opcode, t.stage_ns);
                }
                pending_recv_ns = 0;
                if is_shutdown_ack {
                    break 'conn Ok(());
                }
                if rebind.is_some() {
                    // Hand the already-claimed binding to the next 'bind
                    // iteration; dropping the current session and binding
                    // rolls their counters into the old queue.
                    next_binding = rebind;
                    inbuf.drain(..consumed);
                    writer.flush()?;
                    unflushed = 0;
                    continue 'bind;
                }
            }
            inbuf.drain(..consumed);

            // The buffered requests are answered; the stream is about to
            // block, which ends the credit round — flush.
            if unflushed > 0 {
                writer.flush()?;
                unflushed = 0;
            }
            let read_started = Instant::now();
            match reader.read(&mut chunk) {
                Ok(0) => {
                    break 'conn if inbuf.is_empty() {
                        Ok(()) // clean disconnect at a frame boundary
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            WireError::Truncated { needed: 1 },
                        ))
                    };
                }
                Ok(n) => {
                    pending_recv_ns = read_started.elapsed().as_nanos() as u64;
                    inbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Idle (possibly mid-frame): nothing was consumed,
                    // nothing is lost. Just check for shutdown and poll
                    // again.
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break 'conn Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => break 'conn Err(e),
            }
        };
        // The session drops here, flushing any policy-buffered inserts back
        // to the shared queue; dropping the binding then rolls the slot's
        // final counters (published after every request above) into the
        // queue's closed accumulator.
        break 'bind inner;
    }));
    drop(span_scope);
    drop(scope);
    recorder.record(EventKind::SessionClose, "", [conn_id, 0, 0]);
    shared.conns.lock().retain(|(id, _)| *id != conn_id);
    match result {
        Ok(result) => result,
        Err(_) => Err(io::Error::other(
            "connection handler panicked (flight-recorder dump captured)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame_bytes;
    use choice_pq::{MultiQueue, MultiQueueConfig};
    use choice_registry::BackendSpec;

    fn spawn_server(config: ServerConfig) -> PqServer {
        let queue: Arc<dyn DynSharedPq<u64>> = Arc::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(4).with_seed(9),
        ));
        PqServer::spawn(queue, "127.0.0.1:0", config).expect("bind ephemeral")
    }

    fn request_reply(stream: &mut TcpStream, request: &Request) -> Response {
        let mut wire = Vec::new();
        request.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(stream, &mut frame).unwrap());
        Response::decode(&frame).unwrap().0
    }

    /// Raw-socket round trip without the client type: the server speaks the
    /// protocol to anything that frames correctly.
    #[test]
    fn raw_socket_insert_and_delete_roundtrip() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        Request::Insert { key: 5, value: 50 }.encode(&mut wire);
        Request::DeleteMin.encode(&mut wire);
        Request::DeleteMin.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::Inserted);
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(
            Response::decode(&frame).unwrap().0,
            Response::Entry { key: 5, value: 50 }
        );
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::Empty);
        drop(stream);
        let stats = server.join();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.totals.inserts, 1);
        assert_eq!(stats.totals.removals, 1);
        assert_eq!(stats.totals.failed_removals, 1);
        // The v3 aggregate carries the per-queue breakdown: everything
        // happened on the default queue.
        assert_eq!(stats.queues.len(), 1);
        assert_eq!(stats.queues[0].name, DEFAULT_QUEUE);
        assert_eq!(stats.queues[0].totals.inserts, 1);
    }

    #[test]
    fn reserved_key_is_refused_not_a_panic() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        Request::Insert {
            key: Key::MAX,
            value: 0,
        }
        .encode(&mut wire);
        Request::ApproxLen.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        match Response::decode(&frame).unwrap().0 {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::ReservedKey),
            other => panic!("expected a refusal, got {other:?}"),
        }
        // The connection survives a refusal (only framing errors close it).
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::Len(0));
        drop(stream);
        // Refusals are first-class counters, attributed to the queue.
        let stats = server.join();
        assert_eq!(stats.totals.refusals, 1);
        assert_eq!(stats.queues[0].totals.refusals, 1);
    }

    #[test]
    fn garbage_bytes_get_a_protocol_error_then_a_close() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A syntactically valid length prefix followed by a bad version.
        let mut garbage = 2u32.to_le_bytes().to_vec();
        garbage.extend_from_slice(&[0x42, 0x01]);
        stream.write_all(&garbage).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        match Response::decode(&frame).unwrap().0 {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("expected a protocol error, got {other:?}"),
        }
        // ...and then EOF: the server closed the poisoned stream.
        assert!(!read_frame_bytes(&mut stream, &mut frame).unwrap());
        // The server itself is still alive for new, well-behaved peers.
        let mut fresh = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        Request::ApproxLen.encode(&mut wire);
        fresh.write_all(&wire).unwrap();
        assert!(read_frame_bytes(&mut fresh, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::Len(0));
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = spawn_server(ServerConfig::default());
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        Request::Shutdown.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::ShuttingDown);
        assert!(server.is_shutting_down());
        server.join();
        // The port is released: a fresh connect is refused (or immediately
        // reset); either way no frames flow.
        assert!(
            TcpStream::connect(addr).is_err()
                || read_frame_bytes(&mut TcpStream::connect(addr).unwrap(), &mut frame)
                    .map(|more| !more)
                    .unwrap_or(true)
        );
    }

    #[test]
    fn batch_requests_are_clamped_to_the_server_limit() {
        let server = spawn_server(ServerConfig::default().with_max_batch(4));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        for k in 0..16u64 {
            Request::Insert { key: k, value: k }.encode(&mut wire);
        }
        Request::DeleteMinBatch { max: u32::MAX }.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        for _ in 0..16 {
            assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
            assert_eq!(Response::decode(&frame).unwrap().0, Response::Inserted);
        }
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        match Response::decode(&frame).unwrap().0 {
            Response::Batch(entries) => {
                assert!(
                    (1..=4).contains(&entries.len()),
                    "clamp to 4, got {}",
                    entries.len()
                );
                // Within one batch keys come off one lane in ascending order.
                assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
            }
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn stats_report_the_elastic_lane_topology_over_the_wire() {
        use choice_pq::ElasticPolicy;
        let queue = Arc::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(16)
                .with_seed(4)
                .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
        ));
        let erased: Arc<dyn DynSharedPq<u64>> = Arc::clone(&queue) as _;
        let server = PqServer::spawn(erased, "127.0.0.1:0", ServerConfig::default()).expect("bind");
        queue.resize_active(8);
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        match request_reply(&mut stream, &Request::Stats) {
            Response::Stats(stats) => {
                assert_eq!(stats.active_lanes, 8);
                assert_eq!(stats.max_lanes, 16);
                assert!(stats.resize_events >= 1);
                assert!(
                    stats.resize_epoch >= 1,
                    "the committed resize bumps the epoch over the wire"
                );
            }
            other => panic!("expected stats, got {other:?}"),
        }
        drop(stream);
        let final_stats = server.join();
        assert_eq!(final_stats.max_lanes, 16);
    }

    /// The full queue lifecycle over raw sockets: create a named queue,
    /// rebind to it, operate, list, observe per-queue stats, drop it, and
    /// watch the tombstone refusal land on the still-bound session.
    #[test]
    fn named_queue_lifecycle_over_the_wire() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Create a coarse-heap tenant queue with an in-flight quota of 2.
        let create = Request::CreateQueue {
            name: "tenant/a".to_string(),
            backend: BackendSpec::CoarseHeap,
            quota: QuotaSpec::unlimited().with_max_inflight(2),
        };
        assert_eq!(request_reply(&mut stream, &create), Response::QueueCreated);
        // Creating it again is a typed refusal.
        match request_reply(&mut stream, &create) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::QueueExists),
            other => panic!("expected QueueExists, got {other:?}"),
        }
        // Rebind and operate on the new queue.
        assert_eq!(
            request_reply(
                &mut stream,
                &Request::UseQueue {
                    name: "tenant/a".to_string()
                }
            ),
            Response::Using
        );
        for key in [3u64, 1] {
            assert_eq!(
                request_reply(&mut stream, &Request::Insert { key, value: key }),
                Response::Inserted
            );
        }
        // The third insert trips the in-flight quota.
        match request_reply(&mut stream, &Request::Insert { key: 9, value: 9 }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::QuotaExceeded),
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // ApproxLen is now per-queue: the bound tenant queue holds 2.
        assert_eq!(
            request_reply(&mut stream, &Request::ApproxLen),
            Response::Len(2)
        );
        // The listing shows both queues with the tenant's refusal counted.
        match request_reply(&mut stream, &Request::ListQueues) {
            Response::QueueList(rows) => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].name, DEFAULT_QUEUE);
                assert_eq!(rows[1].name, "tenant/a");
                assert_eq!(rows[1].backend, "coarse-heap");
                assert!(rows[1].instantiated);
                assert_eq!(rows[1].approx_len, 2);
                assert_eq!(rows[1].refusals, 1);
            }
            other => panic!("expected a queue list, got {other:?}"),
        }
        // The Stats breakdown attributes the work to the right queue.
        match request_reply(&mut stream, &Request::Stats) {
            Response::Stats(stats) => {
                assert_eq!(stats.queues.len(), 2);
                assert_eq!(stats.queues[1].name, "tenant/a");
                assert_eq!(stats.queues[1].totals.inserts, 2);
                assert_eq!(stats.queues[1].totals.refusals, 1);
                assert_eq!(stats.queues[0].totals.inserts, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Coarse heap is exact: delete_min returns the smallest key.
        match request_reply(&mut stream, &Request::DeleteMin) {
            Response::Entry { key, .. } => assert_eq!(key, 1),
            other => panic!("expected an entry, got {other:?}"),
        }
        // Drop the queue from a *second* connection while the first is
        // still bound to it.
        let mut admin = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(
            request_reply(
                &mut admin,
                &Request::DropQueue {
                    name: "tenant/a".to_string()
                }
            ),
            Response::QueueDropped
        );
        // The still-bound session gets the tombstone, typed, on its next op.
        match request_reply(&mut stream, &Request::Insert { key: 7, value: 7 }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::QueueDropped),
            other => panic!("expected QueueDropped, got {other:?}"),
        }
        // Rebinding to the dropped name is NoSuchQueue; the default queue
        // still works.
        match request_reply(
            &mut stream,
            &Request::UseQueue {
                name: "tenant/a".to_string(),
            },
        ) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSuchQueue),
            other => panic!("expected NoSuchQueue, got {other:?}"),
        }
        assert_eq!(
            request_reply(
                &mut stream,
                &Request::UseQueue {
                    name: DEFAULT_QUEUE.to_string()
                }
            ),
            Response::Using
        );
        assert_eq!(
            request_reply(&mut stream, &Request::ApproxLen),
            Response::Len(0)
        );
        drop(stream);
        drop(admin);
        // The dropped queue's history (2 inserts, 1 removal, 2 refusals)
        // survives in the retired roll-up of the final aggregate.
        let stats = server.join();
        assert_eq!(stats.totals.inserts, 2);
        assert_eq!(stats.totals.removals, 1);
        assert_eq!(stats.totals.refusals, 2);
        assert_eq!(stats.queues.len(), 1, "only the default queue remains");
    }

    /// A v2 peer on a v3 server: responses echo version 2, the Stats reply
    /// uses the legacy 9-counter layout, and v3 opcodes inside v2 frames are
    /// protocol errors.
    #[test]
    fn v2_clients_are_served_at_version_2() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        Request::Insert { key: 5, value: 50 }.encode_versioned(&mut wire, 2);
        Request::Stats.encode_versioned(&mut wire, 2);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        let (response, version, _) = Response::decode_versioned(&frame).unwrap();
        assert_eq!(response, Response::Inserted);
        assert_eq!(version, 2, "responses echo the request's version");
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(frame.len(), 6 + 9 * 8, "legacy 9-counter Stats layout");
        let (response, version, _) = Response::decode_versioned(&frame).unwrap();
        assert_eq!(version, 2);
        match response {
            Response::Stats(stats) => {
                assert_eq!(stats.totals.inserts, 1);
                assert!(stats.queues.is_empty(), "v2 carries no per-queue rows");
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A v3-only opcode in a v2 frame cannot be decoded: protocol error,
        // connection closed.
        let mut wire = Vec::new();
        Request::ListQueues.encode_versioned(&mut wire, 2);
        stream.write_all(&wire).unwrap();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        match Response::decode(&frame).unwrap().0 {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("expected a protocol error, got {other:?}"),
        }
        assert!(!read_frame_bytes(&mut stream, &mut frame).unwrap());
    }

    /// A registry-first server without a default queue: sessions start
    /// unbound, session ops are refused typed, and UseQueue brings the
    /// connection live.
    #[test]
    fn registry_server_without_a_default_queue_requires_use_queue() {
        let registry = Arc::new(QueueRegistry::default());
        registry
            .create(
                "only",
                BackendSpec::default_multiqueue(),
                QuotaSpec::unlimited(),
            )
            .unwrap();
        let server =
            PqServer::spawn_registry(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        match request_reply(&mut stream, &Request::Insert { key: 1, value: 1 }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSuchQueue),
            other => panic!("expected NoSuchQueue, got {other:?}"),
        }
        assert_eq!(
            request_reply(
                &mut stream,
                &Request::UseQueue {
                    name: "only".to_string()
                }
            ),
            Response::Using
        );
        assert_eq!(
            request_reply(&mut stream, &Request::Insert { key: 1, value: 1 }),
            Response::Inserted
        );
        drop(stream);
        let stats = server.join();
        assert_eq!(stats.totals.inserts, 1);
        // The unbound refusal is counted in service totals but belongs to
        // no queue row.
        assert_eq!(stats.totals.refusals, 1);
        assert_eq!(stats.queues[0].totals.refusals, 0);
    }

    /// Sessions opening and closing *while* Stats aggregations run: the
    /// aggregate must never panic, never lose a closed session's counters,
    /// and the final join must account every insert exactly.
    #[test]
    fn stats_aggregation_is_stable_while_sessions_close_mid_aggregation() {
        let server = spawn_server(ServerConfig::default());
        let addr = server.local_addr();
        let churn_threads = 4;
        let conns_per_thread = 8;
        let inserts_per_conn = 25u64;
        std::thread::scope(|scope| {
            for t in 0..churn_threads {
                scope.spawn(move || {
                    for c in 0..conns_per_thread {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        let mut wire = Vec::new();
                        for i in 0..inserts_per_conn {
                            Request::Insert {
                                key: (t * 1_000 + c * 100) as u64 + i,
                                value: 0,
                            }
                            .encode(&mut wire);
                        }
                        stream.write_all(&wire).unwrap();
                        let mut frame = Vec::new();
                        for _ in 0..inserts_per_conn {
                            assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
                        }
                        // Closing here races the aggregator below: the
                        // session's counters must survive into the queue's
                        // closed roll-up.
                        drop(stream);
                    }
                });
            }
            // The aggregator: hammer Stats from its own connection while the
            // churn threads open and close sessions. Totals must be
            // monotonically non-decreasing (closing sessions merge into the
            // roll-up under one lock, merge saturates, counters only grow).
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut last_inserts = 0u64;
                let mut frame = Vec::new();
                for _ in 0..50 {
                    let mut wire = Vec::new();
                    Request::Stats.encode(&mut wire);
                    stream.write_all(&wire).unwrap();
                    assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
                    match Response::decode(&frame).unwrap().0 {
                        Response::Stats(stats) => {
                            assert!(
                                stats.totals.inserts >= last_inserts,
                                "aggregate went backwards: {} < {last_inserts}",
                                stats.totals.inserts
                            );
                            last_inserts = stats.totals.inserts;
                        }
                        other => panic!("expected stats, got {other:?}"),
                    }
                }
            });
        });
        let stats = server.join();
        let expected = churn_threads as u64 * conns_per_thread as u64 * inserts_per_conn;
        assert_eq!(
            stats.totals.inserts, expected,
            "closed sessions keep counting in the final aggregate"
        );
        // The aggregator connection plus every churn connection.
        assert_eq!(
            stats.sessions,
            (churn_threads * conns_per_thread) as u64 + 1
        );
    }

    #[test]
    fn join_completes_despite_live_connections() {
        // An open connection that never sends (or never reads) must not
        // stall join: shutdown closes the live sockets, so handlers stuck
        // in reads *or* writes exit promptly.
        let server = spawn_server(ServerConfig::default());
        let _idle = TcpStream::connect(server.local_addr()).unwrap();
        let started = std::time::Instant::now();
        server.join();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "join must not wait on the idle connection"
        );
    }

    /// The v4 exposition endpoint over the wire: session traffic shows up as
    /// registry metrics, and `include_events` appends the flight recorder as
    /// comment lines (still line-scrapeable).
    #[test]
    fn metrics_dump_over_the_wire_exposes_counters_and_events() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(
            request_reply(&mut stream, &Request::Insert { key: 3, value: 30 }),
            Response::Inserted
        );
        match request_reply(
            &mut stream,
            &Request::MetricsDump {
                include_events: false,
            },
        ) {
            Response::MetricsText(text) => {
                assert!(
                    text.contains("registry_inflight"),
                    "admitted insert reaches the registry gauge:\n{text}"
                );
                assert!(
                    !text.contains("# flight recorder"),
                    "events only ride along on request:\n{text}"
                );
            }
            other => panic!("expected metrics text, got {other:?}"),
        }
        match request_reply(
            &mut stream,
            &Request::MetricsDump {
                include_events: true,
            },
        ) {
            Response::MetricsText(text) => {
                assert!(text.contains("# flight recorder"), "events ride along");
                assert!(
                    text.contains("session-open"),
                    "this very connection's open event is in the ring:\n{text}"
                );
                for line in text.lines() {
                    assert!(
                        line.is_empty()
                            || line.starts_with('#')
                            || line.split_whitespace().count() == 2,
                        "exposition stays scrapeable, offending line: {line}"
                    );
                }
            }
            other => panic!("expected metrics text, got {other:?}"),
        }
    }

    /// The end-to-end trace path over a raw socket: a v5 request carrying a
    /// trace id gets the id echoed back with a server stage time, and the
    /// next metrics dump carries build info, uptime, the per-stage
    /// histograms, and the span itself.
    #[test]
    fn traced_requests_land_in_stage_histograms_and_the_span_ring() {
        use crate::protocol::TraceContext;
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let trace = TraceContext {
            trace_id: 0xABCD_EF01_2345_6789,
        };
        let mut wire = Vec::new();
        Request::Insert { key: 4, value: 40 }.encode_traced(&mut wire, WIRE_VERSION, Some(trace));
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        let (response, _, echo, _) = Response::decode_traced(&frame).unwrap();
        assert_eq!(response, Response::Inserted);
        let echo = echo.expect("a traced request is answered traced");
        assert_eq!(echo.trace_id, trace.trace_id);
        assert!(echo.server_ns > 0, "decode+admit+queue-op took time");

        match request_reply(
            &mut stream,
            &Request::MetricsDump {
                include_events: true,
            },
        ) {
            Response::MetricsText(text) => {
                assert!(
                    text.contains("build_info{"),
                    "version/commit/wire gauge is exported:\n{text}"
                );
                assert!(
                    text.contains("uptime_seconds"),
                    "uptime gauge is exported:\n{text}"
                );
                for stage in SpanStage::ALL {
                    assert!(
                        text.contains(&format!("stage=\"{}\"", stage.name())),
                        "per-stage histogram for {} is exported:\n{text}",
                        stage.name()
                    );
                }
                assert!(
                    text.contains("# request spans"),
                    "span section rides along with events:\n{text}"
                );
                assert!(
                    text.contains("trace=0xabcdef0123456789"),
                    "the sampled request's span is retained:\n{text}"
                );
            }
            other => panic!("expected metrics text, got {other:?}"),
        }

        // Untraced requests on the same connection stay untraced.
        let mut wire = Vec::new();
        Request::DeleteMin.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        let (response, _, echo, _) = Response::decode_traced(&frame).unwrap();
        assert_eq!(response, Response::Entry { key: 4, value: 40 });
        assert!(echo.is_none(), "no envelope was requested");
    }

    /// The panic-recovery path (fault-injected): a panicking op dumps the
    /// flight recorder, kills only its own connection, and the server keeps
    /// serving other sessions.
    #[test]
    fn panicking_op_dumps_the_flight_recorder_and_the_server_survives() {
        let server = spawn_server(ServerConfig::default().with_panic_on_key(77));
        let mut victim = TcpStream::connect(server.local_addr()).unwrap();
        // A normal op first, so the session is demonstrably live.
        assert_eq!(
            request_reply(&mut victim, &Request::Insert { key: 1, value: 1 }),
            Response::Inserted
        );
        // Trip the trap: the handler panics, the hook dumps, the socket
        // closes (EOF or reset — either proves the handler released it).
        let mut wire = Vec::new();
        Request::Insert { key: 77, value: 0 }.encode(&mut wire);
        victim.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        // An `Err` (connection reset) equally proves the handler released
        // the socket.
        if let Ok(more) = read_frame_bytes(&mut victim, &mut frame) {
            assert!(!more, "no response frame follows a panicked op");
        }
        // The panic hook captured a dump naming the panic and this session.
        let dump = choice_obs::take_last_panic_dump().expect("panic dump captured");
        assert!(
            dump.contains("panic"),
            "dump records the panic event:\n{dump}"
        );
        assert!(
            dump.contains("fault injection"),
            "panic message rides in the event label:\n{dump}"
        );
        assert!(
            dump.contains("session-open"),
            "the session's own open event precedes the panic:\n{dump}"
        );
        // Other sessions are unaffected: a fresh connection still serves,
        // and the inserted key from before the panic is still in the queue.
        let mut fresh = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(
            request_reply(&mut fresh, &Request::DeleteMin),
            Response::Entry { key: 1, value: 1 }
        );
        drop(fresh);
        drop(victim);
        server.join();
    }

    #[test]
    fn config_builders_validate() {
        let c = ServerConfig::default()
            .with_policy(HandlePolicy::default().with_insert_batch(8))
            .with_max_batch(100)
            .with_credit_window(7);
        assert_eq!(c.policy.insert_batch, 8);
        assert_eq!(c.max_batch, 100);
        assert_eq!(c.credit_window, 7);
        assert_eq!(c.panic_on_key, None);
        assert_eq!(
            ServerConfig::default().with_panic_on_key(9).panic_on_key,
            Some(9)
        );
        assert!(std::panic::catch_unwind(|| ServerConfig::default().with_max_batch(0)).is_err());
        assert!(
            std::panic::catch_unwind(|| ServerConfig::default().with_credit_window(0)).is_err()
        );
    }
}
