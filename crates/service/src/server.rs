//! The choice-wire server: one queue, one session per connection.
//!
//! # Session-per-connection
//!
//! The in-process API is organised per *thread*: you [`register`] a session
//! and every operation flows through the returned handle. The server maps
//! that structure onto the network one-to-one — each accepted TCP connection
//! registers its own session on the shared queue (via
//! [`DynSharedPq::register_policy_dyn`], so any backend serves) and every
//! frame on that connection executes through that handle. The session API's
//! guarantees come along for free: a per-connection deterministic RNG
//! stream, sticky lanes / insert batching / instrumentation selected by the
//! server-wide [`HandlePolicy`], and per-connection [`HandleStats`].
//!
//! # Backpressure: the credit window
//!
//! Clients pipeline: they may send up to their credit window of requests
//! before reading a response. The server mirrors the window on the response
//! side — responses accumulate in the connection's write buffer and are
//! flushed either when the window fills or when the request stream pauses —
//! so one syscall carries up to a window of responses, and a client that
//! stops reading eventually blocks the connection's writes (TCP does the
//! rest) without unbounded buffering on either side. The window is
//! advertised nowhere and negotiated never: both sides simply bound
//! themselves, which composes safely for any pair of limits.
//!
//! # Shutdown
//!
//! A [`Request::Shutdown`] frame (or [`PqServer::shutdown`] from the owning
//! process) flips a shared flag. The accept loop notices within one poll
//! interval; connection handlers notice at their next read timeout or
//! request boundary, answer in-flight work, and close. Joining the server
//! then observes every session's final counters.
//!
//! [`register`]: choice_pq::SharedPq::register

use std::io::{self, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use choice_pq::{DynSharedPq, HandlePolicy, HandleStats, Key, PqHandle};
use parking_lot::Mutex;

use crate::protocol::{ErrorCode, Request, Response, ServiceStats, WireError, MAX_BATCH};

/// Server-side configuration: the per-session policy and the service limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Session policy applied to every connection's handle (sticky lanes,
    /// insert batching, instrumentation — see [`HandlePolicy`]). Backends
    /// without the corresponding machinery ignore the knobs that do not
    /// apply.
    pub policy: HandlePolicy,
    /// Upper bound the server imposes on `DeleteMinBatch` sizes (requests
    /// asking for more are clamped, not refused). Also bounded by the wire
    /// limit [`MAX_BATCH`].
    pub max_batch: u32,
    /// Response credit window: how many responses may accumulate in a
    /// connection's write buffer before a flush is forced. Mirrors the
    /// client's pipelining window; `1` degenerates to flush-per-response.
    pub credit_window: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            policy: HandlePolicy::default(),
            max_batch: MAX_BATCH,
            credit_window: 64,
        }
    }
}

impl ServerConfig {
    /// Sets the per-session [`HandlePolicy`].
    pub fn with_policy(mut self, policy: HandlePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the server-side batch clamp.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn with_max_batch(mut self, max_batch: u32) -> Self {
        assert!(max_batch > 0, "max batch must be positive");
        self.max_batch = max_batch.min(MAX_BATCH);
        self
    }

    /// Sets the response credit window.
    ///
    /// # Panics
    ///
    /// Panics if `credit_window == 0`.
    pub fn with_credit_window(mut self, credit_window: usize) -> Self {
        assert!(credit_window > 0, "credit window must be positive");
        self.credit_window = credit_window;
        self
    }
}

/// How often blocked accept/read calls re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// One connection's slot in the stats registry: the session's counters as
/// of its most recently completed request (final counters once closed).
type StatsSlot = Arc<Mutex<HandleStats>>;

/// Shared across the accept loop and every connection handler.
struct Shared {
    queue: Arc<dyn DynSharedPq<u64>>,
    config: ServerConfig,
    shutdown: AtomicBool,
    sessions_opened: AtomicU64,
    /// Every session ever opened keeps its slot here, so Stats aggregates
    /// live *and* finished sessions (bounded by connection count, 16 bytes
    /// a piece — fine for a diagnostic surface).
    stats: Mutex<Vec<StatsSlot>>,
    /// Raw streams of the *live* connections (removed on handler exit).
    /// Shutdown closes them so a handler blocked in a write — a peer that
    /// pipelines but never reads — is unstuck immediately; without this,
    /// `join` could wait forever on a stalled connection.
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl Shared {
    fn aggregate_stats(&self) -> ServiceStats {
        let mut totals = HandleStats::default();
        for slot in self.stats.lock().iter() {
            totals.merge(&slot.lock());
        }
        // The lane-table snapshot rides along so remote operators can watch
        // an elastic backend resize itself under their load.
        let topology = self.queue.topology_dyn();
        ServiceStats {
            sessions: self.sessions_opened.load(Ordering::Relaxed),
            totals,
            active_lanes: topology.active_lanes as u64,
            max_lanes: topology.max_lanes as u64,
            resize_events: topology.resize_events(),
        }
    }
}

/// A running choice-wire server.
///
/// Bind with [`PqServer::spawn`]; the accept loop and every connection run
/// on background threads until a shutdown (wire frame or
/// [`shutdown`](PqServer::shutdown)), after which [`join`](PqServer::join)
/// — or drop — reaps them. The queue stays owned by the caller (it is
/// behind an `Arc`), so its contents survive the server and can be
/// inspected after `join`.
pub struct PqServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl PqServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving `queue`.
    pub fn spawn(
        queue: Arc<dyn DynSharedPq<u64>>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<PqServer> {
        assert!(config.credit_window > 0, "credit window must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            queue,
            config,
            shutdown: AtomicBool::new(false),
            sessions_opened: AtomicU64::new(0),
            stats: Mutex::new(Vec::new()),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("choice-wire-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(PqServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown (local or wire-initiated) has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without waiting: the accept loop stops within one
    /// poll interval and connections close at their next request boundary.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Close the live sockets too: a handler blocked writing to a peer
        // that stopped reading would otherwise never observe the flag, and
        // `join` would hang on it. Closed-socket errors end those handlers
        // promptly; handlers idle in a read notice within one poll interval
        // either way.
        for (_, conn) in self.shared.conns.lock().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// The aggregated per-session statistics (live sessions contribute the
    /// counters of their most recently completed request).
    pub fn stats(&self) -> ServiceStats {
        self.shared.aggregate_stats()
    }

    /// Shuts down and joins every server thread, returning the final
    /// aggregated statistics.
    pub fn join(mut self) -> ServiceStats {
        self.join_inner();
        self.shared.aggregate_stats()
    }

    fn join_inner(&mut self) {
        self.shutdown();
        if let Some(accept) = self.accept_thread.take() {
            let connections = accept.join().expect("accept loop panicked");
            for conn in connections {
                let _ = conn.join();
            }
        }
    }
}

impl Drop for PqServer {
    fn drop(&mut self) {
        self.join_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("choice-wire-conn".into())
                    .spawn(move || {
                        // Connection-level I/O errors (peer vanished, reset)
                        // close that connection only; the queue and the
                        // other sessions are unaffected.
                        let _ = serve_connection(stream, conn_shared);
                    });
                match handle {
                    Ok(handle) => connections.push(handle),
                    Err(_) => continue, // thread exhaustion: drop the conn
                }
                // Opportunistically reap finished handlers so a long-lived
                // server does not accumulate dead JoinHandles.
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    connections
}

/// Serves one connection: a session on the queue, a buffered framing loop,
/// and the credit-window flush policy.
///
/// The receive path reads whole chunks into a growable buffer and decodes
/// every complete frame it holds before reading again — a partial frame at
/// the buffer's tail simply waits for the next chunk (never discarded, so a
/// read timeout can never desynchronise the stream), and one `read` syscall
/// typically carries a whole pipeline window of requests.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // Reads poll so the handler notices shutdown while idle.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = stream.try_clone()?;

    let conn_id = shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
    shared.conns.lock().push((conn_id, stream.try_clone()?));
    let mut writer = BufWriter::new(stream);

    let slot: StatsSlot = Arc::new(Mutex::new(HandleStats::default()));
    shared.stats.lock().push(Arc::clone(&slot));

    let mut session = shared.queue.register_policy_dyn(shared.config.policy);
    let mut inbuf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    let mut out_scratch = Vec::new();
    let mut batch_buf: Vec<(Key, u64)> = Vec::new();
    // Responses written since the last flush; the credit window bounds it.
    let mut unflushed = 0usize;

    let result = 'conn: loop {
        // Decode and execute every complete frame currently buffered.
        let mut consumed = 0usize;
        while consumed < inbuf.len() {
            let request = match Request::decode(&inbuf[consumed..]) {
                Ok((request, used)) => {
                    consumed += used;
                    request
                }
                Err(e) if e.is_incomplete() => break, // tail frame: read more
                Err(wire_error) => {
                    // Protocol violations are answered (best-effort) and
                    // then the connection is closed: after a framing error
                    // the byte stream cannot re-synchronise.
                    let response = Response::Error {
                        code: ErrorCode::Protocol,
                        detail: wire_error.to_string(),
                    };
                    crate::protocol::write_response(&mut writer, &response, &mut out_scratch)?;
                    writer.flush()?;
                    break 'conn Err(io::Error::new(io::ErrorKind::InvalidData, wire_error));
                }
            };
            let shutting_down = shared.shutdown.load(Ordering::SeqCst);
            let mut is_shutdown_ack = false;
            if let (Request::DeleteMinBatch { max }, false) = (request, shutting_down) {
                // The hot batched path keeps its entries vector: drain into
                // it, encode from the borrow, reuse the allocation next
                // request.
                let clamped = max.min(shared.config.max_batch) as usize;
                batch_buf.clear();
                session.delete_min_batch_into(clamped, &mut batch_buf);
                out_scratch.clear();
                crate::protocol::encode_batch_response(&mut out_scratch, &batch_buf);
                writer.write_all(&out_scratch)?;
            } else {
                let response = execute(request, &mut *session, &shared, shutting_down);
                is_shutdown_ack = matches!(response, Response::ShuttingDown);
                crate::protocol::write_response(&mut writer, &response, &mut out_scratch)?;
            }
            unflushed += 1;
            // Publish this session's counters after every request so the
            // Stats op (served by any connection) sees near-current totals.
            // The slot mutex is uncontended except during an actual Stats
            // aggregation.
            *slot.lock() = session.stats();
            if is_shutdown_ack {
                writer.flush()?;
                break 'conn Ok(());
            }
            if unflushed >= shared.config.credit_window {
                writer.flush()?;
                unflushed = 0;
            }
        }
        inbuf.drain(..consumed);

        // The buffered requests are answered; the stream is about to block,
        // which ends the credit round — flush.
        if unflushed > 0 {
            writer.flush()?;
            unflushed = 0;
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                break 'conn if inbuf.is_empty() {
                    Ok(()) // clean disconnect at a frame boundary
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        WireError::Truncated { needed: 1 },
                    ))
                };
            }
            Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle (possibly mid-frame): nothing was consumed, nothing
                // is lost. Just check for shutdown and poll again.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break 'conn Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => break 'conn Err(e),
        }
    };
    // The session drops here, flushing any policy-buffered inserts back to
    // the shared queue; record its final counters and deregister the
    // stream (the stats slot stays: closed sessions keep counting).
    let final_stats = session.stats();
    drop(session);
    *slot.lock() = final_stats;
    shared.conns.lock().retain(|(id, _)| *id != conn_id);
    result
}

/// Executes one decoded request against the connection's session (the
/// batched-removal path lives in [`serve_connection`], which owns the
/// reusable entries buffer).
fn execute(
    request: Request,
    session: &mut dyn PqHandle<u64>,
    shared: &Shared,
    shutting_down: bool,
) -> Response {
    if shutting_down && !matches!(request, Request::Shutdown | Request::Stats) {
        return Response::Error {
            code: ErrorCode::Unavailable,
            detail: "server is shutting down".to_string(),
        };
    }
    match request {
        Request::Insert { key, value } => {
            if key == Key::MAX {
                // The in-process API panics on the reserved key (programmer
                // error); a remote peer gets a refusal frame instead.
                return Response::Error {
                    code: ErrorCode::ReservedKey,
                    detail: "key u64::MAX is reserved as the empty-lane sentinel".to_string(),
                };
            }
            session.insert(key, value);
            Response::Inserted
        }
        Request::DeleteMin => match session.delete_min() {
            Some((key, value)) => Response::Entry { key, value },
            None => Response::Empty,
        },
        Request::DeleteMinBatch { max } => {
            // Only reachable during shutdown (the guard above answered) or
            // never — the live path is inlined in `serve_connection`.
            let clamped = max.min(shared.config.max_batch) as usize;
            let mut entries = Vec::new();
            session.delete_min_batch_into(clamped, &mut entries);
            Response::Batch(entries)
        }
        Request::ApproxLen => Response::Len(shared.queue.approx_len_dyn() as u64),
        Request::Stats => {
            // Fold the *requesting* session's live counters over its slot
            // snapshot's position by publishing first — the caller updates
            // the slot after execute returns, so aggregate over the current
            // registry is at most one request stale per session.
            Response::Stats(shared.aggregate_stats())
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame_bytes;
    use choice_pq::{MultiQueue, MultiQueueConfig};

    fn spawn_server(config: ServerConfig) -> PqServer {
        let queue: Arc<dyn DynSharedPq<u64>> = Arc::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(4).with_seed(9),
        ));
        PqServer::spawn(queue, "127.0.0.1:0", config).expect("bind ephemeral")
    }

    /// Raw-socket round trip without the client type: the server speaks the
    /// protocol to anything that frames correctly.
    #[test]
    fn raw_socket_insert_and_delete_roundtrip() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        Request::Insert { key: 5, value: 50 }.encode(&mut wire);
        Request::DeleteMin.encode(&mut wire);
        Request::DeleteMin.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::Inserted);
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(
            Response::decode(&frame).unwrap().0,
            Response::Entry { key: 5, value: 50 }
        );
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::Empty);
        drop(stream);
        let stats = server.join();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.totals.inserts, 1);
        assert_eq!(stats.totals.removals, 1);
        assert_eq!(stats.totals.failed_removals, 1);
    }

    #[test]
    fn reserved_key_is_refused_not_a_panic() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        Request::Insert {
            key: Key::MAX,
            value: 0,
        }
        .encode(&mut wire);
        Request::ApproxLen.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        match Response::decode(&frame).unwrap().0 {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::ReservedKey),
            other => panic!("expected a refusal, got {other:?}"),
        }
        // The connection survives a refusal (only framing errors close it).
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::Len(0));
    }

    #[test]
    fn garbage_bytes_get_a_protocol_error_then_a_close() {
        let server = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A syntactically valid length prefix followed by a bad version.
        let mut garbage = 2u32.to_le_bytes().to_vec();
        garbage.extend_from_slice(&[0x42, 0x01]);
        stream.write_all(&garbage).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        match Response::decode(&frame).unwrap().0 {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("expected a protocol error, got {other:?}"),
        }
        // ...and then EOF: the server closed the poisoned stream.
        assert!(!read_frame_bytes(&mut stream, &mut frame).unwrap());
        // The server itself is still alive for new, well-behaved peers.
        let mut fresh = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        Request::ApproxLen.encode(&mut wire);
        fresh.write_all(&wire).unwrap();
        assert!(read_frame_bytes(&mut fresh, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::Len(0));
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = spawn_server(ServerConfig::default());
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        Request::Shutdown.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        assert_eq!(Response::decode(&frame).unwrap().0, Response::ShuttingDown);
        assert!(server.is_shutting_down());
        server.join();
        // The port is released: a fresh connect is refused (or immediately
        // reset); either way no frames flow.
        assert!(
            TcpStream::connect(addr).is_err()
                || read_frame_bytes(&mut TcpStream::connect(addr).unwrap(), &mut frame)
                    .map(|more| !more)
                    .unwrap_or(true)
        );
    }

    #[test]
    fn batch_requests_are_clamped_to_the_server_limit() {
        let server = spawn_server(ServerConfig::default().with_max_batch(4));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        for k in 0..16u64 {
            Request::Insert { key: k, value: k }.encode(&mut wire);
        }
        Request::DeleteMinBatch { max: u32::MAX }.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        for _ in 0..16 {
            assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
            assert_eq!(Response::decode(&frame).unwrap().0, Response::Inserted);
        }
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        match Response::decode(&frame).unwrap().0 {
            Response::Batch(entries) => {
                assert!(
                    (1..=4).contains(&entries.len()),
                    "clamp to 4, got {}",
                    entries.len()
                );
                // Within one batch keys come off one lane in ascending order.
                assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
            }
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn stats_report_the_elastic_lane_topology_over_the_wire() {
        use choice_pq::ElasticPolicy;
        let queue = Arc::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(16)
                .with_seed(4)
                .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
        ));
        let erased: Arc<dyn DynSharedPq<u64>> = Arc::clone(&queue) as _;
        let server = PqServer::spawn(erased, "127.0.0.1:0", ServerConfig::default()).expect("bind");
        queue.resize_active(8);
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut wire = Vec::new();
        Request::Stats.encode(&mut wire);
        stream.write_all(&wire).unwrap();
        let mut frame = Vec::new();
        assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
        match Response::decode(&frame).unwrap().0 {
            Response::Stats(stats) => {
                assert_eq!(stats.active_lanes, 8);
                assert_eq!(stats.max_lanes, 16);
                assert!(stats.resize_events >= 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        drop(stream);
        let final_stats = server.join();
        assert_eq!(final_stats.max_lanes, 16);
    }

    /// Sessions opening and closing *while* Stats aggregations run: the
    /// aggregate must never panic, never lose a closed session's counters,
    /// and the final join must account every insert exactly.
    #[test]
    fn stats_aggregation_is_stable_while_sessions_close_mid_aggregation() {
        let server = spawn_server(ServerConfig::default());
        let addr = server.local_addr();
        let churn_threads = 4;
        let conns_per_thread = 8;
        let inserts_per_conn = 25u64;
        std::thread::scope(|scope| {
            for t in 0..churn_threads {
                scope.spawn(move || {
                    for c in 0..conns_per_thread {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        let mut wire = Vec::new();
                        for i in 0..inserts_per_conn {
                            Request::Insert {
                                key: (t * 1_000 + c * 100) as u64 + i,
                                value: 0,
                            }
                            .encode(&mut wire);
                        }
                        stream.write_all(&wire).unwrap();
                        let mut frame = Vec::new();
                        for _ in 0..inserts_per_conn {
                            assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
                        }
                        // Closing here races the aggregator below: the slot
                        // must survive the session.
                        drop(stream);
                    }
                });
            }
            // The aggregator: hammer Stats from its own connection while the
            // churn threads open and close sessions. Totals must be
            // monotonically non-decreasing (slots are never removed, merge
            // saturates, counters only grow).
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut last_inserts = 0u64;
                let mut frame = Vec::new();
                for _ in 0..50 {
                    let mut wire = Vec::new();
                    Request::Stats.encode(&mut wire);
                    stream.write_all(&wire).unwrap();
                    assert!(read_frame_bytes(&mut stream, &mut frame).unwrap());
                    match Response::decode(&frame).unwrap().0 {
                        Response::Stats(stats) => {
                            assert!(
                                stats.totals.inserts >= last_inserts,
                                "aggregate went backwards: {} < {last_inserts}",
                                stats.totals.inserts
                            );
                            last_inserts = stats.totals.inserts;
                        }
                        other => panic!("expected stats, got {other:?}"),
                    }
                }
            });
        });
        let stats = server.join();
        let expected = churn_threads as u64 * conns_per_thread as u64 * inserts_per_conn;
        assert_eq!(
            stats.totals.inserts, expected,
            "closed sessions keep counting in the final aggregate"
        );
        // The aggregator connection plus every churn connection.
        assert_eq!(
            stats.sessions,
            (churn_threads * conns_per_thread) as u64 + 1
        );
    }

    #[test]
    fn join_completes_despite_live_connections() {
        // An open connection that never sends (or never reads) must not
        // stall join: shutdown closes the live sockets, so handlers stuck
        // in reads *or* writes exit promptly.
        let server = spawn_server(ServerConfig::default());
        let _idle = TcpStream::connect(server.local_addr()).unwrap();
        let started = std::time::Instant::now();
        server.join();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "join must not wait on the idle connection"
        );
    }

    #[test]
    fn config_builders_validate() {
        let c = ServerConfig::default()
            .with_policy(HandlePolicy::default().with_insert_batch(8))
            .with_max_batch(100)
            .with_credit_window(7);
        assert_eq!(c.policy.insert_batch, 8);
        assert_eq!(c.max_batch, 100);
        assert_eq!(c.credit_window, 7);
        assert!(std::panic::catch_unwind(|| ServerConfig::default().with_max_batch(0)).is_err());
        assert!(
            std::panic::catch_unwind(|| ServerConfig::default().with_credit_window(0)).is_err()
        );
    }
}
