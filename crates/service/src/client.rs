//! The blocking, pipelined choice-wire client.
//!
//! A [`PqClient`] is a single-threaded session over one TCP connection —
//! the remote mirror of a [`PqHandle`](choice_pq::PqHandle): all methods
//! take `&mut self`, and one client maps to one server-side session (one
//! deterministic RNG stream, one stats slot). Use one client per worker
//! thread, exactly as you would register one handle per worker.
//!
//! # Pipelining and the credit window
//!
//! The synchronous methods ([`insert`](PqClient::insert),
//! [`delete_min`](PqClient::delete_min), …) are one round trip each. For
//! throughput, [`submit`](PqClient::submit) *pipelines*: it writes the
//! request into the send buffer and returns without waiting — unless the
//! credit window (the maximum number of unanswered requests) is full, in
//! which case it first reads exactly one response, returning it with its
//! measured round-trip time. [`drain_one`](PqClient::drain_one) /
//! [`drain_all`](PqClient::drain_all) collect the remainder. The window
//! bounds both sides' buffering (the server mirrors it — see
//! [`server`](crate::server) module docs) and is what makes a blocking
//! client safe to pipeline: client and server can never both be blocked on
//! writes with more than a window of frames in the air.
//!
//! Responses arrive strictly in request order (the server executes each
//! connection serially), so a FIFO queue of send timestamps is enough to
//! attribute round-trip times.
//!
//! # Request tracing
//!
//! With tracing enabled ([`set_trace_every`](PqClient::set_trace_every)),
//! every N-th request carries a v5 trace id. The server echoes the id back
//! together with its measured handling time (decode + admit + queue-op),
//! which lets the client split the observed round trip into "server work"
//! versus "everything else" (client buffering, the wire, kernel queues,
//! server recv/flush) — see [`TraceSplit`]. The most recent split and the
//! running totals are available from
//! [`last_trace_split`](PqClient::last_trace_split) and
//! [`trace_totals`](PqClient::trace_totals).

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use choice_pq::Key;
use choice_registry::{BackendSpec, QuotaSpec};

use crate::protocol::{
    read_frame_bytes, ErrorCode, QueueListRow, Request, Response, ServiceStats, TraceContext,
    WireError, WIRE_VERSION,
};

/// Process-wide trace-id allocator: ids stay unique across every client in
/// the process, so spans from different connections never collide in the
/// server's span ring.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// One traced request's round trip, split by the server's echoed stage time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSplit {
    /// The id the request carried (echoed back by the server).
    pub trace_id: u64,
    /// Full round trip: request buffered to response decoded.
    pub rtt: Duration,
    /// Server-side handling time (decode + admit + queue-op stages) in
    /// nanoseconds, measured on the server's clock.
    pub server_ns: u64,
}

impl TraceSplit {
    /// Nanoseconds of the round trip spent *outside* the server's handling
    /// stages: client-side buffering, the wire, kernel queues, and the
    /// server's recv/flush ends (saturating — the two clocks are
    /// independent).
    pub fn client_queue_ns(&self) -> u64 {
        (self.rtt.as_nanos() as u64).saturating_sub(self.server_ns)
    }
}

/// Running totals over every traced response this client has collected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceTotals {
    /// Traced responses collected.
    pub traced: u64,
    /// Sum of traced round trips (ns).
    pub rtt_ns: u64,
    /// Sum of echoed server handling times (ns).
    pub server_ns: u64,
}

impl TraceTotals {
    /// Total nanoseconds traced requests spent outside the server's
    /// handling stages (saturating).
    pub fn client_queue_ns(&self) -> u64 {
        self.rtt_ns.saturating_sub(self.server_ns)
    }
}

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed at the transport level.
    Io(io::Error),
    /// The server's bytes did not decode as a response frame.
    Wire(WireError),
    /// The server answered with an error frame.
    Remote {
        /// Machine-readable refusal reason.
        code: ErrorCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The server answered with a frame type that does not match the
    /// request (a protocol bug on one side or the other).
    Unexpected(Response),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote { code, detail } => {
                write!(f, "server refused ({code:?}): {detail}")
            }
            ClientError::Unexpected(r) => write!(f, "response/request mismatch: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A pipelined response paired with its measured round-trip latency (from
/// the moment the request was buffered to the moment its response frame
/// was decoded).
pub type TimedResponse = (Response, Duration);

/// A blocking client session over one choice-wire connection.
pub struct PqClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    window: usize,
    /// Send timestamps of requests whose responses are still outstanding
    /// (FIFO: responses come back in request order), with the trace id the
    /// request carried when it was sampled.
    inflight: VecDeque<(Instant, Option<u64>)>,
    frame: Vec<u8>,
    scratch: Vec<u8>,
    /// Trace every N-th request; `0` disables tracing.
    trace_every: u32,
    /// Requests sent since the last traced one.
    trace_tick: u32,
    last_split: Option<TraceSplit>,
    totals: TraceTotals,
}

impl PqClient {
    /// Default pipelining window (matches the server's default response
    /// credit window).
    pub const DEFAULT_WINDOW: usize = 64;

    /// Default 1-in-N tracing stride once tracing is enabled — same budget
    /// reasoning as the handle-level latency sampler.
    pub const DEFAULT_TRACE_EVERY: u32 = 64;

    /// Connects with the default window.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PqClient> {
        Self::connect_with_window(addr, Self::DEFAULT_WINDOW)
    }

    /// Connects with an explicit credit window (`1` disables pipelining).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn connect_with_window(addr: impl ToSocketAddrs, window: usize) -> io::Result<PqClient> {
        assert!(window > 0, "credit window must be positive");
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(PqClient {
            reader,
            writer,
            window,
            inflight: VecDeque::with_capacity(window),
            frame: Vec::new(),
            scratch: Vec::new(),
            trace_every: 0,
            trace_tick: 0,
            last_split: None,
            totals: TraceTotals::default(),
        })
    }

    /// The configured pipelining window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests currently in flight (sent, response not yet read).
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Traces every `every`-th request from now on (`0` disables tracing,
    /// `1` traces everything). See [`PqClient::DEFAULT_TRACE_EVERY`] for
    /// the recommended stride.
    pub fn set_trace_every(&mut self, every: u32) {
        self.trace_every = every;
        self.trace_tick = 0;
    }

    /// The round-trip split of the most recently collected traced response.
    pub fn last_trace_split(&self) -> Option<TraceSplit> {
        self.last_split
    }

    /// Running totals over every traced response collected so far.
    pub fn trace_totals(&self) -> TraceTotals {
        self.totals
    }

    /// Decides whether the next request is sampled, allocating its id.
    fn next_trace(&mut self) -> Option<TraceContext> {
        if self.trace_every == 0 {
            return None;
        }
        self.trace_tick += 1;
        if self.trace_tick < self.trace_every {
            return None;
        }
        self.trace_tick = 0;
        Some(TraceContext {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Encodes `request` (with a trace envelope when sampled) into the send
    /// buffer and enqueues its in-flight slot.
    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let trace = self.next_trace();
        self.scratch.clear();
        request.encode_traced(&mut self.scratch, WIRE_VERSION, trace);
        self.writer.write_all(&self.scratch)?;
        self.inflight
            .push_back((Instant::now(), trace.map(|t| t.trace_id)));
        Ok(())
    }

    /// Pipelines one request. Returns `Ok(None)` when the window had room
    /// (the request is buffered/sent, nothing was read); returns
    /// `Ok(Some(timed_response))` when the window was full and one response
    /// had to be collected first — that response belongs to the *oldest*
    /// outstanding request.
    pub fn submit(&mut self, request: &Request) -> Result<Option<TimedResponse>, ClientError> {
        let collected = if self.inflight.len() >= self.window {
            Some(self.drain_one()?)
        } else {
            None
        };
        self.send(request)?;
        Ok(collected)
    }

    /// Reads the response to the oldest in-flight request, flushing the
    /// send buffer first.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn drain_one(&mut self) -> Result<TimedResponse, ClientError> {
        let (sent_at, _trace_id) = self
            .inflight
            .pop_front()
            .expect("drain_one with nothing in flight");
        self.writer.flush()?;
        if !read_frame_bytes(&mut self.reader, &mut self.frame)? {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection with requests in flight",
            )));
        }
        let (response, _version, echo, _used) = Response::decode_traced(&self.frame)?;
        let rtt = sent_at.elapsed();
        if let Some(echo) = echo {
            let split = TraceSplit {
                trace_id: echo.trace_id,
                rtt,
                server_ns: echo.server_ns,
            };
            self.totals.traced += 1;
            self.totals.rtt_ns += rtt.as_nanos() as u64;
            self.totals.server_ns += echo.server_ns;
            self.last_split = Some(split);
        }
        Ok((response, rtt))
    }

    /// Drains every outstanding response, invoking `visit` on each in
    /// request order.
    pub fn drain_all(&mut self, mut visit: impl FnMut(TimedResponse)) -> Result<(), ClientError> {
        while !self.inflight.is_empty() {
            visit(self.drain_one()?);
        }
        Ok(())
    }

    /// One synchronous round trip: drain the pipeline, send, await the
    /// response.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.drain_all(|_| {})?;
        self.send(request)?;
        Ok(self.drain_one()?.0)
    }

    /// Turns an error response into [`ClientError::Remote`].
    fn ok_or_remote(response: Response) -> Result<Response, ClientError> {
        match response {
            Response::Error { code, detail } => Err(ClientError::Remote { code, detail }),
            other => Ok(other),
        }
    }

    /// Inserts one entry (one round trip).
    pub fn insert(&mut self, key: Key, value: u64) -> Result<(), ClientError> {
        match Self::ok_or_remote(self.call(&Request::Insert { key, value })?)? {
            Response::Inserted => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Removes one small-keyed entry (one round trip); `None` when the
    /// structure was observed empty.
    pub fn delete_min(&mut self) -> Result<Option<(Key, u64)>, ClientError> {
        match Self::ok_or_remote(self.call(&Request::DeleteMin)?)? {
            Response::Entry { key, value } => Ok(Some((key, value))),
            Response::Empty => Ok(None),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Removes up to `max` entries in one batched round trip (the server
    /// may clamp `max`).
    pub fn delete_min_batch(&mut self, max: u32) -> Result<Vec<(Key, u64)>, ClientError> {
        match Self::ok_or_remote(self.call(&Request::DeleteMinBatch { max })?)? {
            Response::Batch(entries) => Ok(entries),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Reads the server queue's approximate length.
    pub fn approx_len(&mut self) -> Result<u64, ClientError> {
        match Self::ok_or_remote(self.call(&Request::ApproxLen)?)? {
            Response::Len(len) => Ok(len),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Reads the server's aggregated per-session statistics.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match Self::ok_or_remote(self.call(&Request::Stats)?)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Reads the server's metrics exposition text (one round trip, v4+):
    /// Prometheus-style metric lines, plus the flight-recorder events as
    /// comment lines when `include_events` is set.
    pub fn metrics_dump(&mut self, include_events: bool) -> Result<String, ClientError> {
        match Self::ok_or_remote(self.call(&Request::MetricsDump { include_events })?)? {
            Response::MetricsText(text) => Ok(text),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Asks the server to shut down and waits for the acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match Self::ok_or_remote(self.call(&Request::Shutdown)?)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Registers a named queue on the server (one round trip). The backend
    /// is built lazily server-side on first use.
    pub fn create_queue(
        &mut self,
        name: &str,
        backend: BackendSpec,
        quota: QuotaSpec,
    ) -> Result<(), ClientError> {
        let request = Request::CreateQueue {
            name: name.to_string(),
            backend,
            quota,
        };
        match Self::ok_or_remote(self.call(&request)?)? {
            Response::QueueCreated => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Drops a named queue (one round trip); sessions still bound to it get
    /// typed `QueueDropped` refusals from then on.
    pub fn drop_queue(&mut self, name: &str) -> Result<(), ClientError> {
        let request = Request::DropQueue {
            name: name.to_string(),
        };
        match Self::ok_or_remote(self.call(&request)?)? {
            Response::QueueDropped => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Lists every queue on the server, sorted by name (one round trip).
    pub fn list_queues(&mut self) -> Result<Vec<QueueListRow>, ClientError> {
        match Self::ok_or_remote(self.call(&Request::ListQueues)?)? {
            Response::QueueList(rows) => Ok(rows),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Rebinds this connection's session to the named queue (one round
    /// trip). The old session's counters roll up into its queue; subsequent
    /// operations run against the new one. On a refusal the old binding is
    /// kept.
    pub fn use_queue(&mut self, name: &str) -> Result<(), ClientError> {
        let request = Request::UseQueue {
            name: name.to_string(),
        };
        match Self::ok_or_remote(self.call(&request)?)? {
            Response::Using => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}

impl fmt::Debug for PqClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PqClient")
            .field("window", &self.window)
            .field("in_flight", &self.inflight.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PqServer, ServerConfig};
    use choice_pq::{DynSharedPq, MultiQueue, MultiQueueConfig};
    use std::sync::Arc;

    fn server() -> PqServer {
        let queue: Arc<dyn DynSharedPq<u64>> = Arc::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(4).with_seed(3),
        ));
        PqServer::spawn(queue, "127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    #[test]
    fn synchronous_operations_round_trip() {
        let server = server();
        let mut client = PqClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.approx_len().unwrap(), 0);
        client.insert(3, 30).unwrap();
        client.insert(1, 10).unwrap();
        assert_eq!(client.approx_len().unwrap(), 2);
        let (k1, _) = client.delete_min().unwrap().unwrap();
        let (k2, _) = client.delete_min().unwrap().unwrap();
        let mut keys = [k1, k2];
        keys.sort_unstable();
        assert_eq!(keys, [1, 3]);
        assert_eq!(client.delete_min().unwrap(), None);
        let stats = client.stats().unwrap();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.totals.inserts, 2);
    }

    #[test]
    fn pipelined_submissions_respect_the_window_and_order() {
        let server = server();
        let mut client = PqClient::connect_with_window(server.local_addr(), 4).unwrap();
        let mut collected: Vec<TimedResponse> = Vec::new();
        for k in 0..10u64 {
            if let Some(timed) = client
                .submit(&Request::Insert { key: k, value: k })
                .unwrap()
            {
                collected.push(timed);
            }
            assert!(client.in_flight() <= client.window());
        }
        // 10 submissions through a window of 4: 6 were collected en route.
        assert_eq!(collected.len(), 6);
        client.drain_all(|timed| collected.push(timed)).unwrap();
        assert_eq!(collected.len(), 10);
        assert!(collected
            .iter()
            .all(|(r, rtt)| *r == Response::Inserted && *rtt > Duration::ZERO));
        assert_eq!(client.approx_len().unwrap(), 10);
        // Batched removal gets everything back.
        let entries = client.delete_min_batch(64).unwrap();
        let mut keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
        let mut rounds = 0;
        while keys.len() < 10 && rounds < 32 {
            keys.extend(client.delete_min_batch(64).unwrap().iter().map(|(k, _)| *k));
            rounds += 1;
        }
        keys.sort_unstable();
        assert_eq!(keys, (0..10u64).collect::<Vec<_>>());
    }

    #[test]
    fn traced_requests_split_the_round_trip() {
        let server = server();
        let mut client = PqClient::connect(server.local_addr()).unwrap();
        assert!(client.last_trace_split().is_none(), "tracing starts off");
        client.insert(7, 70).unwrap();
        assert_eq!(client.trace_totals(), TraceTotals::default());

        client.set_trace_every(1);
        client.insert(8, 80).unwrap();
        let split = client
            .last_trace_split()
            .expect("stride 1 traces every request");
        assert!(split.server_ns > 0, "server measured its stages");
        assert!(
            split.rtt.as_nanos() as u64 >= split.server_ns,
            "the round trip contains the server's handling time: \
             rtt={:?} server_ns={}",
            split.rtt,
            split.server_ns
        );
        assert_eq!(
            split.client_queue_ns(),
            split.rtt.as_nanos() as u64 - split.server_ns
        );

        // A coarser stride samples exactly 1-in-N, and the totals advance
        // only on traced responses.
        client.set_trace_every(4);
        let before = client.trace_totals();
        for k in 0..8u64 {
            client.insert(k, k).unwrap();
        }
        let after = client.trace_totals();
        assert_eq!(after.traced, before.traced + 2, "8 requests at stride 4");
        assert!(after.server_ns > before.server_ns);
        assert!(after.rtt_ns >= after.server_ns);
    }

    #[test]
    fn remote_refusals_surface_as_typed_errors() {
        let server = server();
        let mut client = PqClient::connect(server.local_addr()).unwrap();
        match client.insert(Key::MAX, 0) {
            Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ReservedKey),
            other => panic!("expected a remote refusal, got {other:?}"),
        }
        // The session is still usable afterwards.
        client.insert(1, 1).unwrap();
        assert_eq!(client.delete_min().unwrap(), Some((1, 1)));
    }

    #[test]
    fn queue_lifecycle_round_trips_through_the_client() {
        let server = server();
        let mut client = PqClient::connect(server.local_addr()).unwrap();
        client
            .create_queue(
                "tenant/a",
                BackendSpec::MultiQueue { lanes: 4, d: 2 },
                QuotaSpec::unlimited().with_max_inflight(1),
            )
            .unwrap();
        client.use_queue("tenant/a").unwrap();
        client.insert(1, 10).unwrap();
        // The in-flight quota surfaces as a typed remote error.
        match client.insert(2, 20) {
            Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QuotaExceeded),
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        let rows = client.list_queues().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].name, "tenant/a");
        assert_eq!(rows[1].refusals, 1);
        client.drop_queue("tenant/a").unwrap();
        match client.use_queue("tenant/a") {
            Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::NoSuchQueue),
            other => panic!("expected NoSuchQueue, got {other:?}"),
        }
        // Recover by rebinding to the default queue.
        client.use_queue("default").unwrap();
        client.insert(9, 90).unwrap();
        assert_eq!(client.delete_min().unwrap(), Some((9, 90)));
    }

    #[test]
    fn shutdown_round_trips_and_ends_the_service() {
        let server = server();
        let mut client = PqClient::connect(server.local_addr()).unwrap();
        client.insert(5, 5).unwrap();
        client.shutdown_server().unwrap();
        assert!(server.is_shutting_down());
        let stats = server.join();
        assert_eq!(stats.totals.inserts, 1);
    }
}
