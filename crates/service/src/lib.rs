//! `choice-wire`: the (1 + β) MultiQueue as a network service.
//!
//! Everything below `crates/service` turns the in-process session API into
//! a TCP front door, in three layers (`std::net` only — no async runtime):
//!
//! * [`protocol`] — a versioned, length-prefixed binary wire protocol:
//!   `Insert` / `DeleteMin` / `DeleteMinBatch(n)` / `ApproxLen` / `Stats` /
//!   `Shutdown` frames plus the v3 queue-lifecycle ops `CreateQueue` /
//!   `DropQueue` / `ListQueues` / `UseQueue` and the v4 observability op
//!   `MetricsDump`, with total, panic-free decoding and explicit error
//!   types for truncated and malformed bytes. Older clients keep working:
//!   the server answers every frame at the version it arrived with — a v2
//!   session is simply bound to the `"default"` queue forever, and a v3
//!   Stats reply omits the v4 `resize_epoch` counter.
//! * [`server`] — a multi-threaded server fronting a
//!   [`QueueRegistry`] of **named queues**:
//!   each accepted connection binds a queue (the `"default"` queue until it
//!   issues `UseQueue`) and registers its own session handle (deterministic
//!   per-connection RNG falls out of the session API). Any
//!   [`DynSharedPq`](choice_pq::DynSharedPq) backend serves, a
//!   [`HandlePolicy`](choice_pq::HandlePolicy) from the server config
//!   applies to every session, per-queue
//!   [`QuotaSpec`] quotas shed work as typed
//!   `QuotaExceeded` refusals, a credit window bounds response buffering,
//!   and a `Stats` op aggregates
//!   [`HandleStats`](choice_pq::HandleStats) across sessions with a
//!   per-queue breakdown. Every server carries a [`choice_obs::ObsHub`]:
//!   admission refusals and in-flight depth surface as registry metrics,
//!   sessions and panics land in the flight recorder (a panicking handler
//!   dumps the ring and kills only its own connection), and `MetricsDump`
//!   serves the whole hub as Prometheus-style exposition text.
//! * [`client`] — a blocking, pipelined client: synchronous one-round-trip
//!   methods plus a windowed [`submit`](client::PqClient::submit) path that
//!   keeps up to a credit window of requests in flight and hands back
//!   per-request round-trip times.
//!
//! What does a *relaxed* queue mean to a remote caller? Exactly what it
//! means in process: `DeleteMin` returns a small-keyed element, not
//! necessarily the minimum, and `ApproxLen` is a hint. The network adds
//! nothing new to reason about — a remote pop was already concurrent with
//! every other session's operations before it left the client — which is
//! precisely why a relaxed structure is the natural thing to put behind a
//! shared service: it keeps scaling where an exact queue would serialise
//! every client on the global minimum.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use choice_pq::{DynSharedPq, MultiQueue, MultiQueueConfig};
//! use choice_wire::{PqClient, PqServer, ServerConfig};
//!
//! let queue: Arc<dyn DynSharedPq<u64>> =
//!     Arc::new(MultiQueue::new(MultiQueueConfig::for_threads(2).with_seed(7)));
//! let server = PqServer::spawn(queue, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = PqClient::connect(server.local_addr()).unwrap();
//! client.insert(10, 100).unwrap();
//! client.insert(5, 50).unwrap();
//! let (key, value) = client.delete_min().unwrap().expect("non-empty");
//! assert!(key == 5 || key == 10);
//! assert_eq!(value, key * 10);
//!
//! client.shutdown_server().unwrap();
//! let stats = server.join();
//! assert_eq!(stats.totals.inserts, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, PqClient, TimedResponse, TraceSplit, TraceTotals};
pub use protocol::{
    ErrorCode, QueueListRow, QueueStats, Request, Response, ServiceStats, TraceContext, TraceEcho,
    WireError, MAX_BATCH, MAX_FRAME_LEN, MIN_WIRE_VERSION, WIRE_VERSION,
};
pub use server::{PqServer, ServerConfig};

// Registry vocabulary used in the service API surface (queue specs, quotas,
// and the registry itself for `PqServer::spawn_registry`), re-exported so
// wire users don't need a direct `choice-registry` dependency.
pub use choice_registry::{BackendSpec, QueueRegistry, QuotaSpec, RegistryConfig, DEFAULT_QUEUE};

// The telemetry hub type appears in the server API
// (`PqServer::spawn_registry_with_obs`, `PqServer::obs`); re-exported for
// the same reason.
pub use choice_obs::ObsHub;
