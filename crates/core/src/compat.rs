//! Deprecated flat-trait compatibility layer.
//!
//! Before 0.2.0 every queue implemented the flat
//! [`ConcurrentPriorityQueue`] trait (`&self` operations, process-wide
//! `thread_local!` randomness). The workspace now uses the handle-based
//! session API ([`SharedPq`] /
//! [`PqHandle`]); this module keeps out-of-tree code
//! compiling for one release via [`LegacyPq`], an adapter that exposes the
//! old flat interface on top of any `SharedPq`.
//!
//! Migration table (old flat call → new session call):
//!
//! | old (`ConcurrentPriorityQueue`)  | new (`SharedPq` + `PqHandle`)          |
//! |----------------------------------|----------------------------------------|
//! | —                                | `let mut h = queue.register();`        |
//! | `queue.insert(k, v)`             | `h.insert(k, v)`                       |
//! | `queue.delete_min()`             | `h.delete_min()`                       |
//! | `queue.approx_len()`             | `queue.approx_len()` (unchanged)       |
//! | `queue.is_empty()`               | `queue.is_empty()` (unchanged)         |
//! | `queue.name()`                   | `queue.name()` (unchanged)             |
//! | `InstrumentedHandle::new(q, clk)`| `q.register_with(HandlePolicy::instrumented())` |
//! | `handle.into_log()`              | `h.take_log()`                         |
//! | `StickyHandle::new(q, pol, seed)`| `q.register_with(HandlePolicy::default().with_sticky_ops(n))` |

use crate::traits::{Key, PqHandle, SharedPq};

/// A thread-safe (relaxed or exact) min-priority queue with flat `&self`
/// operations.
///
/// Deprecated: the flat interface hides the per-thread state the algorithm
/// actually needs (randomness, lane affinity, buffers) behind thread-local
/// storage. Register a session handle instead.
#[deprecated(
    since = "0.2.0",
    note = "use SharedPq::register and operate through the returned PqHandle \
            (wrap a SharedPq in LegacyPq if you need the flat interface for \
            one more release)"
)]
pub trait ConcurrentPriorityQueue<V>: Send + Sync {
    /// Inserts an entry.
    fn insert(&self, key: Key, value: V);

    /// Removes an entry with a small key (see
    /// [`PqHandle::delete_min`] for semantics).
    fn delete_min(&self) -> Option<(Key, V)>;

    /// An approximate element count (exact when the structure is quiescent).
    fn approx_len(&self) -> usize;

    /// Whether the structure appears empty.
    fn is_empty(&self) -> bool {
        self.approx_len() == 0
    }

    /// A short human-readable name used in benchmark tables.
    fn name(&self) -> String;
}

/// Adapter exposing the deprecated flat interface on top of any
/// [`SharedPq`].
///
/// Every flat operation opens a short-lived session (registration is an
/// atomic id bump plus RNG seeding), performs the operation and drops the
/// handle — flushing any buffering the policy might do. That keeps the
/// adapter correct under any policy, at a per-operation cost the session API
/// exists to avoid; treat it as a migration aid, not a long-term home.
#[derive(Debug)]
pub struct LegacyPq<Q> {
    inner: Q,
}

impl<Q> LegacyPq<Q> {
    /// Wraps `inner` in the flat compatibility interface.
    pub fn new(inner: Q) -> Self {
        Self { inner }
    }

    /// The wrapped queue.
    pub fn get_ref(&self) -> &Q {
        &self.inner
    }

    /// Unwraps the queue.
    pub fn into_inner(self) -> Q {
        self.inner
    }
}

#[allow(deprecated)]
impl<V, Q: SharedPq<V>> ConcurrentPriorityQueue<V> for LegacyPq<Q> {
    fn insert(&self, key: Key, value: V) {
        self.inner.register().insert(key, value);
    }

    fn delete_min(&self) -> Option<(Key, V)> {
        self.inner.register().delete_min()
    }

    fn approx_len(&self) -> usize {
        self.inner.approx_len()
    }

    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::config::MultiQueueConfig;
    use crate::queue::MultiQueue;

    #[test]
    fn legacy_adapter_round_trips_through_the_flat_interface() {
        let q = LegacyPq::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(4).with_seed(3),
        ));
        assert!(q.is_empty());
        for k in [9u64, 2, 7, 4] {
            q.insert(k, k * 10);
        }
        assert_eq!(q.approx_len(), 4);
        assert!(q.name().contains("multiqueue"));
        let mut out = Vec::new();
        while let Some((k, v)) = q.delete_min() {
            assert_eq!(v, k * 10);
            out.push(k);
        }
        out.sort_unstable();
        assert_eq!(out, vec![2, 4, 7, 9]);
        assert_eq!(q.get_ref().lanes(), 4);
    }

    #[test]
    fn legacy_trait_is_object_safe() {
        let q: Box<dyn ConcurrentPriorityQueue<u64>> = Box::new(LegacyPq::new(
            MultiQueue::<u64>::new(MultiQueueConfig::with_queues(2)),
        ));
        q.insert(1, 1);
        q.insert(2, 2);
        assert_eq!(q.approx_len(), 2);
        assert!(q.delete_min().is_some());
    }

    #[test]
    fn legacy_adapter_is_usable_across_threads() {
        let q = LegacyPq::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(8).with_seed(1),
        ));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..500 {
                        q.insert(t * 500 + i, 0);
                    }
                });
            }
        });
        assert_eq!(q.approx_len(), 2_000);
        let mut n = 0;
        while q.delete_min().is_some() {
            n += 1;
        }
        assert_eq!(n, 2_000);
    }

    #[test]
    fn unwrap_returns_the_queue() {
        let q = LegacyPq::new(MultiQueue::<u64>::new(MultiQueueConfig::with_queues(2)));
        q.insert(5, 5);
        let inner = q.into_inner();
        assert_eq!(crate::SharedPq::approx_len(&inner), 1);
    }
}
