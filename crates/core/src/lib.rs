//! The (1 + β) MultiQueue: a relaxed concurrent priority queue.
//!
//! This crate is the practical contribution of *The Power of Choice in
//! Priority Scheduling* (Alistarh, Kopinsky, Li, Nadiradze; PODC 2017). The
//! structure keeps `n` sequential priority queues, each behind its own lock:
//!
//! * **insert** picks a queue uniformly at random, acquires its lock (retrying
//!   on a fresh random queue if the lock is contended) and pushes;
//! * **deleteMin**, with probability `β`, samples two queues, peeks at both
//!   tops, locks the queue holding the smaller (higher-priority) key and pops
//!   it; with probability `1 − β` it pops from a single random queue. If the
//!   lock cannot be acquired the whole operation restarts, exactly as in the
//!   MultiQueue of Rihani, Sanders and Dementiev that the paper builds on.
//!
//! The queue is *relaxed*: `delete_min` may return an element that is not the
//! global minimum. The paper proves that in the sequential model the expected
//! rank of the returned element is `O(n/β²)` and the expected maximum rank is
//! `O((n/β)(log n + log 1/β))`, independent of the execution length; the
//! companion `choice-process` crate reproduces those bounds and the
//! `choice-bench` crate measures the concurrent structure directly.
//!
//! # Example
//!
//! ```
//! use choice_pq::{MultiQueue, MultiQueueConfig, ConcurrentPriorityQueue};
//! use std::sync::Arc;
//!
//! let queue = Arc::new(MultiQueue::<u64>::new(
//!     MultiQueueConfig::for_threads(4).with_beta(0.75),
//! ));
//! queue.insert(10, 100);
//! queue.insert(5, 50);
//! let (key, _value) = queue.delete_min().unwrap();
//! // With only two elements and fresh queues the smaller key comes back.
//! assert!(key == 5 || key == 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod handle;
pub mod queue;
pub mod traits;

pub use config::MultiQueueConfig;
pub use handle::{InstrumentedHandle, StickyHandle};
pub use queue::MultiQueue;
pub use traits::{ConcurrentPriorityQueue, Key};
