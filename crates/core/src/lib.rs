//! The (1 + β) MultiQueue: a relaxed concurrent priority queue.
//!
//! This crate is the practical contribution of *The Power of Choice in
//! Priority Scheduling* (Alistarh, Kopinsky, Li, Nadiradze; PODC 2017). The
//! structure keeps `n` sequential priority queues, each behind its own lock:
//!
//! * **insert** picks a queue uniformly at random, acquires its lock (retrying
//!   on a fresh random queue if the lock is contended) and pushes;
//! * **deleteMin** samples lanes according to the configured [`ChoiceRule`] —
//!   two uniform lanes for the classic rule, one-or-two for the paper's
//!   (1 + β) rule, or any `d ≥ 1` distinct lanes for the generalised
//!   `d`-choice — peeks at the sampled tops, locks the lane holding the
//!   smallest (highest-priority) key and pops it. If the lock cannot be
//!   acquired the whole operation restarts, exactly as in the MultiQueue of
//!   Rihani, Sanders and Dementiev that the paper builds on. The batched form
//!   ([`MqHandle::delete_min_batch`]) drains up to `n` elements under that
//!   single lane lock.
//!
//! The queue is *relaxed*: `delete_min` may return an element that is not the
//! global minimum. The paper proves that in the sequential model the expected
//! rank of the returned element is `O(n/β²)` and the expected maximum rank is
//! `O((n/β)(log n + log 1/β))`, independent of the execution length; the
//! companion `choice-process` crate reproduces those bounds — driven by the
//! *same* [`ChoiceRule`] value this crate executes — and the `choice-bench`
//! crate measures the concurrent structure directly.
//!
//! # The session API
//!
//! Access is organised the way the paper's model is: per *thread*. A queue is
//! a [`SharedPq`]; operating on it requires registering a session, which
//! returns an owned [`PqHandle`] carrying the session-local state (private
//! RNG stream, sticky-lane affinity, batch buffer, instrumentation log —
//! selected via [`HandlePolicy`]). There is no hidden `thread_local!` state.
//!
//! # Example
//!
//! ```
//! use choice_pq::{MultiQueue, MultiQueueConfig, PqHandle, SharedPq};
//!
//! let queue = MultiQueue::<u64>::new(MultiQueueConfig::for_threads(4).with_beta(0.75));
//! let mut handle = queue.register();
//! handle.insert(10, 100);
//! handle.insert(5, 50);
//! let (key, _value) = handle.delete_min().unwrap();
//! // With only two elements and fresh lanes the smaller key comes back.
//! assert!(key == 5 || key == 10);
//! ```

// `unsafe` is denied crate-wide and re-allowed in exactly one module:
// `lane`, whose borrow-word protocol proves the heap's `UnsafeCell` unique
// (see that module's header for the per-block proof obligations).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod flat;
pub mod handle;
pub(crate) mod lane;
pub mod obs;
pub mod queue;
pub(crate) mod sync;
pub mod traits;

pub use config::{ChoiceRule, ElasticPolicy, MultiQueueConfig};
pub use flat::{FlatHandle, FlatOps};
pub use handle::{HandlePolicy, MqHandle};
pub use obs::QueueObs;
pub use queue::MultiQueue;
pub use traits::{
    check_key, DynSharedPq, HandleStats, Key, PqHandle, QueueTopology, SharedPq, RESERVED_KEY,
};
