//! Sync-primitive indirection for the lane table and handle hot path.
//!
//! Normally these are the real primitives (`parking_lot::Mutex`, the `std`
//! atomics) with zero overhead. Under the `check` cargo feature they become
//! the `choice-check` wrappers, whose every access is a schedule point of
//! the deterministic-interleaving explorer — so the *real* `MultiQueue`
//! (not a transliterated model) can run under explored schedules in
//! `tests/check_multiqueue.rs` and `tests/check_lane_fastpath.rs`. Outside
//! an active exploration the wrappers pass straight through to the `std`
//! primitives, so a `--features check` build still runs the ordinary test
//! suite unchanged.

#[cfg(not(feature = "check"))]
pub(crate) use parking_lot::{Mutex, MutexGuard};
#[cfg(not(feature = "check"))]
pub(crate) use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize};

#[cfg(feature = "check")]
pub(crate) use choice_check::sync::{AtomicPtr, AtomicU64, AtomicUsize, Mutex, MutexGuard};

pub(crate) use std::sync::atomic::Ordering;

/// One iteration of a bounded-wait spin: busy-spin briefly, then yield to
/// the OS scheduler so a preempted borrow holder can run (this box may have
/// fewer cores than threads). Under an active exploration this is a plain
/// schedule point instead — the virtual thread stays runnable and the
/// explorer decides when the holder gets to release.
#[inline]
pub(crate) fn spin(spins: &mut u32) {
    #[cfg(feature = "check")]
    if choice_check::is_active() {
        choice_check::spin();
        return;
    }
    *spins = spins.saturating_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}
