//! Sync-primitive indirection for the lane table and handle hot path.
//!
//! Normally these are the real primitives (`parking_lot::Mutex`, the `std`
//! atomics) with zero overhead. Under the `check` cargo feature they become
//! the `choice-check` wrappers, whose every access is a schedule point of
//! the deterministic-interleaving explorer — so the *real* `MultiQueue`
//! (not a transliterated model) can run under explored schedules in
//! `tests/check_multiqueue.rs`. Outside an active exploration the wrappers
//! pass straight through to the `std` primitives, so a `--features check`
//! build still runs the ordinary test suite unchanged.

#[cfg(not(feature = "check"))]
pub(crate) use parking_lot::{Mutex, MutexGuard};
#[cfg(not(feature = "check"))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize};

#[cfg(feature = "check")]
pub(crate) use choice_check::sync::{AtomicU64, AtomicUsize, Mutex, MutexGuard};

pub(crate) use std::sync::atomic::Ordering;
